"""repro — Exact multi-objective design space exploration using ASPmT.

A from-scratch, pure-Python reproduction of

    K. Neubauer, P. Wanko, T. Schaub, C. Haubelt:
    "Exact multi-objective design space exploration using ASPmT",
    DATE 2018, pp. 257-260.

The package layers, bottom to top:

* :mod:`repro.asp` — answer set programming substrate (parser, grounder,
  Clark completion, CDNL solver, unfounded-set propagation, propagator
  API — a clingo work-alike);
* :mod:`repro.theory` — background theories: linear constraints over
  integers with partial-assignment evaluation, difference logic,
  objective functions;
* :mod:`repro.synthesis` — system-level synthesis: specifications
  (task graphs, NoC platforms, mapping options), the ASPmT encoding,
  solution decoding and validation;
* :mod:`repro.dse` — the paper's contribution: exact Pareto-front
  enumeration with a dominance propagator over partial assignments,
  plus list and quad-tree archives;
* :mod:`repro.baselines` — exhaustive, solution-level, epsilon-constraint
  and NSGA-II comparison methods;
* :mod:`repro.workloads` — seeded synthetic benchmark instances;
* :mod:`repro.bench` — the table/figure regeneration harness.

Quick start::

    from repro import explore, generate_specification, WorkloadConfig

    spec = generate_specification(WorkloadConfig(tasks=6, seed=0))
    result = explore(spec, objectives=("latency", "energy", "cost"))
    for point in result.front:
        print(point.vector, point.implementation.binding)
"""

from repro.dse.explorer import (
    DseResult,
    ExactParetoExplorer,
    ParetoPoint,
    explore,
)
from repro.synthesis.encoding import EncodedInstance, encode
from repro.synthesis.model import (
    Application,
    Architecture,
    Link,
    MappingOption,
    Message,
    Resource,
    Specification,
    Task,
)
from repro.workloads import WorkloadConfig, generate_specification, suite

__version__ = "1.0.0"

__all__ = [
    "Application",
    "Architecture",
    "DseResult",
    "EncodedInstance",
    "ExactParetoExplorer",
    "Link",
    "MappingOption",
    "Message",
    "ParetoPoint",
    "Resource",
    "Specification",
    "Task",
    "WorkloadConfig",
    "encode",
    "explore",
    "generate_specification",
    "suite",
    "__version__",
]

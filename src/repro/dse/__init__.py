"""Exact multi-objective design space exploration (the paper's core).

The DSE enumerates the *exact Pareto front* of a synthesis design space
with a single incremental ASPmT solver run:

1. the CDNL solver searches for implementations;
2. the :class:`repro.dse.explorer.DominancePropagator` evaluates a lower
   bound of the objective vector on every *partial* assignment and prunes
   (with a learned clause) any subtree whose bound is weakly dominated by
   a point already in the archive — such a subtree cannot contain a new
   Pareto point;
3. every surviving total assignment is a new non-dominated point: it is
   recorded, inserted into the archive (evicting points it dominates),
   and the search continues;
4. when the solver proves unsatisfiability, the archive *is* the exact
   Pareto front.

Archives: a linear-scan list (:class:`repro.dse.pareto.ListArchive`) and
the quad-tree of the authors' ASP-DAC 2018 companion paper
(:class:`repro.dse.quadtree.QuadTreeArchive`).
"""

from repro.dse.explorer import (
    DominancePropagator,
    DseResult,
    DseStatistics,
    ExactParetoExplorer,
    ObjectiveBoundPropagator,
    ParetoPoint,
)
from repro.dse.parallel import ParallelParetoExplorer
from repro.dse.scheduler import ArchiveDelta, CubeScheduler
from repro.dse.pareto import (
    ListArchive,
    dominates,
    non_dominated_union,
    pareto_filter,
    weakly_dominates,
)
from repro.dse.quadtree import QuadTreeArchive

__all__ = [
    "ArchiveDelta",
    "CubeScheduler",
    "DominancePropagator",
    "DseResult",
    "DseStatistics",
    "ExactParetoExplorer",
    "ListArchive",
    "ObjectiveBoundPropagator",
    "ParallelParetoExplorer",
    "ParetoPoint",
    "QuadTreeArchive",
    "dominates",
    "non_dominated_union",
    "pareto_filter",
    "weakly_dominates",
]

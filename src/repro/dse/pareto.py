"""Pareto dominance and the linear-scan archive.

All objectives are minimized.  A vector ``a`` *weakly dominates* ``b``
when ``a_i <= b_i`` for every component; it *dominates* ``b`` when it
weakly dominates and differs in at least one component.

The archive keeps a mutually non-dominated set of points with payloads.
Both archive implementations (this list and the quad-tree) count their
pairwise comparisons so the benchmark harness can contrast them
(Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Dict, Generic, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "dominates",
    "weakly_dominates",
    "pareto_filter",
    "non_dominated_union",
    "ListArchive",
]

Vector = Tuple[int, ...]
Payload = TypeVar("Payload")


def weakly_dominates(a: Sequence[int], b: Sequence[int]) -> bool:
    """``a_i <= b_i`` in every component (minimization)."""
    return all(x <= y for x, y in zip(a, b))


def dominates(a: Sequence[int], b: Sequence[int]) -> bool:
    """Weak dominance plus strict improvement somewhere."""
    return weakly_dominates(a, b) and any(x < y for x, y in zip(a, b))


def pareto_filter(points: Iterable[Tuple[Vector, Payload]]) -> List[Tuple[Vector, Payload]]:
    """Non-dominated subset of ``points`` (first payload per vector kept)."""
    unique: Dict[Vector, Payload] = {}
    for vector, payload in points:
        unique.setdefault(tuple(vector), payload)
    kept: List[Tuple[Vector, Payload]] = []
    for vector, payload in unique.items():
        if any(dominates(other, vector) for other in unique):
            continue
        kept.append((vector, payload))
    kept.sort(key=lambda item: item[0])
    return kept


def non_dominated_union(
    *fronts: Iterable[Tuple[Vector, Payload]]
) -> List[Tuple[Vector, Payload]]:
    """Non-dominated union of several fronts (the subspace-merge reduction).

    For any partition of a design space into disjoint subspaces, the
    union of the per-subspace Pareto fronts filtered for dominance is the
    exact global front — this is the merge step of the parallel explorer.
    Accepts any iterables of ``(vector, payload)`` pairs (archives
    iterate that way); for duplicate vectors the payload from the
    earliest front wins, so pass fronts in a deterministic order.
    """
    return pareto_filter(chain.from_iterable(fronts))


class ListArchive(Generic[Payload]):
    """Linear-scan Pareto archive."""

    def __init__(self) -> None:
        self._points: List[Tuple[Vector, Payload]] = []
        #: Number of pairwise vector comparisons performed (benchmarking).
        self.comparisons = 0

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[Tuple[Vector, Payload]]:
        return iter(self._points)

    def vectors(self) -> List[Vector]:
        return [vector for vector, _payload in self._points]

    def find_weak_dominator(self, vector: Sequence[int]) -> Optional[Vector]:
        """An archive vector that weakly dominates ``vector``, if any."""
        vector = tuple(vector)
        for point, _payload in self._points:
            self.comparisons += 1
            if weakly_dominates(point, vector):
                return point
        return None

    def add(self, vector: Sequence[int], payload: Payload) -> bool:
        """Insert a point; returns False when it is weakly dominated.

        On insertion, archive points dominated by the new vector are
        evicted, so the archive stays mutually non-dominated.
        """
        vector = tuple(vector)
        if self.find_weak_dominator(vector) is not None:
            return False
        survivors = []
        for point, point_payload in self._points:
            self.comparisons += 1
            if not weakly_dominates(vector, point):
                survivors.append((point, point_payload))
        survivors.append((vector, payload))
        self._points = survivors
        return True

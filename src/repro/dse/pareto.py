"""Pareto dominance and the linear-scan archive.

All objectives are minimized.  A vector ``a`` *weakly dominates* ``b``
when ``a_i <= b_i`` for every component; it *dominates* ``b`` when it
weakly dominates and differs in at least one component.

The archive keeps a mutually non-dominated set of points with payloads.
Both archive implementations (this list and the quad-tree) count their
pairwise comparisons so the benchmark harness can contrast them
(Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Dict, Generic, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "dominates",
    "weakly_dominates",
    "pareto_filter",
    "non_dominated_union",
    "hypervolume_box",
    "ListArchive",
]

Vector = Tuple[int, ...]
Payload = TypeVar("Payload")


def weakly_dominates(a: Sequence[int], b: Sequence[int]) -> bool:
    """``a_i <= b_i`` in every component (minimization)."""
    return all(x <= y for x, y in zip(a, b))


def dominates(a: Sequence[int], b: Sequence[int]) -> bool:
    """Weak dominance plus strict improvement somewhere."""
    return weakly_dominates(a, b) and any(x < y for x, y in zip(a, b))


def pareto_filter(points: Iterable[Tuple[Vector, Payload]]) -> List[Tuple[Vector, Payload]]:
    """Non-dominated subset of ``points`` (first payload per vector kept)."""
    unique: Dict[Vector, Payload] = {}
    for vector, payload in points:
        unique.setdefault(tuple(vector), payload)
    kept: List[Tuple[Vector, Payload]] = []
    for vector, payload in unique.items():
        if any(dominates(other, vector) for other in unique):
            continue
        kept.append((vector, payload))
    kept.sort(key=lambda item: item[0])
    return kept


def non_dominated_union(
    *fronts: Iterable[Tuple[Vector, Payload]]
) -> List[Tuple[Vector, Payload]]:
    """Non-dominated union of several fronts (the subspace-merge reduction).

    For any partition of a design space into disjoint subspaces, the
    union of the per-subspace Pareto fronts filtered for dominance is the
    exact global front — this is the merge step of the parallel explorer.
    Accepts any iterables of ``(vector, payload)`` pairs (archives
    iterate that way); for duplicate vectors the payload from the
    earliest front wins, so pass fronts in a deterministic order.
    """
    return pareto_filter(chain.from_iterable(fronts))


def _union_volume(
    corners: List[Vector], lower: Vector, upper: Vector
) -> int:
    """Volume inside ``[lower, upper)`` of the union of the upward-closed
    boxes ``[corner, upper)``.

    Corners must already be clipped into the box.  Recursive dimension
    sweep: slice the last axis at every corner coordinate; within a slab
    the active corners are those at or below it, and the covered area is
    the same union one dimension down.  Exact for any dimension; the
    practical cost is ``O(n^d)`` for ``n`` pareto-minimal corners, which
    is cheap for the 2-3 objectives and small archives of the DSE.
    """
    if not corners:
        return 0
    if len(lower) == 1:
        return upper[0] - min(corner[0] for corner in corners)
    cuts = sorted({corner[-1] for corner in corners})
    total = 0
    for index, cut in enumerate(cuts):
        top = cuts[index + 1] if index + 1 < len(cuts) else upper[-1]
        active = [corner[:-1] for corner in corners if corner[-1] <= cut]
        total += (top - cut) * _union_volume(active, lower[:-1], upper[:-1])
    return total


def hypervolume_box(
    lower: Sequence[int],
    upper: Sequence[int],
    points: Iterable[Sequence[int]],
) -> int:
    """Volume of ``[lower, upper)`` *not* weakly dominated by ``points``.

    The elastic cube scheduler uses this as the priority of a cube: with
    ``lower`` the cube's objective lower-bound corner and ``upper`` the
    reference point, the result is the hypervolume the cube could still
    contribute to the current archive — fat, unexplored objective regions
    first.  Exact (no sampling), deterministic, and monotone: adding
    archive points never increases the value.  Returns 0 for an empty or
    fully dominated box.
    """
    lower = tuple(lower)
    upper = tuple(upper)
    box = 1
    for low, up in zip(lower, upper):
        if up <= low:
            return 0
        box *= up - low
    clipped: List[Vector] = []
    for point in points:
        corner = tuple(max(p, low) for p, low in zip(point, lower))
        if all(c < up for c, up in zip(corner, upper)):
            clipped.append(corner)
    # Only pareto-minimal corners shape the union.
    minimal = [
        corner
        for corner in set(clipped)
        if not any(
            other != corner and weakly_dominates(other, corner)
            for other in clipped
        )
    ]
    minimal.sort()
    return box - _union_volume(minimal, lower, upper)


class ListArchive(Generic[Payload]):
    """Linear-scan Pareto archive."""

    def __init__(self) -> None:
        self._points: List[Tuple[Vector, Payload]] = []
        #: Number of pairwise vector comparisons performed (benchmarking).
        self.comparisons = 0

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[Tuple[Vector, Payload]]:
        return iter(self._points)

    def vectors(self) -> List[Vector]:
        return [vector for vector, _payload in self._points]

    def find_weak_dominator(self, vector: Sequence[int]) -> Optional[Vector]:
        """An archive vector that weakly dominates ``vector``, if any."""
        vector = tuple(vector)
        for point, _payload in self._points:
            self.comparisons += 1
            if weakly_dominates(point, vector):
                return point
        return None

    def add(self, vector: Sequence[int], payload: Payload) -> bool:
        """Insert a point; returns False when it is weakly dominated.

        On insertion, archive points dominated by the new vector are
        evicted, so the archive stays mutually non-dominated.
        """
        vector = tuple(vector)
        if self.find_weak_dominator(vector) is not None:
            return False
        survivors = []
        for point, point_payload in self._points:
            self.comparisons += 1
            if not weakly_dominates(vector, point):
                survivors.append((point, point_payload))
        survivors.append((vector, payload))
        self._points = survivors
        return True

"""Elastic cube scheduling: work-stealing, hypervolume order, re-splits.

The static scheduler of the first parallel explorer handed each worker a
fixed share of the guiding-path cubes (``cubes[w::jobs]``).  Background
theory pruning makes cube hardness wildly uneven, so one hard cube
routinely idles every other worker.  This module replaces the fixed
shares with an *elastic* scheduler:

1. **Work-stealing deques** — every worker owns a deque of cubes; an
   idle worker steals from the tail of the busiest victim's deque
   instead of finishing early.  The owner consumes its head.
2. **Hypervolume ordering** — each queued cube carries a priority: the
   exact hypervolume its objective bounding box could still contribute
   against the current archive (:func:`repro.dse.pareto.hypervolume_box`
   of the cube's lower-bound corner vs. the objectives' reference
   point).  Queues are re-sorted lazily whenever archive deltas arrive,
   so fat, unexplored objective regions run first and the strong points
   they produce prune everything behind them.
3. **Adaptive re-splitting** — a cube that burns through its conflict
   budget without closing is split one binding level deeper and its
   children are returned to the deque, so no single cube can occupy a
   worker for the whole run.
4. **Archive deltas** — workers exchange *increments* of new
   non-dominated points (:class:`ArchiveDelta`, a compact struct-packed
   batch of objective vectors) instead of re-publishing whole archives;
   the same byte-level protocol works over multiprocessing queues today
   and over sockets for multi-node sharding next.

None of this touches exactness: scheduling decisions only change *when*
dominance pruning happens, never *what* the merged front contains.  A
steal moves a cube between solvers whose learned state is sound for
every cube; a re-split replaces a cube by a partition of itself; a delta
only injects objective vectors of feasible implementations.  The
bit-identical-front guarantee of ``docs/PARALLEL.md`` therefore survives
every combination (property-tested in ``tests/test_parallel.py``).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dse.pareto import dominates, hypervolume_box, weakly_dominates
from repro.synthesis.encoding import ObjectiveSpec

__all__ = [
    "ArchiveDelta",
    "CubeScheduler",
    "cube_objective_box",
    "DEFAULT_RESPLIT_CONFLICTS",
    "STEAL_ORDERS",
    "TARGET_CUBE_FACTOR",
    "MAX_STEALING_CUBES",
]

#: Conflicts a cube may burn before it is split one level deeper.
DEFAULT_RESPLIT_CONFLICTS = 1_000

#: Victim-selection policies for stealing (all deterministic; the
#: equivalence property tests sweep them).
STEAL_ORDERS = ("busiest", "roundrobin", "reverse")

#: The stealing scheduler over-partitions to ``TARGET_CUBE_FACTOR * jobs``
#: cubes so the deques stay deep enough to steal from.
TARGET_CUBE_FACTOR = 8

#: Hard cap on the initial cube count: grounding is shared, but every
#: cube costs a dispatch round-trip and an assumption-based solver
#: restart, so past this point scheduling overhead rivals what the
#: shared ground program saved.
MAX_STEALING_CUBES = 512


class ArchiveDelta:
    """A compact batch of newly archived objective vectors.

    Wire format (little-endian): ``<II`` header with the point count and
    the objective dimension, then one ``<q`` per component, row-major.
    8 bytes + 8·n·d total — workers exchange these increments instead of
    whole archives, and the parent re-broadcasts the blob untouched.
    """

    __slots__ = ("vectors",)

    _HEADER = struct.Struct("<II")

    def __init__(self, vectors: Iterable[Sequence[int]]):
        self.vectors: List[Tuple[int, ...]] = [
            tuple(vector) for vector in vectors
        ]

    def __len__(self) -> int:
        return len(self.vectors)

    def __iter__(self):
        return iter(self.vectors)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ArchiveDelta) and self.vectors == other.vectors

    def to_bytes(self) -> bytes:
        dimension = len(self.vectors[0]) if self.vectors else 0
        flat = [component for vector in self.vectors for component in vector]
        return self._HEADER.pack(len(self.vectors), dimension) + struct.pack(
            f"<{len(flat)}q", *flat
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ArchiveDelta":
        count, dimension = cls._HEADER.unpack_from(blob)
        flat = struct.unpack_from(f"<{count * dimension}q", blob, cls._HEADER.size)
        return cls(
            flat[row * dimension : (row + 1) * dimension]
            for row in range(count)
        )


class _ObjectiveProfile:
    """Weight maps of one objective, for cube bound estimation."""

    def __init__(self, spec: ObjectiveSpec):
        self.name = spec.name
        self.kind = spec.kind
        self.max_value = spec.max_value
        self.bind: Dict[str, Dict[str, int]] = {}
        self.alloc: Dict[str, int] = {}
        self.other_max = 0
        for weight, atom in spec.terms:
            name = getattr(atom, "name", None)
            arguments = getattr(atom, "arguments", ())
            if name == "bind" and len(arguments) == 2:
                task = str(arguments[0])
                resource = str(arguments[1])
                self.bind.setdefault(task, {})[resource] = (
                    self.bind.get(task, {}).get(resource, 0) + weight
                )
            elif name == "alloc" and len(arguments) == 1:
                resource = str(arguments[0])
                self.alloc[resource] = self.alloc.get(resource, 0) + weight
            else:
                self.other_max += max(weight, 0)

    def bounds(self, cube: Dict[str, str]) -> Tuple[int, int]:
        """Inclusive ``(lower, upper)`` objective bounds for ``cube``."""
        if self.kind != "pb":
            return 0, self.max_value
        low = high = 0
        for task, options in self.bind.items():
            pinned = cube.get(task)
            if pinned is not None:
                weight = options.get(pinned, 0)
                low += weight
                high += weight
            else:
                low += min(options.values(), default=0)
                high += max(options.values(), default=0)
        pinned_resources = {cube[task] for task in cube}
        for resource, weight in self.alloc.items():
            if resource in pinned_resources:
                low += weight
                high += weight
            else:
                high += weight
        high += self.other_max
        return low, high


def cube_objective_box(
    objectives: Sequence[ObjectiveSpec], cube: Dict[str, str]
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Estimated objective bounding box of a cube's subspace.

    Pseudo-Boolean objectives sum the pinned ``bind``/``alloc`` weights
    exactly and bracket the unpinned tasks by their cheapest/costliest
    mapping option; theory-variable objectives span ``[0, max_value]``.
    A heuristic for scheduling only — never consulted for pruning.
    """
    profiles = [_ObjectiveProfile(spec) for spec in objectives]
    bounds = [profile.bounds(cube) for profile in profiles]
    return (
        tuple(low for low, _high in bounds),
        tuple(high for _low, high in bounds),
    )


class _QueuedCube:
    __slots__ = ("bindings", "sequence", "priority")

    def __init__(self, bindings: Dict[str, str], sequence: int):
        self.bindings = bindings
        self.sequence = sequence
        self.priority = 0


class CubeScheduler:
    """Per-worker cube deques with stealing, priorities, and re-splits.

    The scheduler is the single source of truth for cube ownership.  It
    lives in the coordinating process (the inline loop or the process
    backend's parent); workers only ever hold the one cube they are
    executing, so stealing and re-prioritisation never race with a
    solver.  ``schedule="static"`` degrades to the original fixed
    round-robin shares: no stealing, no priorities, no re-splitting —
    cubes run in exactly the pre-PR order.
    """

    def __init__(
        self,
        cubes: Sequence[Dict[str, str]],
        jobs: int,
        choices: Sequence[Tuple[str, List[str]]] = (),
        objectives: Sequence[ObjectiveSpec] = (),
        schedule: str = "stealing",
        steal_order: str = "busiest",
    ):
        if schedule not in ("static", "stealing"):
            raise ValueError(f"unknown schedule {schedule!r}")
        if steal_order not in STEAL_ORDERS:
            raise ValueError(f"unknown steal order {steal_order!r}")
        self.schedule = schedule
        self.steal_order = steal_order
        self.jobs = jobs
        self._choices = [(task, list(options)) for task, options in choices]
        self._profiles = [_ObjectiveProfile(spec) for spec in objectives]
        self._sequence = 0
        # Same deterministic round-robin assignment the static scheduler
        # used; under "stealing" it is merely the starting ownership.
        self._queues: List[List[_QueuedCube]] = [
            [self._make(cube) for cube in cubes[worker::jobs]]
            for worker in range(jobs)
        ]
        self._archive: List[Tuple[int, ...]] = []
        self._revision = 0
        self._sorted_revision = [-1] * jobs
        self._roundrobin = 0
        #: Telemetry the parent merges into the run statistics.
        self.steals = [0] * jobs
        self.resplits = 0
        self.dispatched = 0

    # -- queue plumbing ----------------------------------------------------------

    def _make(self, bindings: Dict[str, str]) -> _QueuedCube:
        cube = _QueuedCube(dict(bindings), self._sequence)
        self._sequence += 1
        return cube

    def _priority(self, cube: _QueuedCube) -> int:
        lower = []
        upper = []
        for profile in self._profiles:
            low, high = profile.bounds(cube.bindings)
            lower.append(low)
            # Reference point: one past the objective's declared maximum
            # (so a front point at the maximum still bounds volume).
            upper.append(max(profile.max_value, high) + 1)
        return hypervolume_box(lower, upper, self._archive)

    def _refresh(self, worker: int) -> None:
        """Re-sort a queue by descending priority (lazily, per revision)."""
        if self.schedule != "stealing" or not self._profiles:
            return
        if self._sorted_revision[worker] == self._revision:
            return
        queue = self._queues[worker]
        for cube in queue:
            cube.priority = self._priority(cube)
        # Stable + sequence tie-break keeps the order deterministic.
        queue.sort(key=lambda cube: (-cube.priority, cube.sequence))
        self._sorted_revision[worker] = self._revision

    def outstanding(self) -> int:
        """Cubes still queued (not counting any a worker is executing)."""
        return sum(len(queue) for queue in self._queues)

    def queue_sizes(self) -> List[int]:
        return [len(queue) for queue in self._queues]

    # -- the scheduling decisions ------------------------------------------------

    def next_cube(self, worker: int) -> Optional[Dict[str, str]]:
        """Pop the next cube for ``worker`` — own head first, then steal.

        The owner consumes the head of its deque (the fattest remaining
        region under the current archive); an idle worker steals from
        the *tail* of a victim chosen by ``steal_order`` ("busiest":
        deepest deque, lowest id on ties; "roundrobin": cycling scan;
        "reverse": descending-id scan).  Returns ``None`` when every
        deque is empty.
        """
        self._refresh(worker)
        queue = self._queues[worker]
        if queue:
            self.dispatched += 1
            return queue.pop(0).bindings
        if self.schedule != "stealing":
            return None
        victim = self._pick_victim(worker)
        if victim is None:
            return None
        self._refresh(victim)
        stolen = self._queues[victim].pop()
        self.steals[worker] += 1
        self.dispatched += 1
        return stolen.bindings

    def _pick_victim(self, thief: int) -> Optional[int]:
        candidates = [
            worker
            for worker in range(self.jobs)
            if worker != thief and self._queues[worker]
        ]
        if not candidates:
            return None
        if self.steal_order == "busiest":
            return max(candidates, key=lambda w: (len(self._queues[w]), -w))
        if self.steal_order == "reverse":
            return max(candidates)
        # "roundrobin": cycling scan so steal pressure spreads out.
        for offset in range(self.jobs):
            worker = (self._roundrobin + offset) % self.jobs
            if worker in candidates:
                self._roundrobin = (worker + 1) % self.jobs
                return worker
        return None

    def splittable(self, bindings: Dict[str, str]) -> bool:
        """Whether a cube has an unpinned branching task left."""
        return any(task not in bindings for task, _options in self._choices)

    def resplit(self, worker: int, bindings: Dict[str, str]) -> int:
        """Split an over-budget cube one binding level deeper.

        The children (one per mapping option of the first unpinned
        branching task) partition the abandoned cube exactly, so
        exploring them instead of their parent preserves exactness.
        They enter the abandoning worker's own deque — idle workers pick
        them up through the regular stealing path.  Returns the number
        of children enqueued; 0 when the cube has no binding level left
        (the caller must then finish the cube itself).
        """
        for task, options in self._choices:
            if task not in bindings:
                children = []
                for option in options:
                    child = dict(bindings)
                    child[task] = option
                    children.append(self._make(child))
                self._queues[worker].extend(children)
                self._sorted_revision[worker] = -1
                self.resplits += 1
                return len(children)
        return 0

    # -- archive feedback --------------------------------------------------------

    def observe(self, vectors: Iterable[Sequence[int]]) -> None:
        """Fold freshly published points into the priority archive.

        The scheduler keeps its own non-dominated view purely for
        hypervolume priorities; the revision bump makes every queue
        re-sort lazily on its next access.
        """
        if self.schedule != "stealing" or not self._profiles:
            return
        changed = False
        for vector in vectors:
            vector = tuple(vector)
            if any(weakly_dominates(point, vector) for point in self._archive):
                continue
            self._archive = [
                point
                for point in self._archive
                if not dominates(vector, point)
            ]
            self._archive.append(vector)
            changed = True
        if changed:
            self._archive.sort()
            self._revision += 1

"""CLI: run the exact multi-objective DSE on an instance.

Usage::

    python -m repro.dse --tasks 8 --seed 1 --platform mesh --size 3x2
    python -m repro.dse --spec my_instance.json --objectives latency,energy
    python -m repro.dse --tasks 6 --epsilon 2 --archive quadtree
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.render import render_table
from repro.dse.explorer import ExactParetoExplorer
from repro.synthesis.encoding import encode
from repro.synthesis.io import load_specification
from repro.workloads import WorkloadConfig, generate_specification


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.dse", description=__doc__)
    source = parser.add_argument_group("instance")
    source.add_argument("--spec", help="JSON specification file")
    source.add_argument("--tasks", type=int, default=6, help="generator: #tasks")
    source.add_argument("--seed", type=int, default=0, help="generator seed")
    source.add_argument(
        "--fuzz-replay",
        type=int,
        default=None,
        metavar="SEED",
        help="rebuild the fuzzer's spec input for SEED (from a "
        "'python -m repro.fuzz' finding's seed line) and explore it; "
        "overrides --spec/--tasks/--objectives/--latency-bound",
    )
    source.add_argument(
        "--platform", choices=("mesh", "bus", "ring"), default="mesh"
    )
    source.add_argument("--size", default="2x2", help="mesh COLSxROWS or node count")

    options = parser.add_argument_group("exploration")
    options.add_argument(
        "--objectives",
        default="latency,energy,cost",
        help="comma-separated subset of latency,energy,cost",
    )
    options.add_argument("--epsilon", type=int, default=0, help="approximation factor")
    options.add_argument("--archive", choices=("list", "quadtree"), default="list")
    options.add_argument(
        "--solver-core",
        choices=("flat", "reference"),
        default=None,
        help="CDNL engine: flat array core (default) or the reference "
        "object core (differential oracle; see docs/SOLVER.md)",
    )
    options.add_argument("--budget", type=int, default=None, help="conflict limit")
    options.add_argument(
        "--latency-bound", type=int, default=None, help="hard deadline"
    )
    options.add_argument(
        "--serialize", action="store_true", help="serialize shared resources"
    )
    options.add_argument(
        "--heuristics", action="store_true", help="objective-aware decision phases"
    )
    options.add_argument(
        "--output", default=None, help="write the front as JSON to this file"
    )
    options.add_argument(
        "--lint",
        action="store_true",
        help="validate the spec and lint the encoding before exploring "
        "(exit 1 on error-severity diagnostics)",
    )
    options.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="lint diagnostic output format (with --lint)",
    )
    options.add_argument(
        "--pin",
        action="append",
        default=[],
        metavar="TASK=RESOURCE",
        help="pin a task to a resource (repeatable; what-if exploration)",
    )
    options.add_argument(
        "--symmetry",
        choices=("on", "off", "auto"),
        default="off",
        help="lex-leader platform symmetry breaking: on = require it, "
        "auto = apply when the platform has non-trivial automorphisms, "
        "off = default (the front of vectors is identical either way; "
        "see docs/SYMMETRY.md)",
    )
    options.add_argument(
        "--domain-bounds",
        choices=("on", "off", "auto"),
        default="off",
        help="seed theory objective bounds from the abstract domain "
        "analysis: on = require it, auto = decline gracefully, off = "
        "default (the front is identical either way; see docs/DOMAINS.md)",
    )

    par = parser.add_argument_group("parallel exploration")
    par.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker count; >1 switches to subspace-splitting workers",
    )
    par.add_argument(
        "--split-depth",
        type=int,
        default=None,
        help="binding decisions to split on (default: derived from --jobs)",
    )
    par.add_argument(
        "--chunk-conflicts",
        type=int,
        default=None,
        help="conflicts per solver call between archive syncs (parallel only)",
    )
    par.add_argument(
        "--no-share",
        action="store_true",
        help="isolate worker archives (ablation; front stays exact)",
    )
    par.add_argument(
        "--backend",
        choices=("process", "inline"),
        default="process",
        help="parallel backend (inline = deterministic in-process)",
    )
    par.add_argument(
        "--schedule",
        choices=("static", "stealing"),
        default="stealing",
        help="cube scheduler: fixed round-robin shares (static) or "
        "elastic work-stealing with hypervolume-ordered queues (default)",
    )
    par.add_argument(
        "--resplit-budget",
        type=int,
        default=None,
        metavar="CONFLICTS",
        help="conflicts a cube may burn before it is split one binding "
        "level deeper (stealing scheduler; 0 disables re-splitting)",
    )
    par.add_argument(
        "--steal-order",
        choices=("busiest", "roundrobin", "reverse"),
        default="busiest",
        help="victim selection policy for work stealing",
    )
    args = parser.parse_args(argv)

    if args.fuzz_replay is not None:
        from repro.fuzz.generators import generate_spec

        fuzz_input = generate_spec(args.fuzz_replay)
        spec = fuzz_input.specification
        args.objectives = ",".join(fuzz_input.objectives)
        args.latency_bound = fuzz_input.latency_bound
        print(
            f"fuzz replay: seed {args.fuzz_replay}, "
            f"notes: {', '.join(fuzz_input.notes) or 'none'}"
        )
    elif args.spec:
        spec = load_specification(args.spec)
    else:
        if args.platform == "mesh":
            cols, _, rows = args.size.partition("x")
            size = (int(cols), int(rows or cols))
        else:
            size = (int(args.size.split("x")[0]), 0)
        spec = generate_specification(
            WorkloadConfig(
                tasks=args.tasks,
                seed=args.seed,
                platform=args.platform,
                platform_size=size,
            )
        )

    print("instance:", spec.summary())
    pins = {}
    for entry in args.pin:
        task, _, resource = entry.partition("=")
        if not task or not resource:
            parser.error(f"malformed --pin {entry!r}")
        pins[task] = resource
    symmetry = args.symmetry
    if pins and symmetry != "off":
        # A pin can exclude an orbit's lex-minimal representative, which
        # would silently lose front points.
        if symmetry == "on":
            parser.error("--symmetry on cannot be combined with --pin")
        print("symmetry: declined (pinned bindings)")
        symmetry = "off"
    objectives = tuple(name.strip() for name in args.objectives.split(","))
    instance = encode(
        spec,
        objectives=objectives,
        serialize=args.serialize,
        latency_bound=args.latency_bound,
        symmetry=symmetry,
        domain_bounds=args.domain_bounds,
    )
    lint_report = None
    if args.lint:
        from repro.analysis import lint_instance

        lint_report = lint_instance(instance)
        if lint_report.diagnostics or args.format == "json":
            print(lint_report.render(args.format))
        if lint_report.errors:
            print(f"lint: {lint_report.errors} error(s), aborting")
            return 1
    if args.jobs > 1 or args.split_depth is not None:
        from repro.dse.parallel import DEFAULT_CHUNK_CONFLICTS, ParallelParetoExplorer
        from repro.dse.scheduler import DEFAULT_RESPLIT_CONFLICTS

        resplit = args.resplit_budget
        if resplit is None:
            resplit = DEFAULT_RESPLIT_CONFLICTS
        explorer = ParallelParetoExplorer(
            instance,
            jobs=max(args.jobs, 1),
            split_depth=args.split_depth,
            backend=args.backend,
            schedule=args.schedule,
            steal_order=args.steal_order,
            resplit_conflicts=resplit or None,
            chunk_conflicts=args.chunk_conflicts or DEFAULT_CHUNK_CONFLICTS,
            share_archive=not args.no_share,
            conflict_limit=args.budget,
            fixed_bindings=pins,
            archive=args.archive,
            epsilon=args.epsilon,
            objective_phases=args.heuristics,
            solver_core=args.solver_core,
        )
    else:
        explorer = ExactParetoExplorer(
            instance,
            archive=args.archive,
            epsilon=args.epsilon,
            conflict_limit=args.budget,
            objective_phases=args.heuristics,
            fixed_bindings=pins,
            solver_core=args.solver_core,
        )
    result = explorer.run()
    stats = result.statistics
    if lint_report is not None:
        stats.lint_seconds = lint_report.seconds
        stats.lint_errors = lint_report.errors
        stats.lint_warnings = lint_report.warnings
        stats.lint_infos = lint_report.infos

    rows = []
    for point in result.front:
        row = dict(zip(result.objectives, point.vector))
        row["binding"] = ", ".join(
            f"{t}:{r}" for t, r in sorted(point.implementation.binding.items())
        )
        rows.append(row)
    title = (
        f"{'Exact' if args.epsilon == 0 else f'{args.epsilon}-approximate'} "
        f"Pareto front ({len(rows)} points)"
    )
    print()
    print(render_table(title, list(result.objectives) + ["binding"], rows))
    print(
        f"\n{stats.models_enumerated} models, {stats.conflicts} conflicts, "
        f"{stats.pruned_partial}+{stats.pruned_total} prunings, "
        f"{stats.wall_time:.2f}s"
        + (", INTERRUPTED (budget)" if stats.interrupted else "")
    )
    print(
        f"grounding: {stats.grounds} ground(s), {stats.grounding_seconds:.3f}s, "
        f"{stats.instantiations} instantiations, {stats.delta_rounds} delta rounds"
        + (", cache hit" if stats.ground_cache_hit else "")
    )
    print(
        f"solver: {stats.solver_core or 'flat'} core, "
        f"{stats.propagations} propagations, {stats.restarts} restarts, "
        f"{stats.clause_db_bytes} clause db bytes"
    )
    if instance.symmetry is not None:
        info = instance.symmetry
        if info.applied:
            print(
                f"symmetry: group order {info.order}, {info.generators} "
                f"generator(s), {info.orbits} non-trivial orbit(s), "
                f"{info.constraints} lex-leader constraint(s), "
                f"{info.seconds:.3f}s"
            )
        else:
            print(f"symmetry: declined ({info.declined})")
    if instance.domain is not None or stats.domain_mode:
        info = instance.domain
        if info is not None and info.applied:
            bounds = ", ".join(
                f"{name} in [{lo}, {hi}]"
                for name, (lo, hi) in sorted(info.bounds.items())
            )
            print(
                f"domains: {info.predicates} predicate(s), "
                f"{info.widenings} widening(s), seeded {bounds}, "
                f"{stats.domain_seconds:.3f}s"
            )
        elif info is not None:
            print(f"domains: declined ({info.declined})")
        if stats.domain_pruned or stats.domain_rules_skipped:
            print(
                f"domains: grounder pruned {stats.domain_pruned} "
                f"candidate(s), skipped {stats.domain_rules_skipped} "
                f"dead rule(s)"
            )
    if lint_report is not None:
        print(
            f"lint: {stats.lint_errors} error(s), {stats.lint_warnings} "
            f"warning(s), {stats.lint_infos} info(s), {stats.lint_seconds:.3f}s"
        )
    if stats.per_worker:
        print(
            f"scheduler: {args.schedule}, {stats.cubes_executed} cubes "
            f"executed, {stats.steals} steals, {stats.resplits} resplits, "
            f"{stats.archive_delta_bytes} delta bytes, "
            f"{stats.archive_dedup_skips} dedup skips"
        )
    for worker in stats.per_worker:
        print(
            f"  worker {worker['worker']}: {worker['cubes']} cubes, "
            f"{worker.get('steals', 0)} steals, "
            f"{worker['models_enumerated']} models, "
            f"{worker['conflicts']} conflicts, "
            f"{worker['injected']} foreign points, "
            f"{worker.get('delta_bytes', 0)} delta bytes, "
            f"{worker['wall_time']:.2f}s"
        )
    if args.output:
        result.save(args.output)
        print(f"front written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

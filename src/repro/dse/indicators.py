"""Front quality indicators: hypervolume and (additive) epsilon.

Used by the benchmark harness to quantify how close a heuristic or
approximate front is to the exact one (Fig. 1 companion numbers).

* :func:`hypervolume` — the volume of objective space weakly dominated
  by a front, bounded by a reference point (minimization).  Implemented
  with the classic dimension-sweep recursion (exact in any dimension;
  exponential in the number of objectives, which is <= 3 here).
* :func:`additive_epsilon` — the smallest ``e`` such that shifting the
  approximation down by ``e`` in every component makes it weakly
  dominate the reference front.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["hypervolume", "additive_epsilon", "front_coverage"]

Vector = Tuple[int, ...]


def hypervolume(front: Sequence[Sequence[int]], reference: Sequence[int]) -> float:
    """Hypervolume of ``front`` w.r.t. ``reference`` (minimization).

    Points not strictly better than the reference in every dimension
    contribute nothing.  Exact; suitable for the small fronts of the
    evaluation (dimension-sweep recursion).
    """
    reference = tuple(reference)
    points = [
        tuple(p)
        for p in front
        if all(x < r for x, r in zip(p, reference))
    ]
    if not points:
        return 0.0
    return _hv(sorted(set(points)), reference)


def _hv(points: List[Vector], reference: Vector) -> float:
    """Dimension-sweep: slice along the first objective."""
    if len(reference) == 1:
        return float(reference[0] - min(p[0] for p in points))
    # Sort by the first coordinate; sweep slabs between successive values.
    points = sorted(points)
    total = 0.0
    seen: List[Vector] = []
    for index, point in enumerate(points):
        upper = points[index + 1][0] if index + 1 < len(points) else reference[0]
        seen.append(point[1:])
        width = upper - point[0]
        if width <= 0:
            continue
        # Non-dominated projections of everything seen so far.
        projections = [
            p
            for p in seen
            if not any(
                q != p and all(a <= b for a, b in zip(q, p)) for q in seen
            )
        ]
        total += width * _hv(sorted(set(projections)), reference[1:])
    return total


def additive_epsilon(
    approximation: Sequence[Sequence[int]], reference_front: Sequence[Sequence[int]]
) -> int:
    """Smallest ``e`` with: for every reference point ``r`` there is an
    approximation point ``a`` such that ``a_i - e <= r_i`` in every
    component.  0 means the approximation covers the whole front."""
    if not reference_front:
        return 0
    if not approximation:
        raise ValueError("empty approximation has no epsilon indicator")
    worst = 0
    for r in reference_front:
        best = min(
            max(a_i - r_i for a_i, r_i in zip(a, r)) for a in approximation
        )
        worst = max(worst, best)
    return max(worst, 0)


def front_coverage(
    approximation: Sequence[Sequence[int]], reference_front: Sequence[Sequence[int]]
) -> float:
    """Fraction of reference points present in the approximation."""
    if not reference_front:
        return 1.0
    reference = {tuple(r) for r in reference_front}
    found = {tuple(a) for a in approximation} & reference
    return len(found) / len(reference)

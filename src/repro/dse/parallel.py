"""Parallel exact Pareto enumeration: subspace splitting + shared archive.

The sequential :class:`~repro.dse.explorer.ExactParetoExplorer` already
enumerates the exact front; this module splits the *design space* into
disjoint subspaces and explores them with cooperating workers:

1. **Guiding-path partition** — the encoding introduces an exactly-one
   ``bind(T, R)`` choice per task, so fixing the bindings of the first
   ``k`` branching tasks yields a partition of the design space into
   disjoint *cubes* (:func:`derive_cubes`).  Every implementation lies in
   exactly one cube, hence the union of the per-cube Pareto fronts,
   filtered for dominance (:func:`~repro.dse.pareto.non_dominated_union`),
   is the exact global front regardless of how cubes are distributed.

2. **Elastic scheduling** — cubes live in per-worker deques managed by
   :class:`~repro.dse.scheduler.CubeScheduler`: idle workers steal from
   the busiest deque, queues are ordered by estimated hypervolume
   contribution against the current archive, and cubes that exceed a
   conflict budget are split one binding level deeper and re-queued
   (``schedule="stealing"``, the default).  ``schedule="static"``
   restores the original fixed round-robin shares.

3. **Workers** — each worker reuses the parent's ground program and
   explores the cubes it is handed through assumption-based incremental
   solving; learned clauses, dominance-pruning clauses, and the Pareto
   archive all remain sound across cubes because they are consequences
   of the (cube independent) program plus archive points.

4. **Archive deltas** — workers publish incremental batches of new
   non-dominated points (:class:`~repro.dse.scheduler.ArchiveDelta`, a
   compact struct-packed vector batch); foreign deltas are injected into
   the local :class:`~repro.dse.explorer.DominancePropagator` archive
   between solver calls, after an O(1) hash dedup of vectors the worker
   has already seen.  Injection can only *prune*: a partial assignment
   is cut exactly when an archive point weakly dominates its objective
   lower bound, and archive points are objective vectors of feasible
   implementations, so anything pruned is weakly dominated globally and
   cannot contribute a new front vector.  Because weak dominance
   includes equality, a worker whose candidate ties a foreign vector
   skips a duplicate, never a missing vector.  Solving is *chunked* by a
   per-call conflict budget so workers deep in an UNSAT proof still
   synchronize.

Exactness therefore does not depend on scheduling: stealing, priority
reordering, re-splitting, and delta injection may only change *when*
pruning happens, never *what* the merged front contains, so the merged
front is bit-for-bit the sequential front for any worker count, split
depth, steal order, re-split budget, or interleaving (property-tested in
``tests/test_parallel.py``; exactness argument in ``docs/PARALLEL.md``).
"""

from __future__ import annotations

import queue
import traceback
from itertools import product
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.asp.control import _ground_text_cached
from repro.asp.ground import GroundProgram
from repro.dse.explorer import (
    DseResult,
    DseStatistics,
    ExactParetoExplorer,
    ParetoPoint,
)
from repro.dse.pareto import non_dominated_union
from repro.dse.scheduler import (
    ArchiveDelta,
    CubeScheduler,
    DEFAULT_RESPLIT_CONFLICTS,
    MAX_STEALING_CUBES,
    TARGET_CUBE_FACTOR,
)
from repro.synthesis.encoding import EncodedInstance
from repro.synthesis.model import Specification

__all__ = [
    "binding_choices",
    "auto_split_depth",
    "derive_cubes",
    "ParallelParetoExplorer",
]

#: Per-solver-call conflict budget between archive synchronization points.
DEFAULT_CHUNK_CONFLICTS = 200

#: Points buffered before a worker publishes an archive delta (deltas
#: are also flushed at every chunk and cube boundary, so batching only
#: defers publication by at most one solver call).
DELTA_BATCH = 8


def binding_choices(
    spec: Specification, fixed_bindings: Optional[Dict[str, str]] = None
) -> List[Tuple[str, List[str]]]:
    """Splittable binding decisions as ``(task, resource options)`` pairs.

    Mirrors the encoding's exactly-one ``bind/2`` choice rules, in task
    declaration order; pinned tasks (``fixed_bindings``) and tasks with a
    single mapping option carry no branching and are skipped.
    """
    pinned = frozenset(fixed_bindings or ())
    choices: List[Tuple[str, List[str]]] = []
    for task in spec.application.tasks:
        if task.name in pinned:
            continue
        options = [option.resource for option in spec.options_of(task.name)]
        if len(options) > 1:
            choices.append((task.name, options))
    return choices


def auto_split_depth(
    spec: Specification,
    jobs: int,
    fixed_bindings: Optional[Dict[str, str]] = None,
    schedule: str = "static",
) -> int:
    """Split depth derived from the worker count and the scheduler.

    ``schedule="static"`` keeps the original rule: the smallest depth
    yielding at least ``2 * jobs`` cubes, a mild over-partition so fixed
    round-robin shares still balance when cube hardness is uneven.

    ``schedule="stealing"`` targets ``TARGET_CUBE_FACTOR * jobs`` cubes
    instead: the deques must stay deep enough to steal from and to
    re-order as archive deltas arrive, and fine cubes keep the critical
    path short.  The count is capped at ``MAX_STEALING_CUBES`` — the
    ground program is shared, but every cube still costs a dispatch
    round-trip and an assumption-based solver restart, so past the cap
    the scheduling overhead rivals what the shared grounding saved (a
    cube over-running its budget is re-split adaptively anyway).
    """
    if jobs <= 1 and schedule == "static":
        return 0
    choices = binding_choices(spec, fixed_bindings)
    if schedule == "stealing":
        target = TARGET_CUBE_FACTOR * max(jobs, 1)
        cubes = 1
        for depth, (_task, options) in enumerate(choices, start=1):
            if cubes * len(options) > MAX_STEALING_CUBES:
                return depth - 1
            cubes *= len(options)
            if cubes >= target:
                return depth
        return len(choices)
    if jobs <= 1:
        return 0
    cubes = 1
    for depth, (_task, options) in enumerate(choices, start=1):
        cubes *= len(options)
        if cubes >= 2 * jobs:
            return depth
    return len(choices)


def derive_cubes(
    spec: Specification,
    depth: int,
    fixed_bindings: Optional[Dict[str, str]] = None,
) -> List[Dict[str, str]]:
    """Disjoint guiding-path cubes over the first ``depth`` binding choices.

    Each cube is a ``task -> resource`` dict extending ``fixed_bindings``.
    Because every task's binding choice is exactly-one, the cubes of a
    given depth partition the design space (restricted to the pinned
    bindings): each implementation satisfies exactly one cube.  Depth 0
    (or no branching tasks) yields the single cube ``fixed_bindings``.
    """
    base = dict(fixed_bindings or {})
    choices = binding_choices(spec, fixed_bindings)[: max(depth, 0)]
    if not choices:
        return [base]
    tasks = [task for task, _options in choices]
    cubes: List[Dict[str, str]] = []
    for combo in product(*(options for _task, options in choices)):
        cube = dict(base)
        cube.update(zip(tasks, combo))
        cubes.append(cube)
    return cubes


class _CubeRunner:
    """One worker's incremental explorer, executing cubes one at a time.

    The explorer grounds once (or reuses the parent's shipped artifact);
    cubes are entered via solve assumptions, so learned clauses and the
    dominance archive persist across cubes — including stolen and
    re-split ones.  Solving is chunked by a per-call conflict budget
    (``chunk_conflicts``) so the surrounding loop can inject foreign
    deltas even while the solver is deep inside an UNSAT proof;
    ``conflict_limit`` is the worker's *total* budget (the run reports
    ``interrupted`` when it is hit), and ``resplit_conflicts`` is the
    per-cube budget after which a splittable cube is handed back to the
    scheduler for re-splitting.
    """

    def __init__(
        self,
        instance: EncodedInstance,
        explorer_options: Optional[Dict[str, object]] = None,
        chunk_conflicts: Optional[int] = DEFAULT_CHUNK_CONFLICTS,
        conflict_limit: Optional[int] = None,
        ground_program: Optional[GroundProgram] = None,
        resplit_conflicts: Optional[int] = None,
        branch_tasks: Sequence[str] = (),
    ):
        options = dict(explorer_options or {})
        options.pop("fixed_bindings", None)  # baked into the cubes
        options.pop("conflict_limit", None)
        options.pop("ground_program", None)  # shipped by the parent
        self.explorer = ExactParetoExplorer(
            instance,
            conflict_limit=chunk_conflicts,
            ground_program=ground_program,
            **options,
        )
        self._conflict_limit = conflict_limit
        self._resplit_conflicts = resplit_conflicts
        self._branch_tasks = tuple(branch_tasks)
        self.current: Optional[Dict[str, str]] = None
        self._assumptions = []
        self._cube_mark = 0
        self.cubes_executed = 0
        self.interrupted = False
        self.injected = 0
        self.delta_bytes = 0
        self.wall_time = 0.0

    def begin(self, cube: Dict[str, str]) -> None:
        self.current = dict(cube)
        self._assumptions = self.explorer.bind_assumptions(self.current)
        self._cube_mark = self.explorer.conflict_mark()
        self.cubes_executed += 1

    def abandon(self) -> Dict[str, str]:
        """Hand the over-budget cube back (for the scheduler to split)."""
        cube = self.current
        self.current = None
        assert cube is not None
        return cube

    def inject_vectors(self, vectors) -> int:
        accepted = self.explorer.inject_points(
            (vector, None) for vector in vectors
        )
        self.injected += accepted
        return accepted

    def _splittable(self) -> bool:
        current = self.current or {}
        return any(task not in current for task in self._branch_tasks)

    def step(self) -> Tuple[str, Optional[ParetoPoint]]:
        """Advance the current cube by one chunked solver call.

        Returns ``("model", point)`` for a newly found Pareto point,
        ``("chunk", None)`` when a budget slice was spent (call again),
        ``("budget", None)`` when the cube exceeded its re-split budget
        (call :meth:`abandon` and return it to the scheduler),
        ``("cube_done", None)`` when the cube's subspace is exhausted,
        or ``("halt", None)`` when the worker's total conflict budget
        ran out.
        """
        assert self.current is not None
        started = perf_counter()
        status, point = self.explorer.solve_step(self._assumptions)
        self.wall_time += perf_counter() - started
        if status == "model":
            return ("model", point)
        if status == "interrupted":
            conflicts = self.explorer.conflict_mark()
            if (
                self._conflict_limit is not None
                and conflicts >= self._conflict_limit
            ):
                self.interrupted = True
                self.current = None
                return ("halt", None)
            if (
                self._resplit_conflicts
                and conflicts - self._cube_mark >= self._resplit_conflicts
                and self._splittable()
            ):
                return ("budget", None)
            return ("chunk", None)
        # Cube exhausted: its subspace holds no further front points.
        self.current = None
        return ("cube_done", None)

    def report(self, worker_id: int) -> Dict[str, object]:
        stats = self.explorer.collect_statistics()
        front = self.explorer.local_front()
        return {
            "worker": worker_id,
            "cubes": self.cubes_executed,
            "front": front,
            "interrupted": self.interrupted,
            "injected": self.injected,
            "delta_bytes": self.delta_bytes,
            "dedup_skips": self.explorer.dedup_skips,
            "statistics": {
                "models_enumerated": stats.models_enumerated,
                "pareto_points_local": len(front),
                "conflicts": stats.conflicts,
                "decisions": stats.decisions,
                "propagations": stats.propagations,
                "restarts": stats.restarts,
                "clause_db_bytes": stats.clause_db_bytes,
                "solver_core": stats.solver_core,
                "pruned_partial": stats.pruned_partial,
                "pruned_total": stats.pruned_total,
                "archive_comparisons": stats.archive_comparisons,
                "time_boolean_propagation": stats.time_boolean_propagation,
                "time_theory_propagation": stats.time_theory_propagation,
                "time_dominance": stats.time_dominance,
                "grounds": stats.grounds,
                "grounding_seconds": stats.grounding_seconds,
                "wall_time": self.wall_time,
            },
        }


def _worker_main(
    worker_id: int,
    instance: EncodedInstance,
    explorer_options: Dict[str, object],
    chunk_conflicts: Optional[int],
    conflict_limit: Optional[int],
    resplit_conflicts: Optional[int],
    branch_tasks: Sequence[str],
    share: bool,
    command_queue,
    result_queue,
    ground_blob: Optional[bytes] = None,
) -> None:
    """Process entry point: execute cubes the parent hands over.

    Commands: ``("cube", bindings)`` begins a cube, ``("delta", blob)``
    injects a foreign archive delta, ``("cancel",)`` abandons the
    current cube and ends the loop (cooperative cancellation),
    ``("stop",)`` ends the loop once the current cube finishes.
    Results: ``("delta", wid, blob)`` publishes new points,
    ``("next", wid)`` requests another cube, ``("resplit", wid, cube)``
    hands an over-budget cube back, ``("halt", wid)`` reports an
    exhausted total budget, ``("done", wid, report)`` closes the worker.
    """
    try:
        ground = (
            GroundProgram.from_bytes(ground_blob)
            if ground_blob is not None
            else None
        )
        runner = _CubeRunner(
            instance,
            explorer_options,
            chunk_conflicts,
            conflict_limit,
            ground_program=ground,
            resplit_conflicts=resplit_conflicts,
            branch_tasks=branch_tasks,
        )
        buffer: List[Tuple[int, ...]] = []
        stopping = False

        def flush() -> None:
            if buffer:
                blob = ArchiveDelta(buffer).to_bytes()
                runner.delta_bytes += len(blob)
                result_queue.put(("delta", worker_id, blob))
                del buffer[:]

        while True:
            block = runner.current is None and not stopping
            while True:
                try:
                    if block:
                        command = command_queue.get(timeout=0.05)
                        block = False
                    else:
                        command = command_queue.get_nowait()
                except queue.Empty:
                    break
                kind = command[0]
                if kind == "cube":
                    runner.begin(command[1])
                elif kind == "delta":
                    if share:
                        runner.inject_vectors(
                            ArchiveDelta.from_bytes(command[1]).vectors
                        )
                elif kind == "cancel":
                    # Cooperative cancellation: drop the cube mid-proof
                    # (its points so far are already flushed or in the
                    # buffer) and close the worker.
                    if runner.current is not None:
                        runner.interrupted = True
                        runner.current = None
                    stopping = True
                else:  # "stop"
                    stopping = True
            if runner.current is None:
                if stopping:
                    break
                continue
            status, point = runner.step()
            if status == "model":
                buffer.append(point.vector)
                if len(buffer) >= DELTA_BATCH:
                    flush()
            elif status == "budget":
                flush()
                result_queue.put(("resplit", worker_id, runner.abandon()))
            elif status == "cube_done":
                flush()
                result_queue.put(("next", worker_id))
            elif status == "halt":
                flush()
                result_queue.put(("halt", worker_id))
            else:  # "chunk"
                flush()
        flush()
        result_queue.put(("done", worker_id, runner.report(worker_id)))
    except Exception:  # surfaced in the parent as a RuntimeError
        result_queue.put(("error", worker_id, traceback.format_exc()))


class ParallelParetoExplorer:
    """Exact Pareto enumeration over elastically scheduled workers.

    Produces the same front as :class:`ExactParetoExplorer` — identical
    vectors and count — for every ``jobs``/``split_depth``/``schedule``
    combination (witness implementations per vector may differ, as in
    any exact enumerator).  Two backends:

    * ``"process"`` (default) — one OS process per worker
      (``multiprocessing``); the parent hosts the cube scheduler and
      brokers cube dispatch and archive deltas over queues;
    * ``"inline"`` — deterministic in-process round-robin over the same
      worker machinery and the same scheduler; useful for debugging and
      reproducible tests.

    ``schedule`` selects the cube scheduler: ``"stealing"`` (default;
    work-stealing deques, hypervolume-ordered priorities, adaptive
    re-splitting after ``resplit_conflicts`` conflicts per cube) or
    ``"static"`` (the original fixed round-robin shares).
    ``steal_order`` picks the deterministic victim-selection policy
    (``"busiest"``, ``"roundrobin"``, ``"reverse"``).

    ``share_archive=False`` isolates the workers' archives (merge still
    restores exactness); the ablation benchmark uses it to measure how
    much cross-worker pruning saves.  Remaining keyword arguments are
    forwarded to each worker's :class:`ExactParetoExplorer` (``archive``,
    ``partial_pruning``, ``validate_models``, ...).  ``epsilon > 0`` is
    forwarded too, but only ``epsilon=0`` guarantees a bit-identical
    front; the parallel epsilon front is still a valid additive-epsilon
    approximation (see ``docs/PARALLEL.md``).
    """

    def __init__(
        self,
        instance: EncodedInstance,
        jobs: int = 2,
        split_depth: Optional[int] = None,
        backend: str = "process",
        schedule: str = "stealing",
        steal_order: str = "busiest",
        resplit_conflicts: Optional[int] = DEFAULT_RESPLIT_CONFLICTS,
        chunk_conflicts: Optional[int] = DEFAULT_CHUNK_CONFLICTS,
        share_archive: bool = True,
        conflict_limit: Optional[int] = None,
        fixed_bindings: Optional[Dict[str, str]] = None,
        **explorer_options,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if backend not in ("process", "inline"):
            raise ValueError(f"unknown backend {backend!r}")
        if schedule not in ("static", "stealing"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.instance = instance
        self.jobs = jobs
        self.split_depth = split_depth
        self.backend = backend
        self.schedule = schedule
        self.steal_order = steal_order
        self.resplit_conflicts = (
            resplit_conflicts if schedule == "stealing" else None
        )
        self.chunk_conflicts = chunk_conflicts
        self.share_archive = share_archive
        self.conflict_limit = conflict_limit
        self.fixed_bindings = dict(fixed_bindings or {})
        symmetry = getattr(instance, "symmetry", None)
        if (
            self.fixed_bindings
            and symmetry is not None
            and symmetry.applied
            and symmetry.constraints > 0
        ):
            # Guiding-path cubes are fine (they partition the full space,
            # so every orbit's lex-minimal representative stays reachable)
            # but a user pin can exclude it and lose front points.
            raise ValueError(
                "fixed_bindings cannot be combined with an instance that "
                "carries lex-leader symmetry constraints; re-encode with "
                "symmetry='off' to pin bindings"
            )
        self.explorer_options = dict(explorer_options)
        self.epsilon = int(explorer_options.get("epsilon") or 0)

    def cubes(self) -> List[Dict[str, str]]:
        """The guiding-path cubes this run initially partitions into."""
        spec = self.instance.specification
        depth = self.split_depth
        if depth is None:
            depth = auto_split_depth(
                spec, self.jobs, self.fixed_bindings, schedule=self.schedule
            )
        return derive_cubes(spec, depth, self.fixed_bindings)

    def _scheduler(self, cubes: List[Dict[str, str]], jobs: int) -> CubeScheduler:
        return CubeScheduler(
            cubes,
            jobs,
            choices=binding_choices(
                self.instance.specification, self.fixed_bindings
            ),
            objectives=self.instance.objectives,
            schedule=self.schedule,
            steal_order=self.steal_order,
        )

    def run(self, on_points=None, should_stop=None) -> DseResult:
        """Run the parallel exploration; returns the merged exact front.

        ``on_points`` is the anytime snapshot hook of the serving
        layer: it is called (in the coordinating process/loop) with
        every batch of newly published objective vectors, i.e. exactly
        the :class:`ArchiveDelta` increments the workers exchange.
        ``should_stop`` is polled between scheduling steps; returning a
        truthy value cancels the run cooperatively — workers abandon
        their cubes within one conflict chunk, partial fronts are
        merged, and the result reports ``interrupted=True``.
        """
        started = perf_counter()
        cubes = self.cubes()
        jobs = max(1, min(self.jobs, len(cubes)))
        scheduler = self._scheduler(cubes, jobs)
        self._cancelled = False
        # Ground once in the parent and ship the artifact: the workers
        # reuse it instead of re-instantiating the same program each.
        ground, cache_hit = _ground_text_cached(
            self.instance.program,
            bool(self.explorer_options.get("ground_cache", True)),
            "seminaive",
        )
        self._parent_ground = ground
        self._parent_cache_hit = cache_hit
        if self.backend == "inline":
            reports = self._run_inline(
                scheduler, jobs, ground, on_points, should_stop
            )
        else:
            reports = self._run_processes(
                scheduler, jobs, ground, on_points, should_stop
            )
        return self._merge(scheduler, reports, perf_counter() - started)

    def _branch_tasks(self) -> Tuple[str, ...]:
        return tuple(
            task
            for task, _options in binding_choices(
                self.instance.specification, self.fixed_bindings
            )
        )

    # -- backends ----------------------------------------------------------------

    def _run_inline(
        self,
        scheduler: CubeScheduler,
        jobs: int,
        ground: GroundProgram,
        on_points=None,
        should_stop=None,
    ) -> Dict[int, Dict[str, object]]:
        """Deterministic round-robin over in-process workers."""
        branch_tasks = self._branch_tasks()
        runners = [
            _CubeRunner(
                self.instance,
                self.explorer_options,
                self.chunk_conflicts,
                self.conflict_limit,
                ground_program=ground,
                resplit_conflicts=self.resplit_conflicts,
                branch_tasks=branch_tasks,
            )
            for _worker in range(jobs)
        ]
        pending: List[List[Tuple[int, ...]]] = [[] for _worker in runners]
        buffers: List[List[Tuple[int, ...]]] = [[] for _worker in runners]
        halted = set()

        def flush(wid: int) -> None:
            if not buffers[wid]:
                return
            # Serialize even inline so archive_delta_bytes measures the
            # real wire cost of the protocol.
            blob = ArchiveDelta(buffers[wid]).to_bytes()
            runners[wid].delta_bytes += len(blob)
            scheduler.observe(buffers[wid])
            if on_points is not None:
                on_points(list(buffers[wid]))
            if self.share_archive:
                for other in range(jobs):
                    if other != wid and other not in halted:
                        pending[other].extend(buffers[wid])
            buffers[wid] = []

        for wid in range(jobs):
            cube = scheduler.next_cube(wid)
            if cube is not None:
                runners[wid].begin(cube)
        while True:
            if should_stop is not None and should_stop():
                self._cancelled = True
                for wid, runner in enumerate(runners):
                    flush(wid)
                    if runner.current is not None:
                        runner.interrupted = True
                        runner.current = None
                break
            progressed = False
            for wid, runner in enumerate(runners):
                if wid in halted:
                    continue
                if pending[wid]:
                    runner.inject_vectors(pending[wid])
                    pending[wid] = []
                if runner.current is None:
                    cube = scheduler.next_cube(wid)
                    if cube is None:
                        continue
                    runner.begin(cube)
                progressed = True
                status, point = runner.step()
                if status == "model":
                    buffers[wid].append(point.vector)
                    if len(buffers[wid]) >= DELTA_BATCH:
                        flush(wid)
                elif status == "budget":
                    flush(wid)
                    cube = runner.abandon()
                    if scheduler.resplit(wid, cube) == 0:
                        runner.begin(cube)  # no binding level left
                elif status == "halt":
                    flush(wid)
                    halted.add(wid)
                else:  # "chunk" or "cube_done"
                    flush(wid)
            if not progressed:
                break
        return {wid: runner.report(wid) for wid, runner in enumerate(runners)}

    def _run_processes(
        self,
        scheduler: CubeScheduler,
        jobs: int,
        ground: GroundProgram,
        on_points=None,
        should_stop=None,
    ) -> Dict[int, Dict[str, object]]:
        """One process per worker; the parent schedules and brokers."""
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        result_queue = context.Queue()
        command_queues = [context.Queue() for _worker in range(jobs)]
        # Serialized once here; every worker deserializes the same blob
        # instead of grounding the instance again.
        ground_blob = ground.to_bytes()
        branch_tasks = self._branch_tasks()
        processes = [
            context.Process(
                target=_worker_main,
                args=(
                    wid,
                    self.instance,
                    self.explorer_options,
                    self.chunk_conflicts,
                    self.conflict_limit,
                    self.resplit_conflicts,
                    branch_tasks,
                    self.share_archive,
                    command_queues[wid],
                    result_queue,
                    ground_blob,
                ),
                daemon=True,
            )
            for wid in range(jobs)
        ]
        for process in processes:
            process.start()

        pending = set(range(jobs))
        reports: Dict[int, Dict[str, object]] = {}
        executing = [False] * jobs
        waiting = set()
        stopped = set()
        halted = set()
        delta_bytes = 0

        def dispatch(wid: int) -> None:
            if wid in stopped:
                return
            cube = scheduler.next_cube(wid)
            if cube is not None:
                command_queues[wid].put(("cube", cube))
                executing[wid] = True
            else:
                waiting.add(wid)

        def fill_waiting() -> None:
            # Re-splits refill the deques after workers went idle; hand
            # the new cubes out instead of letting them starve.
            for wid in sorted(waiting):
                if scheduler.outstanding() == 0:
                    break
                waiting.discard(wid)
                dispatch(wid)

        def maybe_stop() -> None:
            if any(executing):
                return
            active = [wid for wid in range(jobs) if wid not in halted]
            if scheduler.outstanding() and active:
                return
            for wid in range(jobs):
                if wid not in stopped:
                    command_queues[wid].put(("stop",))
                    stopped.add(wid)

        for wid in range(jobs):
            dispatch(wid)
        maybe_stop()
        def cancel_all() -> None:
            self._cancelled = True
            for wid in range(jobs):
                if wid not in stopped:
                    command_queues[wid].put(("cancel",))
                    stopped.add(wid)

        try:
            while pending:
                if (
                    not self._cancelled
                    and should_stop is not None
                    and should_stop()
                ):
                    cancel_all()
                try:
                    timeout = 0.1 if should_stop is not None else 1.0
                    message = result_queue.get(timeout=timeout)
                except queue.Empty:
                    for wid in pending:
                        if not processes[wid].is_alive():
                            raise RuntimeError(
                                f"parallel DSE worker {wid} died "
                                f"(exit code {processes[wid].exitcode})"
                            )
                    continue
                kind, wid = message[0], message[1]
                if kind == "delta":
                    blob = message[2]
                    delta_bytes += len(blob)
                    vectors = ArchiveDelta.from_bytes(blob).vectors
                    scheduler.observe(vectors)
                    if on_points is not None:
                        on_points(list(vectors))
                    if self.share_archive and not self._cancelled:
                        for other in pending:
                            if other != wid and other not in stopped:
                                command_queues[other].put(("delta", blob))
                    # Fresh priorities may not add cubes, so no refill.
                elif kind == "next":
                    executing[wid] = False
                    dispatch(wid)
                    fill_waiting()
                    maybe_stop()
                elif kind == "resplit":
                    executing[wid] = False
                    if self._cancelled:
                        pass  # the worker is already winding down
                    elif scheduler.resplit(wid, message[2]) == 0:
                        # No binding level left (defensive; the worker
                        # checks splittability first): hand it back.
                        command_queues[wid].put(("cube", message[2]))
                        executing[wid] = True
                    else:
                        dispatch(wid)
                    fill_waiting()
                    maybe_stop()
                elif kind == "halt":
                    executing[wid] = False
                    halted.add(wid)
                    command_queues[wid].put(("stop",))
                    stopped.add(wid)
                    fill_waiting()
                    maybe_stop()
                elif kind == "done":
                    reports[wid] = message[2]
                    pending.discard(wid)
                else:  # "error"
                    raise RuntimeError(
                        f"parallel DSE worker {wid} failed:\n{message[2]}"
                    )
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join()
            for q in [result_queue, *command_queues]:
                q.close()
                q.cancel_join_thread()
        self._parent_delta_bytes = delta_bytes
        return reports

    # -- merge -------------------------------------------------------------------

    def _merge(
        self,
        scheduler: CubeScheduler,
        reports: Dict[int, Dict[str, object]],
        wall_time: float,
    ) -> DseResult:
        """Non-dominated union of the worker fronts + aggregated stats."""
        ordered = [reports[wid] for wid in sorted(reports)]
        merged = non_dominated_union(*(report["front"] for report in ordered))
        stats = DseStatistics()
        stats.wall_time = wall_time
        stats.interrupted = getattr(self, "_cancelled", False)
        stats.epsilon = self.epsilon
        stats.pareto_points = len(merged)
        stats.steals = sum(scheduler.steals)
        stats.resplits = scheduler.resplits
        # Symmetry is a property of the shared instance, not of a worker.
        symmetry = getattr(self.instance, "symmetry", None)
        if symmetry is not None:
            stats.symmetry_mode = symmetry.mode
            stats.symmetry_applied = symmetry.applied
            stats.symmetry_generators = symmetry.generators
            stats.symmetry_order = symmetry.order
            stats.symmetry_orbits = symmetry.orbits
            stats.symmetry_constraints = symmetry.constraints
            stats.symmetry_seconds = symmetry.seconds
        # So is the domain analysis: the encode-time info is shared, the
        # grounding counters come from the parent's (single) grounding.
        domain = getattr(self.instance, "domain", None)
        if domain is not None:
            stats.domain_mode = domain.mode
            stats.domain_applied = domain.applied
            stats.domain_predicates = domain.predicates
            stats.domain_widenings = domain.widenings
            stats.domain_seconds += domain.seconds
        # Grounding happened (at most) once, in the parent; the workers
        # reused the shipped artifact, so their counts stay at zero.
        parent_ground = getattr(self, "_parent_ground", None)
        if parent_ground is not None:
            stats.ground_cache_hit = self._parent_cache_hit
            stats.grounds = 0 if self._parent_cache_hit else 1
            if parent_ground.grounding is not None:
                stats.instantiations = parent_ground.grounding.instantiations
                stats.delta_rounds = parent_ground.grounding.delta_rounds
                if not self._parent_cache_hit:
                    stats.grounding_seconds = parent_ground.grounding.seconds
                grounding = parent_ground.grounding
                if grounding.domain_prune:
                    stats.domain_mode = stats.domain_mode or "prune"
                    stats.domain_predicates = max(
                        stats.domain_predicates, grounding.domain_predicates
                    )
                    stats.domain_widenings = max(
                        stats.domain_widenings, grounding.domain_widenings
                    )
                    stats.domain_pruned = grounding.pruned_instances
                    stats.domain_rules_skipped = grounding.rules_skipped
                    stats.domain_seconds += grounding.domain_seconds
        for report in ordered:
            wid = report["worker"]
            inner = report["statistics"]
            stats.grounds += inner.get("grounds", 0)
            stats.models_enumerated += inner["models_enumerated"]
            stats.conflicts += inner["conflicts"]
            stats.decisions += inner["decisions"]
            stats.propagations += inner.get("propagations", 0)
            stats.restarts += inner.get("restarts", 0)
            stats.clause_db_bytes += inner.get("clause_db_bytes", 0)
            stats.solver_core = inner.get("solver_core", stats.solver_core)
            stats.pruned_partial += inner["pruned_partial"]
            stats.pruned_total += inner["pruned_total"]
            stats.archive_comparisons += inner["archive_comparisons"]
            stats.time_boolean_propagation += inner["time_boolean_propagation"]
            stats.time_theory_propagation += inner["time_theory_propagation"]
            stats.time_dominance += inner["time_dominance"]
            stats.interrupted = stats.interrupted or report["interrupted"]
            stats.cubes_executed += report["cubes"]
            stats.archive_delta_bytes += report.get("delta_bytes", 0)
            stats.archive_dedup_skips += report.get("dedup_skips", 0)
            steals = (
                scheduler.steals[wid] if wid < len(scheduler.steals) else 0
            )
            stats.per_worker.append(
                {
                    "worker": wid,
                    "cubes": report["cubes"],
                    "injected": report["injected"],
                    "interrupted": report["interrupted"],
                    "steals": steals,
                    "delta_bytes": report.get("delta_bytes", 0),
                    "dedup_skips": report.get("dedup_skips", 0),
                    **inner,
                }
            )
        names = tuple(objective.name for objective in self.instance.objectives)
        points = [
            ParetoPoint(tuple(vector), payload) for vector, payload in merged
        ]
        return DseResult(names, points, stats)

"""Parallel exact Pareto enumeration: subspace splitting + shared archive.

The sequential :class:`~repro.dse.explorer.ExactParetoExplorer` already
enumerates the exact front; this module splits the *design space* into
disjoint subspaces and explores them with cooperating workers:

1. **Guiding-path partition** — the encoding introduces an exactly-one
   ``bind(T, R)`` choice per task, so fixing the bindings of the first
   ``k`` branching tasks yields a partition of the design space into
   disjoint *cubes* (:func:`derive_cubes`).  Every implementation lies in
   exactly one cube, hence the union of the per-cube Pareto fronts,
   filtered for dominance (:func:`~repro.dse.pareto.non_dominated_union`),
   is the exact global front regardless of how cubes are distributed.

2. **Workers** — each worker grounds its instance once and explores its
   share of the cubes through assumption-based incremental solving;
   learned clauses, dominance-pruning clauses, and the Pareto archive all
   remain sound across cubes because they are consequences of the (cube
   independent) program plus archive points.

3. **Shared archive** — workers publish every Pareto point they find;
   foreign points are injected into the local
   :class:`~repro.dse.explorer.DominancePropagator` archive between
   solver calls.  Injection can only *prune*: a partial assignment is cut
   exactly when an archive point weakly dominates its objective lower
   bound, and archive points are objective vectors of feasible
   implementations, so anything pruned is weakly dominated globally and
   cannot contribute a new front vector.  Because weak dominance includes
   equality, a worker whose candidate ties a foreign vector skips a
   duplicate, never a missing vector.  Solving is *chunked* by a per-call
   conflict budget so workers deep in an UNSAT proof still synchronize.

Exactness therefore does not depend on scheduling: the merged front is
bit-for-bit the sequential front for any worker count, split depth, or
interleaving (property-tested in ``tests/test_parallel.py``).
"""

from __future__ import annotations

import queue
import traceback
from itertools import product
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.asp.control import _ground_text_cached
from repro.asp.ground import GroundProgram
from repro.dse.explorer import (
    DseResult,
    DseStatistics,
    ExactParetoExplorer,
    ParetoPoint,
)
from repro.dse.pareto import non_dominated_union
from repro.synthesis.encoding import EncodedInstance
from repro.synthesis.model import Specification

__all__ = [
    "binding_choices",
    "auto_split_depth",
    "derive_cubes",
    "ParallelParetoExplorer",
]

#: Per-solver-call conflict budget between archive synchronization points.
DEFAULT_CHUNK_CONFLICTS = 200


def binding_choices(
    spec: Specification, fixed_bindings: Optional[Dict[str, str]] = None
) -> List[Tuple[str, List[str]]]:
    """Splittable binding decisions as ``(task, resource options)`` pairs.

    Mirrors the encoding's exactly-one ``bind/2`` choice rules, in task
    declaration order; pinned tasks (``fixed_bindings``) and tasks with a
    single mapping option carry no branching and are skipped.
    """
    pinned = frozenset(fixed_bindings or ())
    choices: List[Tuple[str, List[str]]] = []
    for task in spec.application.tasks:
        if task.name in pinned:
            continue
        options = [option.resource for option in spec.options_of(task.name)]
        if len(options) > 1:
            choices.append((task.name, options))
    return choices


def auto_split_depth(
    spec: Specification, jobs: int, fixed_bindings: Optional[Dict[str, str]] = None
) -> int:
    """Smallest split depth yielding at least ``2 * jobs`` cubes.

    The factor two over-partitions so that static distribution still
    balances when cube hardness is uneven.  Capped at the number of
    branching tasks.
    """
    if jobs <= 1:
        return 0
    cubes = 1
    for depth, (_task, options) in enumerate(
        binding_choices(spec, fixed_bindings), start=1
    ):
        cubes *= len(options)
        if cubes >= 2 * jobs:
            return depth
    return len(binding_choices(spec, fixed_bindings))


def derive_cubes(
    spec: Specification,
    depth: int,
    fixed_bindings: Optional[Dict[str, str]] = None,
) -> List[Dict[str, str]]:
    """Disjoint guiding-path cubes over the first ``depth`` binding choices.

    Each cube is a ``task -> resource`` dict extending ``fixed_bindings``.
    Because every task's binding choice is exactly-one, the cubes of a
    given depth partition the design space (restricted to the pinned
    bindings): each implementation satisfies exactly one cube.  Depth 0
    (or no branching tasks) yields the single cube ``fixed_bindings``.
    """
    base = dict(fixed_bindings or {})
    choices = binding_choices(spec, fixed_bindings)[: max(depth, 0)]
    if not choices:
        return [base]
    tasks = [task for task, _options in choices]
    cubes: List[Dict[str, str]] = []
    for combo in product(*(options for _task, options in choices)):
        cube = dict(base)
        cube.update(zip(tasks, combo))
        cubes.append(cube)
    return cubes


class _CubeWorker:
    """Explores a list of cubes with one incremental explorer.

    The explorer grounds once; cubes are entered via solve assumptions,
    so learned clauses and the dominance archive persist across cubes.
    Solving is chunked by a per-call conflict budget
    (``chunk_conflicts``) so the surrounding loop can inject foreign
    points even while the solver is deep inside an UNSAT proof;
    ``conflict_limit`` is the worker's *total* budget (the run reports
    ``interrupted`` when it is hit).
    """

    def __init__(
        self,
        instance: EncodedInstance,
        cubes: Sequence[Dict[str, str]],
        explorer_options: Optional[Dict[str, object]] = None,
        chunk_conflicts: Optional[int] = DEFAULT_CHUNK_CONFLICTS,
        conflict_limit: Optional[int] = None,
        ground_program: Optional[GroundProgram] = None,
    ):
        options = dict(explorer_options or {})
        options.pop("fixed_bindings", None)  # baked into the cubes
        options.pop("conflict_limit", None)
        options.pop("ground_program", None)  # shipped by the parent
        self.explorer = ExactParetoExplorer(
            instance,
            conflict_limit=chunk_conflicts,
            ground_program=ground_program,
            **options,
        )
        self.cubes = [dict(cube) for cube in cubes]
        self._assumptions = [
            self.explorer.bind_assumptions(cube) for cube in self.cubes
        ]
        self._cube_index = 0
        self._conflict_limit = conflict_limit
        self.done = not self.cubes
        self.interrupted = False
        self.injected = 0
        self.wall_time = 0.0

    def inject(self, points) -> int:
        accepted = self.explorer.inject_points(points)
        self.injected += accepted
        return accepted

    def step(self) -> Tuple[str, Optional[ParetoPoint]]:
        """Advance by one chunked solver call.

        Returns ``("model", point)`` for a newly found Pareto point,
        ``("chunk", None)`` when a budget slice was spent or a cube was
        exhausted (call again), or ``("done", None)``.
        """
        if self.done:
            return ("done", None)
        started = perf_counter()
        status, point = self.explorer.solve_step(
            self._assumptions[self._cube_index]
        )
        self.wall_time += perf_counter() - started
        if status == "model":
            return ("model", point)
        if status == "interrupted":
            if (
                self._conflict_limit is not None
                and self.explorer.control.solver.stats.conflicts
                >= self._conflict_limit
            ):
                self.interrupted = True
                self.done = True
                return ("done", None)
            return ("chunk", None)
        # Cube exhausted: its subspace holds no further front points.
        self._cube_index += 1
        if self._cube_index >= len(self.cubes):
            self.done = True
            return ("done", None)
        return ("chunk", None)

    def report(self, worker_id: int) -> Dict[str, object]:
        stats = self.explorer.collect_statistics()
        front = self.explorer.front()
        return {
            "worker": worker_id,
            "cubes": len(self.cubes),
            "front": front,
            "interrupted": self.interrupted,
            "injected": self.injected,
            "statistics": {
                "models_enumerated": stats.models_enumerated,
                "pareto_points_local": len(front),
                "conflicts": stats.conflicts,
                "decisions": stats.decisions,
                "propagations": stats.propagations,
                "restarts": stats.restarts,
                "clause_db_bytes": stats.clause_db_bytes,
                "solver_core": stats.solver_core,
                "pruned_partial": stats.pruned_partial,
                "pruned_total": stats.pruned_total,
                "archive_comparisons": stats.archive_comparisons,
                "time_boolean_propagation": stats.time_boolean_propagation,
                "time_theory_propagation": stats.time_theory_propagation,
                "time_dominance": stats.time_dominance,
                "grounds": stats.grounds,
                "grounding_seconds": stats.grounding_seconds,
                "wall_time": self.wall_time,
            },
        }


def _worker_main(
    worker_id: int,
    instance: EncodedInstance,
    cubes: Sequence[Dict[str, str]],
    explorer_options: Dict[str, object],
    chunk_conflicts: Optional[int],
    conflict_limit: Optional[int],
    share: bool,
    inject_queue,
    point_queue,
    ground_blob: Optional[bytes] = None,
) -> None:
    """Process entry point: explore ``cubes``, stream points, report."""
    try:
        ground = (
            GroundProgram.from_bytes(ground_blob)
            if ground_blob is not None
            else None
        )
        worker = _CubeWorker(
            instance,
            cubes,
            explorer_options,
            chunk_conflicts,
            conflict_limit,
            ground_program=ground,
        )
        while True:
            if share:
                foreign = []
                while True:
                    try:
                        foreign.append(inject_queue.get_nowait())
                    except queue.Empty:
                        break
                if foreign:
                    worker.inject(foreign)
            status, point = worker.step()
            if status == "model":
                point_queue.put(
                    ("point", worker_id, point.vector, point.implementation)
                )
            elif status == "done":
                break
        point_queue.put(("done", worker_id, worker.report(worker_id)))
    except Exception:  # surfaced in the parent as a RuntimeError
        point_queue.put(("error", worker_id, traceback.format_exc()))


class ParallelParetoExplorer:
    """Exact Pareto enumeration over subspace-splitting workers.

    Produces the same front as :class:`ExactParetoExplorer` — identical
    vectors and count — for every ``jobs``/``split_depth`` combination
    (witness implementations per vector may differ, as in any exact
    enumerator).  Two backends:

    * ``"process"`` (default) — one OS process per worker
      (``multiprocessing``), points shared through queues;
    * ``"inline"`` — deterministic in-process round-robin over the same
      worker machinery; useful for debugging and reproducible tests.

    ``share_archive=False`` isolates the workers' archives (merge still
    restores exactness); the ablation benchmark uses it to measure how
    much cross-worker pruning saves.  Remaining keyword arguments are
    forwarded to each worker's :class:`ExactParetoExplorer` (``archive``,
    ``partial_pruning``, ``validate_models``, ...).  ``epsilon > 0`` is
    forwarded too, but only ``epsilon=0`` guarantees a bit-identical
    front; the parallel epsilon front is still a valid additive-epsilon
    approximation (see ``docs/PARALLEL.md``).
    """

    def __init__(
        self,
        instance: EncodedInstance,
        jobs: int = 2,
        split_depth: Optional[int] = None,
        backend: str = "process",
        chunk_conflicts: Optional[int] = DEFAULT_CHUNK_CONFLICTS,
        share_archive: bool = True,
        conflict_limit: Optional[int] = None,
        fixed_bindings: Optional[Dict[str, str]] = None,
        **explorer_options,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if backend not in ("process", "inline"):
            raise ValueError(f"unknown backend {backend!r}")
        self.instance = instance
        self.jobs = jobs
        self.split_depth = split_depth
        self.backend = backend
        self.chunk_conflicts = chunk_conflicts
        self.share_archive = share_archive
        self.conflict_limit = conflict_limit
        self.fixed_bindings = dict(fixed_bindings or {})
        self.explorer_options = dict(explorer_options)
        self.epsilon = int(explorer_options.get("epsilon") or 0)

    def cubes(self) -> List[Dict[str, str]]:
        """The guiding-path cubes this run partitions the space into."""
        spec = self.instance.specification
        depth = self.split_depth
        if depth is None:
            depth = auto_split_depth(spec, self.jobs, self.fixed_bindings)
        return derive_cubes(spec, depth, self.fixed_bindings)

    def run(self) -> DseResult:
        started = perf_counter()
        cubes = self.cubes()
        jobs = max(1, min(self.jobs, len(cubes)))
        # Static round-robin keeps the cube -> worker map deterministic,
        # which both backends rely on for reproducible reports.
        assignments = [cubes[worker::jobs] for worker in range(jobs)]
        # Ground once in the parent and ship the artifact: the workers
        # reuse it instead of re-instantiating the same program each.
        ground, cache_hit = _ground_text_cached(
            self.instance.program,
            bool(self.explorer_options.get("ground_cache", True)),
            "seminaive",
        )
        self._parent_ground = ground
        self._parent_cache_hit = cache_hit
        if self.backend == "inline":
            reports = self._run_inline(assignments, ground)
        else:
            reports = self._run_processes(assignments, ground)
        return self._merge(reports, perf_counter() - started)

    # -- backends ----------------------------------------------------------------

    def _run_inline(
        self, assignments: List[List[Dict[str, str]]], ground: GroundProgram
    ) -> Dict[int, Dict[str, object]]:
        """Deterministic round-robin over in-process workers."""
        workers = [
            _CubeWorker(
                self.instance,
                cubes,
                self.explorer_options,
                self.chunk_conflicts,
                self.conflict_limit,
                ground_program=ground,
            )
            for cubes in assignments
        ]
        pending_points: List[List[Tuple[Tuple[int, ...], object]]] = [
            [] for _worker in workers
        ]
        active = [wid for wid, worker in enumerate(workers) if not worker.done]
        while active:
            for wid in list(active):
                worker = workers[wid]
                if self.share_archive and pending_points[wid]:
                    worker.inject(pending_points[wid])
                    pending_points[wid] = []
                status, point = worker.step()
                if status == "model" and self.share_archive:
                    for other, other_worker in enumerate(workers):
                        if other != wid and not other_worker.done:
                            pending_points[other].append(
                                (point.vector, point.implementation)
                            )
                elif status == "done":
                    active.remove(wid)
        return {wid: worker.report(wid) for wid, worker in enumerate(workers)}

    def _run_processes(
        self, assignments: List[List[Dict[str, str]]], ground: GroundProgram
    ) -> Dict[int, Dict[str, object]]:
        """One process per worker; the parent brokers point exchange."""
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        point_queue = context.Queue()
        inject_queues = [context.Queue() for _assignment in assignments]
        # Serialized once here; every worker deserializes the same blob
        # instead of grounding the instance again.
        ground_blob = ground.to_bytes()
        processes = [
            context.Process(
                target=_worker_main,
                args=(
                    wid,
                    self.instance,
                    cubes,
                    self.explorer_options,
                    self.chunk_conflicts,
                    self.conflict_limit,
                    self.share_archive,
                    inject_queues[wid],
                    point_queue,
                    ground_blob,
                ),
                daemon=True,
            )
            for wid, cubes in enumerate(assignments)
        ]
        for process in processes:
            process.start()
        pending = set(range(len(assignments)))
        reports: Dict[int, Dict[str, object]] = {}
        try:
            while pending:
                try:
                    message = point_queue.get(timeout=1.0)
                except queue.Empty:
                    for wid in pending:
                        if not processes[wid].is_alive():
                            raise RuntimeError(
                                f"parallel DSE worker {wid} died "
                                f"(exit code {processes[wid].exitcode})"
                            )
                    continue
                kind = message[0]
                if kind == "point":
                    _kind, wid, vector, implementation = message
                    if self.share_archive:
                        for other in pending:
                            if other != wid:
                                inject_queues[other].put((vector, implementation))
                elif kind == "done":
                    reports[message[1]] = message[2]
                    pending.discard(message[1])
                else:  # "error"
                    raise RuntimeError(
                        f"parallel DSE worker {message[1]} failed:\n{message[2]}"
                    )
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join()
            for q in [point_queue, *inject_queues]:
                q.close()
                q.cancel_join_thread()
        return reports

    # -- merge -------------------------------------------------------------------

    def _merge(
        self, reports: Dict[int, Dict[str, object]], wall_time: float
    ) -> DseResult:
        """Non-dominated union of the worker fronts + aggregated stats."""
        ordered = [reports[wid] for wid in sorted(reports)]
        merged = non_dominated_union(*(report["front"] for report in ordered))
        stats = DseStatistics()
        stats.wall_time = wall_time
        stats.epsilon = self.epsilon
        stats.pareto_points = len(merged)
        # Grounding happened (at most) once, in the parent; the workers
        # reused the shipped artifact, so their counts stay at zero.
        parent_ground = getattr(self, "_parent_ground", None)
        if parent_ground is not None:
            stats.ground_cache_hit = self._parent_cache_hit
            stats.grounds = 0 if self._parent_cache_hit else 1
            if parent_ground.grounding is not None:
                stats.instantiations = parent_ground.grounding.instantiations
                stats.delta_rounds = parent_ground.grounding.delta_rounds
                if not self._parent_cache_hit:
                    stats.grounding_seconds = parent_ground.grounding.seconds
        for report in ordered:
            inner = report["statistics"]
            stats.grounds += inner.get("grounds", 0)
            stats.models_enumerated += inner["models_enumerated"]
            stats.conflicts += inner["conflicts"]
            stats.decisions += inner["decisions"]
            stats.propagations += inner.get("propagations", 0)
            stats.restarts += inner.get("restarts", 0)
            stats.clause_db_bytes += inner.get("clause_db_bytes", 0)
            stats.solver_core = inner.get("solver_core", stats.solver_core)
            stats.pruned_partial += inner["pruned_partial"]
            stats.pruned_total += inner["pruned_total"]
            stats.archive_comparisons += inner["archive_comparisons"]
            stats.time_boolean_propagation += inner["time_boolean_propagation"]
            stats.time_theory_propagation += inner["time_theory_propagation"]
            stats.time_dominance += inner["time_dominance"]
            stats.interrupted = stats.interrupted or report["interrupted"]
            stats.per_worker.append(
                {
                    "worker": report["worker"],
                    "cubes": report["cubes"],
                    "injected": report["injected"],
                    "interrupted": report["interrupted"],
                    **inner,
                }
            )
        names = tuple(objective.name for objective in self.instance.objectives)
        points = [
            ParetoPoint(tuple(vector), payload) for vector, payload in merged
        ]
        return DseResult(names, points, stats)

"""Quad-tree Pareto archive (ASP-DAC 2018 companion data structure).

A Habenicht-style quad-tree over the objective space: every node holds a
non-dominated point; a child's key is the bitmask recording, per
dimension, whether the child's vector is >= the parent's.  Dominance
queries then only descend into quadrants that can possibly contain a
dominator (or a dominated point), which — on the well-spread fronts of
multi-objective DSE — touches far fewer points than a linear scan.

The interface matches :class:`repro.dse.pareto.ListArchive`, including
the ``comparisons`` counter used by the Fig. 4 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.dse.pareto import weakly_dominates

__all__ = ["QuadTreeArchive"]

Vector = Tuple[int, ...]
Payload = TypeVar("Payload")


@dataclass
class _Node:
    vector: Vector
    payload: object
    children: Dict[int, "_Node"] = field(default_factory=dict)


class QuadTreeArchive(Generic[Payload]):
    """Quad-tree archive of mutually non-dominated vectors."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0
        self.comparisons = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Tuple[Vector, Payload]]:
        def walk(node: Optional[_Node]):
            if node is None:
                return
            yield (node.vector, node.payload)
            for child in node.children.values():
                yield from walk(child)

        yield from walk(self._root)

    def vectors(self) -> List[Vector]:
        return [vector for vector, _payload in self]

    # -- keys --------------------------------------------------------------------

    @staticmethod
    def _key(parent: Vector, vector: Vector) -> int:
        key = 0
        for i, (p, v) in enumerate(zip(parent, vector)):
            if v >= p:
                key |= 1 << i
        return key

    # -- queries -----------------------------------------------------------------

    def find_weak_dominator(self, vector: Sequence[int]) -> Optional[Vector]:
        """An archive vector weakly dominating ``vector``, if any."""
        vector = tuple(vector)

        def search(node: Optional[_Node]) -> Optional[Vector]:
            if node is None:
                return None
            self.comparisons += 1
            if weakly_dominates(node.vector, vector):
                return node.vector
            for key, child in node.children.items():
                # A dominator d has d_i <= vector_i; in child `key`,
                # d_i >= parent_i wherever the bit is set, so that
                # quadrant is viable only if parent_i <= vector_i there.
                viable = True
                for i, p in enumerate(node.vector):
                    if key & (1 << i) and p > vector[i]:
                        viable = False
                        break
                if viable:
                    found = search(child)
                    if found is not None:
                        return found
            return None

        return search(self._root)

    # -- insertion ----------------------------------------------------------------

    def add(self, vector: Sequence[int], payload: Payload) -> bool:
        """Insert; returns False when weakly dominated by the archive."""
        vector = tuple(vector)
        if self.find_weak_dominator(vector) is not None:
            return False
        survivors: List[Tuple[Vector, Payload]] = []
        self._root = self._remove_dominated(self._root, vector, survivors)
        for old_vector, old_payload in survivors:
            self._place(old_vector, old_payload)
        self._place(vector, payload)
        return True

    def _remove_dominated(
        self,
        node: Optional[_Node],
        vector: Vector,
        survivors: List[Tuple[Vector, Payload]],
    ) -> Optional[_Node]:
        """Drop nodes weakly dominated by ``vector``; collect the rest of
        their subtrees into ``survivors`` for reinsertion."""
        if node is None:
            return None
        self.comparisons += 1
        if weakly_dominates(vector, node.vector):
            # The whole subtree is detached; survivors are reinserted.
            for child in node.children.values():
                self._collect_survivors(child, vector, survivors)
            self._size -= 1
            return None
        for key in list(node.children.keys()):
            # A dominated q has q_i >= vector_i; in child `key`,
            # q_i < parent_i wherever the bit is clear, so the quadrant
            # is viable only if vector_i < parent_i there.
            viable = True
            for i, p in enumerate(node.vector):
                if not key & (1 << i) and vector[i] >= p:
                    viable = False
                    break
            if viable:
                replacement = self._remove_dominated(
                    node.children[key], vector, survivors
                )
                if replacement is None:
                    del node.children[key]
                else:
                    node.children[key] = replacement
        return node

    def _collect_survivors(
        self,
        node: _Node,
        vector: Vector,
        survivors: List[Tuple[Vector, Payload]],
    ) -> None:
        self.comparisons += 1
        if weakly_dominates(vector, node.vector):
            self._size -= 1
        else:
            survivors.append((node.vector, node.payload))
            self._size -= 1  # re-counted when re-placed
        for child in node.children.values():
            self._collect_survivors(child, vector, survivors)

    def _place(self, vector: Vector, payload: Payload) -> None:
        self._size += 1
        if self._root is None:
            self._root = _Node(vector, payload)
            return
        node = self._root
        while True:
            key = self._key(node.vector, vector)
            child = node.children.get(key)
            if child is None:
                node.children[key] = _Node(vector, payload)
                return
            node = child

"""Epsilon-dominance pruning: approximate fronts with a guarantee.

The authors' follow-up work-in-progress (Neubauer et al., "On leveraging
approximations for exact system-level design space exploration",
CODES+ISSS 2018) trades front completeness for search effort by pruning
with *epsilon-dominance*: a partial assignment is cut as soon as an
archive point is within an additive ``epsilon`` of its lower-bound
vector in every objective.

:class:`EpsilonArchive` wraps any exact archive and implements the
shifted dominance query, so the unchanged
:class:`repro.dse.explorer.DominancePropagator` performs the approximate
pruning.  Guarantee (tested in ``tests/test_approximation.py``): for
every true Pareto point ``p`` the returned front contains a point ``a``
with ``a_i <= p_i + epsilon`` for all ``i``; with ``epsilon = 0`` the
result is the exact front.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.dse.pareto import ListArchive

__all__ = ["EpsilonArchive"]


class EpsilonArchive:
    """An archive whose dominance query is relaxed by an additive epsilon."""

    def __init__(self, epsilon: int, base=None):
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.epsilon = epsilon
        self._base = base if base is not None else ListArchive()

    # -- the relaxed query ---------------------------------------------------

    def find_weak_dominator(self, vector: Sequence[int]) -> Optional[Tuple[int, ...]]:
        """An archive point within ``epsilon`` of ``vector`` everywhere.

        Implemented by querying the exact base archive against the
        vector shifted *up* by epsilon: ``p <= v + eps`` componentwise.
        """
        shifted = [value + self.epsilon for value in vector]
        return self._base.find_weak_dominator(shifted)

    # -- exact-archive passthrough ---------------------------------------------

    def add(self, vector: Sequence[int], payload) -> bool:
        return self._base.add(vector, payload)

    def __len__(self) -> int:
        return len(self._base)

    def __iter__(self) -> Iterator:
        return iter(self._base)

    def vectors(self) -> List[Tuple[int, ...]]:
        return self._base.vectors()

    @property
    def comparisons(self) -> int:
        return self._base.comparisons

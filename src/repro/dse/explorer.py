"""Exact multi-objective DSE with dominance propagation.

:class:`ExactParetoExplorer` wires the whole ASPmT stack together:

* the synthesis encoding (Boolean rules + scheduling theory atoms),
* the :class:`repro.theory.linear.LinearPropagator` (partial assignment
  evaluation of the timing constraints),
* optionally the specialized difference-logic propagator,
* the :class:`DominancePropagator` — the paper's contribution: on every
  propagation fixpoint it computes a lower bound of the objective vector
  of the *current partial assignment* (pseudo-Boolean sums of true
  literals; theory-variable lower bounds) and, when a point in the Pareto
  archive weakly dominates that bound, adds the pruning nogood

      not (explanation of the bound)

  because no completion of the assignment can produce a *new* Pareto
  point.  Total assignments that survive are new non-dominated points by
  construction; enumeration runs until unsatisfiability, making the final
  archive the exact Pareto front.

:class:`ObjectiveBoundPropagator` is the single-objective sibling used by
the branch-and-bound / epsilon-constraint baselines: it prunes
assignments whose objective lower bound exceeds a (mutable) upper bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.asp.control import Control, Model
from repro.asp.propagator import PropagatorInit, TheoryPropagator
from repro.asp.solver import Solver
from repro.synthesis.encoding import EncodedInstance, ObjectiveSpec, encode
from repro.synthesis.model import Specification
from repro.synthesis.solution import Implementation, decode_model, validate
from repro.dse.pareto import ListArchive
from repro.dse.quadtree import QuadTreeArchive
from repro.theory.difference import DifferenceLogicPropagator
from repro.theory.linear import LinearPropagator
from repro.theory.objective import IntVarObjective, Objective, PseudoBooleanObjective

__all__ = [
    "DominancePropagator",
    "ObjectiveBoundPropagator",
    "ExactParetoExplorer",
    "ParetoPoint",
    "DseResult",
    "DseStatistics",
]


def build_objectives(
    specs: Sequence[ObjectiveSpec],
    init: PropagatorInit,
    linear: LinearPropagator,
) -> List[Objective]:
    """Resolve symbolic objective declarations into literal-level objectives."""
    objectives: List[Objective] = []
    for spec in specs:
        if spec.kind == "pb":
            terms = []
            for weight, atom in spec.terms:
                lit = init.solver_literal(atom)
                if lit == init.true_lit:
                    terms.append((weight, lit))  # folded constant; kept simple
                elif lit == -init.true_lit:
                    continue
                else:
                    terms.append((weight, lit))
            objectives.append(PseudoBooleanObjective(spec.name, tuple(terms)))
        elif spec.kind == "var":
            assert spec.variable is not None
            # Make sure the variable exists even if no constraint mentions it.
            linear.var_id(spec.variable)
            objectives.append(IntVarObjective(spec.name, linear, spec.variable))
        else:
            raise ValueError(f"unknown objective kind {spec.kind!r}")
    return objectives


class DominancePropagator(TheoryPropagator):
    """Prunes partial assignments dominated by the Pareto archive."""

    def __init__(
        self,
        objective_specs: Sequence[ObjectiveSpec],
        linear: LinearPropagator,
        archive,
        partial_pruning: bool = True,
    ):
        self._specs = objective_specs
        self._linear = linear
        self.archive = archive
        self.objectives: List[Objective] = []
        self.partial_pruning = partial_pruning
        self._true_lit = 0
        #: Pruning statistics for the ablation benchmarks.
        self.pruned_partial = 0
        self.pruned_total = 0
        #: Wall seconds spent in dominance checks (bounds + archive query).
        self.prune_time = 0.0
        # Cached (bounds, explanation) of the current assignment: the
        # pseudo-Boolean parts only move when a watched literal fires
        # (invalidated in propagate/undo) and the theory-variable parts
        # only when the linear store's bound revision changes.
        self._bound_cache: Optional[Tuple[Tuple[int, ...], List[int]]] = None
        self._cache_revision = -1

    # -- setup -------------------------------------------------------------------

    def init(self, init: PropagatorInit) -> None:
        self._true_lit = init.true_lit
        self.objectives = build_objectives(self._specs, init, self._linear)
        watched = set()
        for objective in self.objectives:
            watched.update(objective.watch_literals())
        # Theory-variable bounds move without literal events of their own;
        # watching everything the linear propagator watches guarantees we
        # re-evaluate on the same fixpoints (we are registered after it).
        watched.update(self._linear_watches(init))
        watched.add(init.true_lit)
        watched.discard(-init.true_lit)
        for lit in sorted(watched):
            init.add_watch(lit, self)

    def _linear_watches(self, init: PropagatorInit) -> Sequence[int]:
        lits = set()
        for constraint in self._linear._constraints:
            lits.add(constraint.condition)
            for weight, lit in constraint.bool_terms:
                lits.add(lit if weight > 0 else -lit)
        return lits

    # -- pruning -----------------------------------------------------------------

    def bound_vector(self, solver: Solver) -> Tuple[Tuple[int, ...], List[int]]:
        """Lower-bound vector of the current assignment + explanation."""
        revision = self._linear.store.revision
        if self._bound_cache is not None and revision == self._cache_revision:
            return self._bound_cache
        bounds: List[int] = []
        explanation: List[int] = []
        for objective in self.objectives:
            bound, reason = objective.lower_bound(solver)
            bounds.append(bound)
            explanation.extend(reason)
        self._bound_cache = (tuple(bounds), explanation)
        self._cache_revision = self._linear.store.revision
        return self._bound_cache

    def value_vector(self, solver: Solver) -> Tuple[int, ...]:
        """Exact objective vector on a total assignment."""
        return tuple(objective.value(solver) for objective in self.objectives)

    def _prune(self, solver: Solver, total: bool) -> bool:
        started = perf_counter()
        bounds, explanation = self.bound_vector(solver)
        dominator = self.archive.find_weak_dominator(bounds)
        if dominator is None:
            self.prune_time += perf_counter() - started
            return True
        if total:
            self.pruned_total += 1
        else:
            self.pruned_partial += 1
        clause = [-lit for lit in dict.fromkeys(explanation) if lit != self._true_lit]
        solver.add_propagator_clause(clause)
        self.prune_time += perf_counter() - started
        return False

    def propagate(self, solver: Solver, changes: Sequence[int]) -> bool:
        if changes:
            # A watched literal fired: the pseudo-Boolean bound parts may
            # have moved even when the linear store's revision did not.
            self._bound_cache = None
        if not self.partial_pruning:
            return True
        return self._prune(solver, total=False)

    def undo(self, solver: Solver, level: int) -> None:
        self._bound_cache = None

    def check(self, solver: Solver) -> bool:
        return self._prune(solver, total=True)

    def model_values(self, solver: Solver) -> Dict[str, object]:
        return {
            "objectives": {
                objective.name: objective.value(solver)
                for objective in self.objectives
            }
        }


class ObjectiveBoundPropagator(TheoryPropagator):
    """Single-objective pruning: objective lower bounds vs. upper limits.

    ``bounds`` maps objective names to inclusive upper limits and may be
    *tightened* between solve calls (branch-and-bound); learned pruning
    clauses stay valid because limits only ever decrease.  To *relax*
    bounds (the epsilon-constraint driver does, between epsilon steps),
    set ``activation`` to a fresh solver variable and assume it during
    subsequent solves: every pruning clause carries ``-activation``, so
    clauses of a stale epoch are disabled by simply dropping its
    assumption.
    """

    def __init__(
        self,
        objective_specs: Sequence[ObjectiveSpec],
        linear: LinearPropagator,
    ):
        self._specs = objective_specs
        self._linear = linear
        self.objectives: List[Objective] = []
        self.bounds: Dict[str, int] = {}
        self.activation: Optional[int] = None
        self._true_lit = 0
        self.pruned = 0

    def init(self, init: PropagatorInit) -> None:
        self._true_lit = init.true_lit
        self.objectives = build_objectives(self._specs, init, self._linear)
        watched = set()
        for objective in self.objectives:
            watched.update(objective.watch_literals())
        for constraint in self._linear._constraints:
            watched.add(constraint.condition)
            for weight, lit in constraint.bool_terms:
                watched.add(lit if weight > 0 else -lit)
        watched.add(init.true_lit)
        for lit in sorted(watched):
            init.add_watch(lit, self)

    def _prune(self, solver: Solver) -> bool:
        if self.activation is not None and solver.value(self.activation) is not True:
            return True  # stale epoch (or activation not yet assumed)
        for objective in self.objectives:
            limit = self.bounds.get(objective.name)
            if limit is None:
                continue
            bound, reason = objective.lower_bound(solver)
            if bound > limit:
                self.pruned += 1
                clause = [
                    -lit for lit in dict.fromkeys(reason) if lit != self._true_lit
                ]
                if self.activation is not None:
                    clause.append(-self.activation)
                solver.add_propagator_clause(clause)
                return False
        return True

    def propagate(self, solver: Solver, changes: Sequence[int]) -> bool:
        return self._prune(solver)

    def check(self, solver: Solver) -> bool:
        return self._prune(solver)

    def model_values(self, solver: Solver) -> Dict[str, object]:
        return {
            "objectives": {
                objective.name: objective.value(solver)
                for objective in self.objectives
            }
        }


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the exact front with a witness implementation."""

    vector: Tuple[int, ...]
    implementation: Implementation


@dataclass
class DseStatistics:
    """Search effort metrics reported by the benchmarks (Table II)."""

    models_enumerated: int = 0
    pareto_points: int = 0
    pruned_partial: int = 0
    pruned_total: int = 0
    conflicts: int = 0
    decisions: int = 0
    #: Unit-propagation assignments made by the solver core.
    propagations: int = 0
    #: Luby restarts performed by the solver core.
    restarts: int = 0
    #: Clause store footprint at the end of the run (arena bytes for the
    #: flat core; an arena-equivalent estimate for the reference core).
    clause_db_bytes: int = 0
    #: Which CDNL engine ran the search ("flat" or "reference").
    solver_core: str = ""
    archive_comparisons: int = 0
    wall_time: float = 0.0
    interrupted: bool = False
    #: Additive approximation factor (0 = exact).
    epsilon: int = 0
    #: Wall seconds spent in boolean (unit) propagation.
    time_boolean_propagation: float = 0.0
    #: Wall seconds spent in theory propagator callbacks.
    time_theory_propagation: float = 0.0
    #: Wall seconds spent in dominance checks (subset of theory time).
    time_dominance: float = 0.0
    #: Wall seconds spent instantiating the program (0 when a cached or
    #: shipped ground program was reused).
    grounding_seconds: float = 0.0
    #: Rule instantiations attempted while grounding this instance.
    instantiations: int = 0
    #: Semi-naive re-evaluation rounds beyond each batch's first pass.
    delta_rounds: int = 0
    #: Whether the shared ground-program cache answered this run.
    ground_cache_hit: bool = False
    #: How many times the instance was actually ground across the run
    #: (parallel exploration sums the parent and all workers; with the
    #: shipped artifact this stays at 1).
    grounds: int = 0
    #: Cubes stolen from other workers' deques (stealing scheduler).
    steals: int = 0
    #: Over-budget cubes split one binding level deeper and re-queued.
    resplits: int = 0
    #: Cubes actually executed across all workers (>= the initial cube
    #: count when re-splitting fired; 0 for sequential runs).
    cubes_executed: int = 0
    #: Bytes of serialized archive deltas published by the workers.
    archive_delta_bytes: int = 0
    #: Foreign points skipped by the injection hash-dedup (points the
    #: local archive had already seen; skipping avoids re-scanning).
    archive_dedup_skips: int = 0
    #: Wall seconds spent in the static linter (0 when linting was off).
    lint_seconds: float = 0.0
    #: Diagnostic counts of the lint run (all zero when linting was off).
    lint_errors: int = 0
    lint_warnings: int = 0
    lint_infos: int = 0
    #: Symmetry analysis summary of the instance ("" when encode() ran
    #: with symmetry="off"; otherwise the requested mode).
    symmetry_mode: str = ""
    #: Whether lex-leader constraints were injected into the encoding.
    symmetry_applied: bool = False
    #: Generators / exact order / non-trivial orbit count of the
    #: platform automorphism group (all 0 when no analysis ran).
    symmetry_generators: int = 0
    symmetry_order: int = 0
    symmetry_orbits: int = 0
    #: Ground lex-leader integrity constraints added to the program.
    symmetry_constraints: int = 0
    #: Wall seconds of automorphism detection + constraint synthesis.
    symmetry_seconds: float = 0.0
    #: Domain-analysis summary ("" when encode() ran with
    #: domain_bounds="off" and grounding ran with domain_prune off).
    domain_mode: str = ""
    #: Whether inferred objective intervals seeded the interval store.
    domain_applied: bool = False
    #: Predicates whose argument domains the analysis inferred.
    domain_predicates: int = 0
    #: Widening steps taken on recursive components.
    domain_widenings: int = 0
    #: Candidate substitutions rejected by domain pre-filters while
    #: grounding (eager guards + per-variable domain checks).
    domain_pruned: int = 0
    #: Rules the grounder skipped entirely as provably dead.
    domain_rules_skipped: int = 0
    #: Wall seconds of domain analysis (encode-time + ground-time).
    domain_seconds: float = 0.0
    #: Per-worker breakdowns (parallel exploration only; empty otherwise).
    per_worker: List[Dict[str, object]] = field(default_factory=list)


@dataclass
class DseResult:
    """The exact Pareto front plus search statistics."""

    objectives: Tuple[str, ...]
    front: List[ParetoPoint]
    statistics: DseStatistics

    def vectors(self) -> List[Tuple[int, ...]]:
        return sorted(point.vector for point in self.front)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable representation of the front + statistics."""
        return {
            "objectives": list(self.objectives),
            "front": [
                {
                    "vector": list(point.vector),
                    "binding": dict(sorted(point.implementation.binding.items())),
                    "routes": {
                        m: list(r)
                        for m, r in sorted(point.implementation.routes.items())
                    },
                    "schedule": dict(sorted(point.implementation.schedule.items())),
                    "objective_values": dict(
                        sorted(point.implementation.objectives.items())
                    ),
                }
                for point in self.front
            ],
            "statistics": {
                "models_enumerated": self.statistics.models_enumerated,
                "pareto_points": self.statistics.pareto_points,
                "pruned_partial": self.statistics.pruned_partial,
                "pruned_total": self.statistics.pruned_total,
                "conflicts": self.statistics.conflicts,
                "decisions": self.statistics.decisions,
                "propagations": self.statistics.propagations,
                "restarts": self.statistics.restarts,
                "clause_db_bytes": self.statistics.clause_db_bytes,
                "solver_core": self.statistics.solver_core,
                "archive_comparisons": self.statistics.archive_comparisons,
                "wall_time": self.statistics.wall_time,
                "interrupted": self.statistics.interrupted,
                "epsilon": self.statistics.epsilon,
                "time_boolean_propagation": self.statistics.time_boolean_propagation,
                "time_theory_propagation": self.statistics.time_theory_propagation,
                "time_dominance": self.statistics.time_dominance,
                "grounding_seconds": self.statistics.grounding_seconds,
                "instantiations": self.statistics.instantiations,
                "delta_rounds": self.statistics.delta_rounds,
                "ground_cache_hit": self.statistics.ground_cache_hit,
                "grounds": self.statistics.grounds,
                "steals": self.statistics.steals,
                "resplits": self.statistics.resplits,
                "cubes_executed": self.statistics.cubes_executed,
                "archive_delta_bytes": self.statistics.archive_delta_bytes,
                "archive_dedup_skips": self.statistics.archive_dedup_skips,
                "lint_seconds": self.statistics.lint_seconds,
                "lint_errors": self.statistics.lint_errors,
                "lint_warnings": self.statistics.lint_warnings,
                "lint_infos": self.statistics.lint_infos,
                "symmetry_mode": self.statistics.symmetry_mode,
                "symmetry_applied": self.statistics.symmetry_applied,
                "symmetry_generators": self.statistics.symmetry_generators,
                "symmetry_order": self.statistics.symmetry_order,
                "symmetry_orbits": self.statistics.symmetry_orbits,
                "symmetry_constraints": self.statistics.symmetry_constraints,
                "symmetry_seconds": self.statistics.symmetry_seconds,
                "domain_mode": self.statistics.domain_mode,
                "domain_applied": self.statistics.domain_applied,
                "domain_predicates": self.statistics.domain_predicates,
                "domain_widenings": self.statistics.domain_widenings,
                "domain_pruned": self.statistics.domain_pruned,
                "domain_rules_skipped": self.statistics.domain_rules_skipped,
                "domain_seconds": self.statistics.domain_seconds,
                "per_worker": list(self.statistics.per_worker),
            },
        }

    def save(self, path) -> None:
        """Write the front as JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")


class ExactParetoExplorer:
    """The paper's exact multi-objective DSE driver."""

    def __init__(
        self,
        instance: EncodedInstance,
        archive: str = "list",
        partial_pruning: bool = True,
        use_difference_logic: bool = False,
        conflict_limit: Optional[int] = None,
        validate_models: bool = True,
        epsilon: int = 0,
        objective_phases: bool = False,
        fixed_bindings: Optional[Dict[str, str]] = None,
        ground_program=None,
        ground_cache: bool = True,
        lint: object = False,
        solver_core: Optional[str] = None,
    ):
        """Configure the explorer.

        ``epsilon > 0`` switches to epsilon-dominance pruning (the
        CODES+ISSS'18 approximation: the result is an additive-epsilon
        approximate front).  ``objective_phases=True`` biases the
        solver's phase saving so decisions default to the
        objective-friendly polarity (domain-specific heuristics in the
        spirit of Andres et al., LPNMR 2015).  ``fixed_bindings`` pins
        tasks to resources (designer what-if exploration): the computed
        front is exact *for the pinned subspace*.

        ``ground_program`` accepts a pre-ground
        :class:`~repro.asp.ground.GroundProgram` of ``instance.program``
        (the parallel explorer grounds once and ships the artifact to
        every worker); ``ground_cache=False`` bypasses the shared
        ground-program LRU.

        ``lint`` is forwarded to :meth:`repro.asp.control.Control.ground`:
        ``True`` runs the static analyzer over the encoding before
        grounding (diagnostics surface as Python warnings and in the
        ``lint_*`` statistics), ``"raise"`` aborts on error-severity
        findings.

        ``solver_core`` selects the CDNL engine: ``"flat"`` (array-based
        core, the default) or ``"reference"`` (object core, the
        differential oracle); ``None`` defers to ``REPRO_SOLVER_CORE``.
        Both cores enumerate the same exact front (see docs/SOLVER.md).
        """
        self.instance = instance
        self.epsilon = epsilon
        self.linear = LinearPropagator()
        # Seed the interval store with the encode-time inferred objective
        # bounds (sound over-approximations; &dom constraints only ever
        # tighten them further, so the front is unchanged).
        domain = getattr(instance, "domain", None)
        if domain is not None and domain.applied:
            for objective in instance.objectives:
                if objective.kind != "var" or objective.variable is None:
                    continue
                interval = domain.bounds.get(str(objective.variable))
                if interval is not None:
                    self.linear.store.add_var(
                        objective.variable, interval[0], interval[1]
                    )
        archive_impl = QuadTreeArchive() if archive == "quadtree" else ListArchive()
        if epsilon:
            from repro.dse.approximation import EpsilonArchive

            archive_impl = EpsilonArchive(epsilon, base=archive_impl)
        self.dominance = DominancePropagator(
            instance.objectives,
            self.linear,
            archive_impl,
            partial_pruning=partial_pruning,
        )
        self.control = Control(solver_core=solver_core)
        self.control.conflict_limit = conflict_limit
        self.control.add(instance.program)
        self.control.register_propagator(self.linear)
        if use_difference_logic:
            self.control.register_propagator(DifferenceLogicPropagator())
        self.control.register_propagator(self.dominance)
        self._validate_models = validate_models
        self._objective_phases = objective_phases
        self._fixed_bindings = dict(fixed_bindings or {})
        symmetry = getattr(instance, "symmetry", None)
        if (
            self._fixed_bindings
            and symmetry is not None
            and symmetry.applied
            and symmetry.constraints > 0
        ):
            raise ValueError(
                "fixed_bindings cannot be combined with an instance that "
                "carries lex-leader symmetry constraints: a pin may exclude "
                "the orbit's lex-minimal representative and lose front "
                "points; re-encode with symmetry='off' to pin bindings"
            )
        self._ground_artifact = ground_program
        self._ground_cache = ground_cache
        self._lint = lint
        self._ground = False
        self.models_enumerated = 0
        self._pending_point: Optional[ParetoPoint] = None
        # Archive delta plumbing for the parallel workers: every locally
        # enumerated point is buffered until drained, and every vector
        # this explorer has ever seen (enumerated or injected) is hashed
        # so foreign re-offers are skipped in O(1).
        self._new_points: List[ParetoPoint] = []
        self._known_vectors: set = set()
        self.dedup_skips = 0

    def ground(self) -> None:
        """Ground the instance (idempotent; run() calls this lazily).

        Call explicitly to tune solver knobs (``control.solver``) before
        the exploration starts.
        """
        if not self._ground:
            self.control.ground(
                program=self._ground_artifact,
                cache=self._ground_cache,
                lint=self._lint,
            )
            if self._objective_phases:
                self._apply_objective_phases()
            self._ground = True

    @property
    def objective_names(self) -> Tuple[str, ...]:
        return tuple(o.name for o in self.instance.objectives)

    @staticmethod
    def bind_assumptions(bindings: Dict[str, str]):
        """Solve assumptions pinning ``task -> resource`` bindings."""
        from repro.asp.syntax import Function

        return [
            (Function("bind", (Function(task), Function(resource))), True)
            for task, resource in sorted(bindings.items())
        ]

    def _on_model(self, model: Model) -> bool:
        spec = self.instance.specification
        names = self.objective_names
        self.models_enumerated += 1
        vector = tuple(model.theory["objectives"][name] for name in names)
        implementation = decode_model(spec, model)
        implementation.objectives = dict(zip(names, vector))
        if self._validate_models:
            problems = validate(
                spec,
                implementation,
                serialized=self.instance.serialize,
                link_contention=self.instance.link_contention,
            )
            if problems:
                raise AssertionError(
                    f"solver produced an infeasible implementation: {problems}"
                )
        added = self.dominance.archive.add(vector, implementation)
        assert added, (
            "dominance propagation admitted a dominated point "
            f"{vector} (archive: {self.dominance.archive.vectors()})"
        )
        self._pending_point = ParetoPoint(vector, implementation)
        self._new_points.append(self._pending_point)
        self._known_vectors.add(vector)
        self.control.solver.requeue_watch(
            self.control.translation.true_lit, self.dominance
        )
        return True

    def solve_step(self, assumptions=()) -> Tuple[str, Optional[ParetoPoint]]:
        """One incremental solver call under binding ``assumptions``.

        Returns one of

        * ``("model", point)`` — a new non-dominated point was found (and
          added to the archive),
        * ``("interrupted", None)`` — the conflict budget of the call ran
          out; calling again resumes the search (learned clauses and the
          archive persist), which is how the parallel workers interleave
          archive synchronization with long dominance proofs,
        * ``("exhausted", None)`` — the (sub)space holds no further
          non-dominated points.
        """
        self.ground()
        self._pending_point = None
        # No blocking clauses: the archive point just added prunes the
        # model (and its whole dominated region) via the propagator.
        summary = self.control.solve(
            on_model=self._on_model, models=1, block=False, assumptions=assumptions
        )
        if summary.satisfiable:
            return "model", self._pending_point
        if summary.interrupted:
            return "interrupted", None
        return "exhausted", None

    def inject_points(self, points: Iterable[Tuple[Tuple[int, ...], object]]) -> int:
        """Add foreign Pareto points (from other subspace searches).

        Points dominated by the archive are dropped; accepted points make
        the dominance propagator re-evaluate at the next fixpoint, so
        they prune this explorer's remaining search.  Returns the number
        of accepted points.  Sound for subspace exploration: pruning by a
        point of the *global* front only removes candidates that are
        weakly dominated globally.

        Vectors this explorer has already seen — enumerated locally or
        injected earlier — are skipped by hash before touching the
        archive (``dedup_skips`` counts them); re-offering such a point
        could only ever be dropped as weakly dominated anyway.
        """
        self.ground()
        accepted = 0
        for vector, payload in points:
            vector = tuple(vector)
            if vector in self._known_vectors:
                self.dedup_skips += 1
                continue
            self._known_vectors.add(vector)
            if self.dominance.archive.add(vector, payload):
                accepted += 1
        if accepted:
            self.control.solver.requeue_watch(
                self.control.translation.true_lit, self.dominance
            )
        return accepted

    def drain_new_points(self) -> List[ParetoPoint]:
        """Locally enumerated points since the last drain (delta batch).

        The parallel workers publish these as an :class:`ArchiveDelta`
        instead of re-offering their whole archive; injected foreign
        points never enter the buffer, so deltas cannot echo.
        """
        drained = self._new_points
        self._new_points = []
        return drained

    def local_front(self) -> List[Tuple[Tuple[int, ...], object]]:
        """Archive restricted to locally enumerated survivors, sorted.

        Foreign injections carry no witness implementation; each vector
        of the global front is reported by the worker that enumerated it
        (see the merge argument in ``docs/PARALLEL.md``).
        """
        return [
            (vector, payload)
            for vector, payload in self.front()
            if payload is not None
        ]

    def conflict_mark(self) -> int:
        """Cumulative conflict count — the budget hook for re-splitting."""
        if self.control._solver is None:  # nothing solved yet
            return 0
        return self.control.solver.stats.conflicts

    def front(self) -> List[Tuple[Tuple[int, ...], object]]:
        """Current archive contents, sorted by vector."""
        return sorted(self.dominance.archive, key=lambda item: item[0])

    def collect_statistics(self, stats: Optional[DseStatistics] = None) -> DseStatistics:
        """Fill search-effort counters from the solver and propagators."""
        if stats is None:
            stats = DseStatistics()
        solver = self.control.solver
        stats.epsilon = self.epsilon
        stats.models_enumerated = self.models_enumerated
        stats.conflicts = solver.stats.conflicts
        stats.decisions = solver.stats.decisions
        stats.propagations = solver.stats.propagations
        stats.restarts = solver.stats.restarts
        stats.clause_db_bytes = solver.clause_db_bytes()
        stats.solver_core = solver.stats.core
        stats.pruned_partial = self.dominance.pruned_partial
        stats.pruned_total = self.dominance.pruned_total
        stats.archive_comparisons = self.dominance.archive.comparisons
        stats.time_boolean_propagation = solver.stats.time_boolean
        stats.time_theory_propagation = solver.stats.time_theory
        stats.time_dominance = self.dominance.prune_time
        stats.archive_dedup_skips = self.dedup_skips
        stats.grounding_seconds = self.control.grounding_seconds
        stats.ground_cache_hit = self.control.ground_cache_hit
        stats.grounds = self.control.grounds
        grounding = self.control.ground_program.grounding
        if grounding is not None:
            stats.instantiations = grounding.instantiations
            stats.delta_rounds = grounding.delta_rounds
            if grounding.domain_prune:
                stats.domain_mode = stats.domain_mode or "prune"
                stats.domain_predicates = max(
                    stats.domain_predicates, grounding.domain_predicates
                )
                stats.domain_widenings = max(
                    stats.domain_widenings, grounding.domain_widenings
                )
                stats.domain_pruned = grounding.pruned_instances
                stats.domain_rules_skipped = grounding.rules_skipped
                stats.domain_seconds += grounding.domain_seconds
        stats.lint_seconds = self.control.lint_seconds
        report = self.control.lint_report
        if report is not None:
            stats.lint_errors = report.errors
            stats.lint_warnings = report.warnings
            stats.lint_infos = report.infos
        symmetry = getattr(self.instance, "symmetry", None)
        if symmetry is not None:
            stats.symmetry_mode = symmetry.mode
            stats.symmetry_applied = symmetry.applied
            stats.symmetry_generators = symmetry.generators
            stats.symmetry_order = symmetry.order
            stats.symmetry_orbits = symmetry.orbits
            stats.symmetry_constraints = symmetry.constraints
            stats.symmetry_seconds = symmetry.seconds
        domain = getattr(self.instance, "domain", None)
        if domain is not None:
            stats.domain_mode = domain.mode
            stats.domain_applied = domain.applied
            stats.domain_predicates = max(
                stats.domain_predicates, domain.predicates
            )
            stats.domain_widenings = max(
                stats.domain_widenings, domain.widenings
            )
            stats.domain_seconds += domain.seconds
        return stats

    def run(
        self,
        on_point=None,
        should_stop=None,
        resume_on_interrupt: bool = False,
    ) -> DseResult:
        """Enumerate the exact Pareto front.

        ``on_point`` is the anytime snapshot hook: it is called with
        every newly enumerated :class:`ParetoPoint` the moment the
        archive accepts it, so a serving layer can stream front
        snapshots while the search refines (the paper's dominance
        propagator tightens the front incrementally; the hook exposes
        exactly those increments).

        ``should_stop`` is polled between solver calls; returning a
        truthy value ends the run early with ``interrupted=True``
        statistics and the best front found so far — the cooperative
        cancellation/timeout primitive of ``repro.serve``.

        ``resume_on_interrupt=True`` reinterprets ``conflict_limit`` as
        a *chunk* size instead of a total budget: an interrupted solver
        call is simply resumed (learned clauses and the archive
        persist), so ``should_stop`` gets a look-in at least every
        ``conflict_limit`` conflicts even deep inside an UNSAT proof.
        """
        self.ground()
        stats = DseStatistics()
        started = time.perf_counter()
        models_before = self.models_enumerated
        assumptions = self.bind_assumptions(self._fixed_bindings)
        while True:
            if should_stop is not None and should_stop():
                stats.interrupted = True
                break
            status, point = self.solve_step(assumptions)
            if status == "model":
                if on_point is not None and point is not None:
                    on_point(point)
                continue
            if status == "interrupted" and resume_on_interrupt:
                continue
            stats.interrupted = status == "interrupted"
            break
        self.collect_statistics(stats)
        # Per-run model count (run() may be called again on an exhausted
        # explorer; solver counters stay cumulative like before).
        stats.models_enumerated = self.models_enumerated - models_before
        stats.wall_time = time.perf_counter() - started
        final = self.front()
        stats.pareto_points = len(final)
        points = [ParetoPoint(vector, payload) for vector, payload in final]
        return DseResult(self.objective_names, points, stats)

    def _apply_objective_phases(self) -> None:
        """Objective-aware decision heuristics (Andres et al., LPNMR'15).

        Pseudo-Boolean objective literals are decided *first* (heavier
        weights earlier) with the objective-friendly polarity: the first
        descents refuse the expensive options, which — through the
        exactly-one binding choices — lands on cheap corners of the
        design space and seeds the archive with strong points early.
        """
        solver = self.control.solver
        weights: Dict[int, int] = {}
        for objective in self.dominance.objectives:
            if isinstance(objective, PseudoBooleanObjective):
                for weight, lit in objective.terms:
                    if weight > 0:
                        var = abs(lit)
                        weights[var] = weights.get(var, 0) + weight
                        solver.set_phase(var, lit < 0)
        if not weights:
            return
        heaviest = max(weights.values())
        for var, weight in weights.items():
            solver.set_initial_activity(var, 1.0 + weight / heaviest)


def explore(
    spec: Specification,
    objectives: Sequence[str] = ("latency", "energy", "cost"),
    jobs: int = 1,
    split_depth: Optional[int] = None,
    symmetry: str = "off",
    domain_bounds: str = "off",
    **kwargs,
) -> DseResult:
    """Convenience one-call API: encode and explore ``spec``.

    ``jobs > 1`` (or an explicit ``split_depth``) switches to the
    subspace-splitting parallel explorer; the front is identical either
    way (see :mod:`repro.dse.parallel`).

    ``symmetry`` is forwarded to :func:`~repro.synthesis.encoding.encode`
    (``"on"``/``"auto"`` add lex-leader platform symmetry breaking; the
    front of objective vectors is unchanged — see docs/SYMMETRY.md).
    ``domain_bounds`` likewise forwards to ``encode`` and seeds the
    theory interval store with statically inferred objective bounds
    (the front is unchanged — see docs/DOMAINS.md).
    """
    instance = encode(
        spec, objectives=objectives, symmetry=symmetry, domain_bounds=domain_bounds
    )
    if jobs > 1 or split_depth is not None:
        from repro.dse.parallel import ParallelParetoExplorer

        return ParallelParetoExplorer(
            instance, jobs=jobs, split_depth=split_depth, **kwargs
        ).run()
    return ExactParetoExplorer(instance, **kwargs).run()

"""Ground symbols.

Symbols are the values manipulated by ground answer set programs: numbers,
strings, and function terms (constants are zero-arity functions).  They are
immutable, hashable, and totally ordered so they can be used as dictionary
keys and sorted deterministically when printing models.

The ordering follows the convention used by clingo: numbers sort before
strings, strings before functions; functions compare by arity, then name,
then arguments.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Tuple, Union

__all__ = ["Symbol", "Number", "String", "Function", "parse_term"]


@total_ordering
class Number:
    """An integer symbol."""

    __slots__ = ("value", "_hash")

    #: Rank used for cross-type comparisons (numbers < strings < functions).
    order = 0

    def __init__(self, value: int):
        if not isinstance(value, int):
            raise TypeError(f"Number value must be int, got {type(value).__name__}")
        self.value = value
        self._hash = hash(("Number", value))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Number) and self.value == other.value

    def __lt__(self, other: "Symbol") -> bool:
        if isinstance(other, Number):
            return self.value < other.value
        return self.order < other.order

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Number({self.value})"

    def __str__(self) -> str:
        return str(self.value)


@total_ordering
class String:
    """A quoted string symbol."""

    __slots__ = ("value", "_hash")

    order = 1

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(f"String value must be str, got {type(value).__name__}")
        self.value = value
        self._hash = hash(("String", value))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, String) and self.value == other.value

    def __lt__(self, other: "Symbol") -> bool:
        if isinstance(other, String):
            return self.value < other.value
        return self.order < other.order

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"String({self.value!r})"

    def __str__(self) -> str:
        return '"' + self.value.replace("\\", "\\\\").replace('"', '\\"') + '"'


@total_ordering
class Function:
    """A function symbol ``name(arg1, ..., argN)``.

    A constant is a zero-arity function; a tuple is a function with the
    empty name.  ``positive=False`` represents a classically negated atom
    ``-name(...)``.
    """

    __slots__ = ("name", "arguments", "positive", "_hash")

    order = 2

    def __init__(
        self,
        name: str,
        arguments: Iterable["Symbol"] = (),
        positive: bool = True,
    ):
        self.name = name
        self.arguments: Tuple[Symbol, ...] = tuple(arguments)
        self.positive = positive
        self._hash = hash(("Function", name, self.arguments, positive))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Function)
            and self.name == other.name
            and self.positive == other.positive
            and self.arguments == other.arguments
        )

    def __lt__(self, other: "Symbol") -> bool:
        if isinstance(other, Function):
            key_self = (len(self.arguments), self.name, self.arguments, self.positive)
            key_other = (
                len(other.arguments),
                other.name,
                other.arguments,
                other.positive,
            )
            return key_self < key_other
        return self.order < other.order

    def __hash__(self) -> int:
        return self._hash

    @property
    def signature(self) -> Tuple[str, int]:
        """``(name, arity)`` pair identifying the predicate."""
        return (self.name, len(self.arguments))

    def __repr__(self) -> str:
        return f"Function({self.name!r}, {list(self.arguments)!r})"

    def __str__(self) -> str:
        sign = "" if self.positive else "-"
        if not self.arguments:
            return sign + (self.name if self.name else "()")
        args = ",".join(str(a) for a in self.arguments)
        if not self.name and len(self.arguments) == 1:
            # One-element tuples keep a trailing comma, as in clingo.
            return f"{sign}({args},)"
        return f"{sign}{self.name}({args})"


Symbol = Union[Number, String, Function]


def parse_term(text: str) -> Symbol:
    """Parse a single ground term from ``text``.

    Convenience wrapper used pervasively in tests; delegates to the full
    parser.
    """
    from repro.asp.parser import parse_ground_term

    return parse_ground_term(text)

"""Non-ground program AST.

The AST mirrors the fragment of the ASP-Core-2 / clingo input language that
the synthesis encodings need:

* normal rules, facts and integrity constraints,
* choice rules with optional cardinality bounds,
* ``#count``/``#sum`` body aggregates with guards,
* arithmetic terms, intervals and comparison builtins,
* theory atoms ``&name(args) { elements } op term`` in rule heads (used for
  the linear/difference background theory).

The AST is deliberately plain: immutable dataclasses without behaviour.
Instantiation logic lives in :mod:`repro.asp.grounder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.asp.syntax import Symbol

__all__ = [
    "Location",
    "Variable",
    "SymbolTerm",
    "FunctionTerm",
    "BinaryTerm",
    "UnaryTerm",
    "IntervalTerm",
    "PoolTerm",
    "Term",
    "Comparison",
    "Literal",
    "AggregateElement",
    "Aggregate",
    "BodyItem",
    "ChoiceElement",
    "ChoiceHead",
    "TheoryElement",
    "TheoryAtom",
    "Head",
    "Rule",
    "Program",
    "COMPARISON_OPS",
]

# ---------------------------------------------------------------------------
# Source locations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Location:
    """1-based line/column of a construct in its source text.

    Locations are carried on :class:`Rule`, :class:`Literal` and
    :class:`Aggregate` nodes with ``compare=False`` so that two nodes with
    the same content stay equal (and hash alike) regardless of where they
    were written — grounding and tests rely on structural equality.
    """

    line: int
    column: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Variable:
    """A first-order variable, e.g. ``X``.  ``_`` is an anonymous variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SymbolTerm:
    """A ground symbol embedded in a non-ground term."""

    symbol: Symbol

    def __str__(self) -> str:
        return str(self.symbol)


@dataclass(frozen=True)
class FunctionTerm:
    """A (possibly non-ground) function term ``name(t1, ..., tN)``."""

    name: str
    arguments: Tuple["Term", ...]

    def __str__(self) -> str:
        if not self.arguments:
            return self.name
        args = ",".join(str(a) for a in self.arguments)
        return f"{self.name}({args})"


@dataclass(frozen=True)
class BinaryTerm:
    """Arithmetic ``lhs op rhs`` with ``op`` in ``+ - * / \\ **``."""

    op: str
    lhs: "Term"
    rhs: "Term"

    def __str__(self) -> str:
        return f"({self.lhs}{self.op}{self.rhs})"


@dataclass(frozen=True)
class UnaryTerm:
    """Unary minus or absolute value."""

    op: str
    argument: "Term"

    def __str__(self) -> str:
        if self.op == "|":
            return f"|{self.argument}|"
        return f"({self.op}{self.argument})"


@dataclass(frozen=True)
class IntervalTerm:
    """An integer interval ``lo..hi``."""

    lower: "Term"
    upper: "Term"

    def __str__(self) -> str:
        return f"({self.lower}..{self.upper})"


@dataclass(frozen=True)
class PoolTerm:
    """An argument pool ``t1; t2; ...`` (expands like an interval)."""

    options: Tuple["Term", ...]

    def __str__(self) -> str:
        return "(" + ";".join(str(o) for o in self.options) + ")"


Term = Union[
    Variable, SymbolTerm, FunctionTerm, BinaryTerm, UnaryTerm, IntervalTerm, PoolTerm
]

# ---------------------------------------------------------------------------
# Literals
# ---------------------------------------------------------------------------

COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison:
    """A builtin comparison ``lhs op rhs``."""

    op: str
    lhs: Term
    rhs: Term

    def __str__(self) -> str:
        return f"{self.lhs}{self.op}{self.rhs}"


@dataclass(frozen=True)
class Literal:
    """A (possibly negated) symbolic atom or comparison.

    ``sign`` is the number of leading ``not`` — 0 for positive, 1 for
    default negation.  Double negation is normalized away by the parser.
    """

    sign: int
    atom: Union[FunctionTerm, Comparison]
    location: Optional[Location] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        prefix = "not " * self.sign
        return prefix + str(self.atom)


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggregateElement:
    """One element ``t1,...,tN : l1, ..., lM`` of an aggregate."""

    terms: Tuple[Term, ...]
    condition: Tuple[Literal, ...]

    def __str__(self) -> str:
        terms = ",".join(str(t) for t in self.terms)
        if self.condition:
            cond = ",".join(str(c) for c in self.condition)
            return f"{terms}:{cond}"
        return terms


@dataclass(frozen=True)
class Aggregate:
    """A body aggregate ``lhs op #fun { elements } op rhs``.

    ``function`` is ``"count"`` or ``"sum"``.  Guards are optional; each is
    a ``(op, term)`` pair with the aggregate on the left-hand side, i.e.
    ``lower_guard = (">=", 2)`` means the aggregate value is at least 2.
    ``sign`` is 0 for a positive body occurrence, 1 under default negation.
    """

    sign: int
    function: str
    elements: Tuple[AggregateElement, ...]
    left_guard: Optional[Tuple[str, Term]] = None
    right_guard: Optional[Tuple[str, Term]] = None
    location: Optional[Location] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        elems = ";".join(str(e) for e in self.elements)
        text = f"#{self.function}{{{elems}}}"
        if self.left_guard is not None:
            op, term = self.left_guard
            inverted = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
            text = f"{term}{inverted[op]}{text}"
        if self.right_guard is not None:
            op, term = self.right_guard
            text = f"{text}{op}{term}"
        return ("not " * self.sign) + text


BodyItem = Union[Literal, Aggregate]

# ---------------------------------------------------------------------------
# Heads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChoiceElement:
    """One element ``atom : condition`` of a choice head."""

    atom: FunctionTerm
    condition: Tuple[Literal, ...]

    def __str__(self) -> str:
        if self.condition:
            cond = ",".join(str(c) for c in self.condition)
            return f"{self.atom}:{cond}"
        return str(self.atom)


@dataclass(frozen=True)
class ChoiceHead:
    """A choice head ``lower { elements } upper`` (bounds optional)."""

    elements: Tuple[ChoiceElement, ...]
    lower: Optional[Term] = None
    upper: Optional[Term] = None

    def __str__(self) -> str:
        elems = ";".join(str(e) for e in self.elements)
        lower = f"{self.lower} " if self.lower is not None else ""
        upper = f" {self.upper}" if self.upper is not None else ""
        return f"{lower}{{{elems}}}{upper}"


@dataclass(frozen=True)
class TheoryElement:
    """One element ``t1,...,tN : l1,...,lM`` of a theory atom."""

    terms: Tuple[Term, ...]
    condition: Tuple[Literal, ...]

    def __str__(self) -> str:
        terms = ",".join(str(t) for t in self.terms)
        if self.condition:
            cond = ",".join(str(c) for c in self.condition)
            return f"{terms}:{cond}"
        return terms


@dataclass(frozen=True)
class TheoryAtom:
    """A theory atom ``&name(args) { elements } op term``.

    The synthesis encodings use ``&diff { u - v } <= c`` and
    ``&sum { c1*x1 ; ... } <= c`` in rule heads; the grounder instantiates
    them and hands them to the registered theory via the propagator
    interface.
    """

    name: str
    arguments: Tuple[Term, ...]
    elements: Tuple[TheoryElement, ...]
    guard: Optional[Tuple[str, Term]] = None

    def __str__(self) -> str:
        args = ""
        if self.arguments:
            args = "(" + ",".join(str(a) for a in self.arguments) + ")"
        elems = ";".join(str(e) for e in self.elements)
        guard = ""
        if self.guard is not None:
            guard = f" {self.guard[0]} {self.guard[1]}"
        return f"&{self.name}{args}{{{elems}}}{guard}"


Head = Union[FunctionTerm, ChoiceHead, TheoryAtom, None]

# ---------------------------------------------------------------------------
# Rules and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """``head :- body.`` — ``head is None`` for integrity constraints."""

    head: Head
    body: Tuple[BodyItem, ...] = ()
    location: Optional[Location] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        if self.head is None:
            if not self.body:
                return ":- ."
            return ":- " + ", ".join(str(b) for b in self.body) + "."
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(b) for b in self.body)
        return f"{self.head} :- {body}."


@dataclass
class Program:
    """A parsed program: rules, ``#const`` definitions, ``#show`` filters.

    ``shows`` is ``None`` when no ``#show`` statement occurred (show
    everything); otherwise the set of ``(name, arity)`` signatures to
    display (empty set for a bare ``#show.``).
    """

    rules: list = field(default_factory=list)
    constants: dict = field(default_factory=dict)
    shows: Optional[set] = None
    #: Signatures declared ``#external`` (their atoms default to false
    #: and are controlled via ``Control.assign_external``).
    externals: set = field(default_factory=set)

    def __str__(self) -> str:
        lines = [f"#const {name}={value}." for name, value in self.constants.items()]
        lines.extend(str(r) for r in self.rules)
        return "\n".join(lines)

"""Tokenizer and parser for the ASP-like input language.

The accepted language is the fragment of the clingo input language used by
the synthesis encodings:

.. code-block:: text

    #const n = 4.
    task(t1). task(t2).
    1 { bind(T, R) : mapping(T, R) } 1 :- task(T).
    reached(M, R) :- route(M, L), link(L, _, R).
    :- message(M), target(M, R), not reached(M, R).
    &diff { start(T2) - start(T1) } >= D :- depend(T1, T2), wcet(T1, D).
    &sum { E, bind(T, R) : energy(T, R, E) } <= budget.

Supported constructs: normal rules, facts, integrity constraints, choice
heads with optional bounds, ``#count``/``#sum`` body aggregates with
guards, comparison builtins, arithmetic terms, intervals ``lo..hi``,
``#const`` definitions, and theory atoms (``&name { ... } op term``) in
rule heads.  ``%`` starts a line comment.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.asp import ast
from repro.asp.syntax import Number, String, Symbol

__all__ = ["ParseError", "parse_program", "parse_ground_term", "tokenize"]


class ParseError(Exception):
    """Raised on malformed input, with line/column information.

    Every instance carries ``line``, ``column`` (1-based) and ``token`` —
    the offending source text (``""`` at end of input) — so callers such
    as the linter can turn parse failures into located diagnostics.
    """

    def __init__(self, message: str, line: int, column: int, token: str = ""):
        super().__init__(f"{message} (line {line}, column {column})")
        self.message = message
        self.line = line
        self.column = column
        self.token = token


_TOKEN_RE = re.compile(
    r"""
      (?P<WS>\s+)
    | (?P<COMMENT>%[^\n]*)
    | (?P<NUMBER>\d+)
    | (?P<STRING>"(?:[^"\\]|\\.)*")
    | (?P<DIRECTIVE>\#[a-z]+)
    | (?P<VARIABLE>[_A-Z][A-Za-z0-9_]*)
    | (?P<IDENT>[a-z][A-Za-z0-9_]*)
    | (?P<DOTS>\.\.)
    | (?P<IMPLIES>:-)
    | (?P<WEAK>:~)
    | (?P<NEQ>!=)
    | (?P<LE><=)
    | (?P<GE>>=)
    | (?P<POW>\*\*)
    | (?P<PUNCT>[.,;:(){}\[\]&|+\-*/\\=<>@])
    """,
    re.VERBOSE,
)


class Token:
    """A lexical token with source position."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value: str, line: int, column: int):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into tokens, raising :class:`ParseError` on garbage."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {text[pos]!r}",
                line,
                pos - line_start + 1,
                token=text[pos],
            )
        kind = match.lastgroup
        value = match.group()
        column = pos - line_start + 1
        if kind not in ("WS", "COMMENT"):
            if kind == "PUNCT":
                kind = value
            elif kind == "DOTS":
                kind = ".."
            elif kind == "IMPLIES":
                kind = ":-"
            elif kind == "WEAK":
                kind = ":~"
            elif kind == "NEQ":
                kind = "!="
            elif kind == "LE":
                kind = "<="
            elif kind == "GE":
                kind = ">="
            elif kind == "POW":
                kind = "**"
            tokens.append(Token(kind, value, line, column))
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = pos + value.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token("EOF", "", line, pos - line_start + 1))
    return tokens


_COMPARISON_TOKENS = ("=", "!=", "<", "<=", ">", ">=")
_INVERT_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


class _Parser:
    """Recursive-descent parser over a token stream."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0
        self._anonymous_counter = 0

    # -- token-stream helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r}, got {token.value!r}",
                token.line,
                token.column,
                token=token.value,
            )
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(
            message + f", got {token.value!r}",
            token.line,
            token.column,
            token=token.value,
        )

    @staticmethod
    def _loc(token: Token) -> ast.Location:
        return ast.Location(token.line, token.column)

    # -- program -------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self._peek().kind != "EOF":
            token = self._peek()
            if token.kind == "DIRECTIVE":
                self._parse_directive(program)
            elif token.kind == ":~":
                self._parse_weak_constraint(program)
            else:
                program.rules.append(self._parse_rule())
        return program

    def _parse_weak_constraint(self, program: ast.Program) -> None:
        """``:~ body. [weight@priority, terms]`` (ASP-Core-2).

        Desugared into the same internal ``&__minimize`` theory-atom form
        as ``#minimize``: the body becomes the element condition.
        """
        start = self._expect(":~")
        body: Tuple[ast.BodyItem, ...] = ()
        if self._peek().kind != ".":
            body = tuple(self._parse_body())
        self._expect(".")
        self._expect("[")
        weight = self._parse_term()
        priority: ast.Term = ast.SymbolTerm(Number(0))
        if self._peek().kind == "@":
            self._next()
            priority = self._parse_term()
        terms: List[ast.Term] = [weight]
        while self._peek().kind == ",":
            self._next()
            terms.append(self._parse_term())
        self._expect("]")
        condition: List[ast.Literal] = []
        for item in body:
            if not isinstance(item, ast.Literal):
                where = item.location or self._loc(start)
                raise ParseError(
                    "aggregates are not supported in weak constraint bodies",
                    where.line,
                    where.column,
                    token=f"#{item.function}",
                )
            condition.append(item)
        head = ast.TheoryAtom(
            "__minimize",
            (priority,),
            (ast.TheoryElement(tuple(terms), tuple(condition)),),
            None,
        )
        program.rules.append(ast.Rule(head, (), location=self._loc(start)))

    def _parse_directive(self, program: ast.Program) -> None:
        token = self._next()
        if token.value == "#const":
            name = self._expect("IDENT").value
            self._expect("=")
            value = self._parse_term()
            self._expect(".")
            program.constants[name] = value
        elif token.value == "#show":
            if program.shows is None:
                program.shows = set()
            if self._peek().kind == ".":
                self._next()  # bare "#show." : project everything away
                return
            name = self._expect("IDENT").value
            self._expect("/")
            arity = int(self._expect("NUMBER").value)
            self._expect(".")
            program.shows.add((name, arity))
        elif token.value in ("#minimize", "#maximize"):
            self._parse_minimize(
                program, maximize=token.value == "#maximize", start=token
            )
        elif token.value == "#external":
            # "#external atom [: condition]." — desugared into a choice
            # rule (the atom is free) plus a signature record; Control
            # pins the truth value through assumptions (default false).
            atom = self._parse_symbolic_atom()
            condition: Tuple[ast.Literal, ...] = ()
            if self._peek().kind == ":":
                self._next()
                condition = tuple(self._parse_condition())
            self._expect(".")
            program.externals.add((atom.name, len(atom.arguments)))
            head = ast.ChoiceHead((ast.ChoiceElement(atom, ()),), None, None)
            program.rules.append(ast.Rule(head, condition, location=self._loc(token)))
        else:
            raise ParseError(
                f"unsupported directive {token.value!r}",
                token.line,
                token.column,
                token=token.value,
            )

    def _parse_minimize(
        self, program: ast.Program, maximize: bool, start: Token
    ) -> None:
        """Parse ``#minimize { w[@p], t... : cond ; ... }.``

        Each element is desugared into an internal theory-atom rule
        ``&__minimize(p) { w, t... : cond }.`` which the grounder
        instantiates like any theory atom; :meth:`repro.asp.control
        .Control.optimize` interprets the ground instances.
        ``#maximize`` negates the weights.
        """
        self._expect("{")
        zero = ast.SymbolTerm(Number(0))
        while self._peek().kind != "}":
            weight = self._parse_term()
            priority: ast.Term = zero
            if self._peek().kind == "@":
                self._next()
                priority = self._parse_term()
            terms: List[ast.Term] = [
                ast.UnaryTerm("-", weight) if maximize else weight
            ]
            while self._peek().kind == ",":
                self._next()
                terms.append(self._parse_term())
            condition: Tuple[ast.Literal, ...] = ()
            if self._peek().kind == ":":
                self._next()
                condition = tuple(self._parse_condition())
            head = ast.TheoryAtom(
                "__minimize",
                (priority,),
                (ast.TheoryElement(tuple(terms), condition),),
                None,
            )
            program.rules.append(ast.Rule(head, (), location=self._loc(start)))
            if self._peek().kind == ";":
                self._next()
                continue
            break
        self._expect("}")
        self._expect(".")

    # -- rules ---------------------------------------------------------------

    def _parse_rule(self) -> ast.Rule:
        start = self._peek()
        head: ast.Head
        if start.kind == ":-":
            head = None
        else:
            head = self._parse_head()
        body: Tuple[ast.BodyItem, ...] = ()
        if self._peek().kind == ":-":
            self._next()
            body = tuple(self._parse_body())
        self._expect(".")
        return ast.Rule(head, body, location=self._loc(start))

    def _parse_head(self) -> ast.Head:
        token = self._peek()
        if token.kind == "&":
            return self._parse_theory_atom()
        if token.kind == "{":
            return self._parse_choice(lower=None)
        # Possibly "lower { ... } upper".
        checkpoint = self._pos
        if token.kind in ("NUMBER", "VARIABLE", "IDENT", "("):
            try:
                lower = self._parse_term()
            except ParseError:
                self._pos = checkpoint
                lower = None
            if lower is not None and self._peek().kind == "{":
                return self._parse_choice(lower=lower)
            self._pos = checkpoint
        atom = self._parse_symbolic_atom()
        return atom

    def _parse_choice(self, lower: Optional[ast.Term]) -> ast.ChoiceHead:
        self._expect("{")
        elements: List[ast.ChoiceElement] = []
        if self._peek().kind != "}":
            while True:
                atom = self._parse_symbolic_atom()
                condition: Tuple[ast.Literal, ...] = ()
                if self._peek().kind == ":":
                    self._next()
                    condition = tuple(self._parse_condition())
                elements.append(ast.ChoiceElement(atom, condition))
                if self._peek().kind == ";":
                    self._next()
                    continue
                break
        self._expect("}")
        upper: Optional[ast.Term] = None
        if self._peek().kind in ("NUMBER", "VARIABLE", "IDENT", "("):
            upper = self._parse_term()
        return ast.ChoiceHead(tuple(elements), lower, upper)

    def _parse_theory_atom(self) -> ast.TheoryAtom:
        self._expect("&")
        name = self._expect("IDENT").value
        arguments: Tuple[ast.Term, ...] = ()
        if self._peek().kind == "(":
            self._next()
            args: List[ast.Term] = [self._parse_term()]
            while self._peek().kind == ",":
                self._next()
                args.append(self._parse_term())
            self._expect(")")
            arguments = tuple(args)
        self._expect("{")
        elements: List[ast.TheoryElement] = []
        if self._peek().kind != "}":
            while True:
                terms = [self._parse_term()]
                while self._peek().kind == ",":
                    self._next()
                    terms.append(self._parse_term())
                condition: Tuple[ast.Literal, ...] = ()
                if self._peek().kind == ":":
                    self._next()
                    condition = tuple(self._parse_condition())
                elements.append(ast.TheoryElement(tuple(terms), condition))
                if self._peek().kind == ";":
                    self._next()
                    continue
                break
        self._expect("}")
        guard: Optional[Tuple[str, ast.Term]] = None
        if self._peek().kind in _COMPARISON_TOKENS:
            op = self._next().kind
            guard = (op, self._parse_term())
        return ast.TheoryAtom(name, arguments, tuple(elements), guard)

    # -- body ----------------------------------------------------------------

    def _parse_body(self) -> List[ast.BodyItem]:
        items = [self._parse_body_item()]
        while self._peek().kind == ",":
            self._next()
            items.append(self._parse_body_item())
        return items

    def _parse_body_item(self) -> ast.BodyItem:
        start = self._peek()
        sign = 0
        while self._peek().kind == "IDENT" and self._peek().value == "not":
            self._next()
            sign += 1
        sign %= 2
        token = self._peek()
        if token.kind == "DIRECTIVE" and token.value in ("#count", "#sum", "#min", "#max"):
            return self._parse_aggregate(sign, left_guard=None, start=start)
        # Could be: atom, comparison, or "term op #agg".
        checkpoint = self._pos
        term = self._parse_term()
        if self._peek().kind in _COMPARISON_TOKENS:
            op = self._next().kind
            after = self._peek()
            if after.kind == "DIRECTIVE" and after.value in ("#count", "#sum", "#min", "#max"):
                # "t op #agg{...}": normalize to a guard with the aggregate
                # on the left-hand side.
                return self._parse_aggregate(
                    sign, left_guard=(_INVERT_OP[op], term), start=start
                )
            rhs = self._parse_term()
            return ast.Literal(
                sign, ast.Comparison(op, term, rhs), location=self._loc(start)
            )
        # Plain symbolic atom: re-parse strictly as an atom.
        self._pos = checkpoint
        atom = self._parse_symbolic_atom()
        return ast.Literal(sign, atom, location=self._loc(start))

    def _parse_aggregate(
        self,
        sign: int,
        left_guard: Optional[Tuple[str, ast.Term]],
        start: Optional[Token] = None,
    ) -> ast.Aggregate:
        directive = self._next()
        function = directive.value[1:]
        self._expect("{")
        elements: List[ast.AggregateElement] = []
        if self._peek().kind != "}":
            while True:
                terms = [self._parse_term()]
                while self._peek().kind == ",":
                    self._next()
                    terms.append(self._parse_term())
                condition: Tuple[ast.Literal, ...] = ()
                if self._peek().kind == ":":
                    self._next()
                    condition = tuple(self._parse_condition())
                elements.append(ast.AggregateElement(tuple(terms), condition))
                if self._peek().kind == ";":
                    self._next()
                    continue
                break
        self._expect("}")
        right_guard: Optional[Tuple[str, ast.Term]] = None
        if self._peek().kind in _COMPARISON_TOKENS:
            op = self._next().kind
            right_guard = (op, self._parse_term())
        return ast.Aggregate(
            sign,
            function,
            tuple(elements),
            left_guard,
            right_guard,
            location=self._loc(start or directive),
        )

    def _parse_condition(self) -> List[ast.Literal]:
        """Parse a comma-separated list of literals in an element condition."""
        literals = [self._parse_condition_literal()]
        while self._peek().kind == ",":
            # A comma may also terminate the condition (next body item); a
            # condition literal always starts with "not", an identifier, or
            # a term usable in a comparison.  We disambiguate by attempting
            # a parse and rolling back.
            checkpoint = self._pos
            self._next()
            try:
                literals.append(self._parse_condition_literal())
            except ParseError:
                self._pos = checkpoint
                break
        return literals

    def _parse_condition_literal(self) -> ast.Literal:
        start = self._peek()
        sign = 0
        while self._peek().kind == "IDENT" and self._peek().value == "not":
            self._next()
            sign += 1
        sign %= 2
        checkpoint = self._pos
        term = self._parse_term()
        if self._peek().kind in _COMPARISON_TOKENS:
            op = self._next().kind
            rhs = self._parse_term()
            return ast.Literal(
                sign, ast.Comparison(op, term, rhs), location=self._loc(start)
            )
        self._pos = checkpoint
        return ast.Literal(
            sign, self._parse_symbolic_atom(), location=self._loc(start)
        )

    # -- atoms and terms -----------------------------------------------------

    def _parse_argument(self) -> ast.Term:
        """One function argument; ``;`` builds a pool (``p(1;2)``)."""
        term = self._parse_term()
        if self._peek().kind != ";":
            return term
        options = [term]
        while self._peek().kind == ";":
            self._next()
            options.append(self._parse_term())
        return ast.PoolTerm(tuple(options))

    def _parse_symbolic_atom(self) -> ast.FunctionTerm:
        token = self._expect("IDENT")
        arguments: Tuple[ast.Term, ...] = ()
        if self._peek().kind == "(":
            self._next()
            args = [self._parse_argument()]
            while self._peek().kind == ",":
                self._next()
                args.append(self._parse_argument())
            self._expect(")")
            arguments = tuple(args)
        return ast.FunctionTerm(token.value, arguments)

    def _parse_term(self) -> ast.Term:
        return self._parse_interval()

    def _parse_interval(self) -> ast.Term:
        lhs = self._parse_additive()
        if self._peek().kind == "..":
            self._next()
            rhs = self._parse_additive()
            return ast.IntervalTerm(lhs, rhs)
        return lhs

    def _parse_additive(self) -> ast.Term:
        term = self._parse_multiplicative()
        while self._peek().kind in ("+", "-"):
            op = self._next().kind
            rhs = self._parse_multiplicative()
            term = ast.BinaryTerm(op, term, rhs)
        return term

    def _parse_multiplicative(self) -> ast.Term:
        term = self._parse_power()
        while self._peek().kind in ("*", "/", "\\"):
            op = self._next().kind
            rhs = self._parse_power()
            term = ast.BinaryTerm(op, term, rhs)
        return term

    def _parse_power(self) -> ast.Term:
        base = self._parse_unary()
        if self._peek().kind == "**":
            self._next()
            exponent = self._parse_power()  # right-associative
            return ast.BinaryTerm("**", base, exponent)
        return base

    def _parse_unary(self) -> ast.Term:
        token = self._peek()
        if token.kind == "-":
            self._next()
            return ast.UnaryTerm("-", self._parse_unary())
        if token.kind == "|":
            self._next()
            inner = self._parse_term()
            self._expect("|")
            return ast.UnaryTerm("|", inner)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Term:
        token = self._next()
        if token.kind == "NUMBER":
            return ast.SymbolTerm(Number(int(token.value)))
        if token.kind == "STRING":
            raw = token.value[1:-1]
            value = raw.replace('\\"', '"').replace("\\\\", "\\")
            return ast.SymbolTerm(String(value))
        if token.kind == "VARIABLE":
            if token.value == "_":
                self._anonymous_counter += 1
                return ast.Variable(f"_Anon{self._anonymous_counter}")
            return ast.Variable(token.value)
        if token.kind == "IDENT":
            if self._peek().kind == "(":
                self._next()
                args = [self._parse_argument()]
                while self._peek().kind == ",":
                    self._next()
                    args.append(self._parse_argument())
                self._expect(")")
                return ast.FunctionTerm(token.value, tuple(args))
            return ast.FunctionTerm(token.value, ())
        if token.kind == "(":
            items = [self._parse_term()]
            trailing_comma = False
            while self._peek().kind == ",":
                self._next()
                if self._peek().kind == ")":
                    trailing_comma = True
                    break
                items.append(self._parse_term())
            self._expect(")")
            if len(items) > 1 or trailing_comma:
                return ast.FunctionTerm("", tuple(items))
            return items[0]
        raise ParseError(
            f"unexpected token {token.value!r} in term",
            token.line,
            token.column,
            token=token.value,
        )


def parse_program(text: str) -> ast.Program:
    """Parse a full program from ``text``."""
    return _Parser(tokenize(text)).parse_program()


def parse_ground_term(text: str) -> Symbol:
    """Parse and evaluate a single ground term, returning a symbol."""
    from repro.asp.grounder import evaluate_term

    tokens = tokenize(text)
    first = tokens[0]
    parser = _Parser(tokens)
    term = parser._parse_term()
    if parser._peek().kind != "EOF":
        token = parser._peek()
        raise ParseError(
            "trailing input after term", token.line, token.column, token=token.value
        )
    symbol = evaluate_term(term, {})
    if symbol is None:
        raise ParseError(
            "term is not ground or not evaluable",
            first.line,
            first.column,
            token=first.value,
        )
    return symbol

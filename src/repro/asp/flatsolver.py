"""Flat-array CDNL solver core (the ``solver_core="flat"`` engine).

Same search algorithm as :class:`repro.asp.solver.Solver` — two-watched
literal unit propagation, first-UIP learning with recursive clause
minimization, VSIDS, phase saving, Luby restarts, learned-clause
deletion, assumption-based solving with cores, and the full propagator
interface — but every hot data structure is flat:

* **Clause arena** — the nogood store is a single flat int list; a
  clause *reference* is its offset into the arena, where
  ``arena[ref]`` is the literal count and ``arena[ref+1 .. ref+size]``
  the literals (the first two are the watched ones).  No ``Clause``
  objects, no per-clause attribute lookups.  (A plain list, not
  ``array('i')``: CPython boxes a fresh int object on every ``array``
  subscript, which loses to list pointer loads in the hot loops;
  ``clause_db_bytes`` still accounts the arena at 4 bytes per slot.)
* **Watch lists** — binary clauses live in dedicated *static* watch
  lists: per literal code, a flat int list of ``implied_lit, ref``
  pairs that is never mutated during search (binary clauses are exempt
  from deletion, and a two-literal clause needs no replacement-watch
  search), so propagating one costs a single assignment lookup and an
  inline enqueue.  Clauses of three or more literals use per-code
  lists of ``(blocker, ref)`` pairs over the arena; the blocker (a
  literal of the clause that was recently true) lets most visits skip
  the arena entirely — the classic MiniSat blocker optimization.
* **Assignment** — ``_assign`` is a literal-indexed vector sized
  ``2*cap+1`` so Python's negative indexing maps ``_assign[-v]`` to the
  complement slot: truth tests in the inner loop are one list index,
  no sign branch, no method call.  The var-indexed ``_values`` array
  (0 unassigned, 1 true, -1 false) is maintained in parallel because
  theory propagators read it directly.
* **Trail / levels / reasons / phases** — parallel arrays indexed by
  variable slot; a reason is a clause ref (or -1), so conflict analysis
  walks ints only and bumps activities inline.
* **VSIDS** — slot-indexed activity list with scalar ``_var_inc``
  growth and a uniform overflow rescale (never a per-variable decay
  sweep); the order heap is a lazy-deletion ``heapq`` of
  ``(-activity, var)`` tuples that is compacted whenever stale entries
  would let it outgrow twice the variable count.

Garbage from deleted learned clauses is reclaimed by compacting the
arena after each database reduction (live refs — problem clauses, kept
learned clauses, and reasons on the trail — are remapped in the watch
lists and reason array), so ``clause_db_bytes`` stays proportional to
the live clause set.

The engine is selected through :class:`repro.asp.control.Control`
(``solver_core="flat"``, the default); ``solver_core="reference"`` keeps
the object-based engine, which doubles as a differential oracle exactly
like ``mode="naive"`` does for the grounder.  ``tests/test_flatsolver.py``
and the ``solver-core`` fuzz oracle hold the two cores equivalent on
models, cores, and Pareto fronts.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.asp.solver import (
    PropagatorBase,
    SolveResult,
    SolverStatistics,
    _luby,
)

__all__ = ["FlatSolver"]

#: Reason sentinel: the variable was a decision/assumption or is unassigned.
NO_REASON = -1
#: Conflict sentinel used for the empty (root-conflicting) clause.
EMPTY_CLAUSE = -2


class FlatSolver:
    """CDCL engine over a flat int-list clause arena."""

    def __init__(self) -> None:
        self._nvars = 0
        self._cap = 64  # capacity of the literal-indexed assignment vector
        # Literal-indexed: _assign[lit] is 1 when lit is true, -1 when
        # false, 0 when unassigned; _assign[-lit] mirrors the complement
        # through Python's negative indexing (slot 2*cap+1-v).
        self._assign: List[int] = [0] * (2 * self._cap + 1)
        # Var-indexed parallels (slot 0 unused).  _values is part of the
        # propagator-facing surface (theory hot loops read it directly).
        self._values: List[int] = [0]
        self._levels: List[int] = [0]
        self._reasons: List[int] = [NO_REASON]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._seen = bytearray(1)

        # Indexed by literal code (2v for +v, 2v+1 for -v); each watch
        # list holds (blocker, ref) pairs.
        self._watches: List[List[Tuple[int, int]]] = [[], []]
        # Binary clauses: static flat [implied_lit, ref, ...] lists.
        self._bin_watches: List[List[int]] = [[], []]
        self._prop_watches: List[List[int]] = [[], []]

        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0

        # The clause arena: [size, lit0, lit1, ...] records.  A plain
        # list, not array('i'): CPython array subscripts box a fresh int
        # object per read, which loses to list pointer loads in the hot
        # loops; clause_db_bytes() still accounts 4 bytes per slot.
        self._arena: List[int] = []
        self._clause_refs: List[int] = []
        self._learned_refs: List[int] = []
        self._cla_act: Dict[int, float] = {}

        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._unsat = False

        self._propagators: List[PropagatorBase] = []
        self._prop_buffers: List[List[int]] = []
        self._pending_conflict: Optional[int] = None

        self.stats = SolverStatistics(core="flat")
        #: Optional hard budget on conflicts for a single solve() call.
        self.conflict_limit: Optional[int] = None
        #: Conflicts per Luby restart unit (None disables restarts).
        self.restart_base: Optional[int] = 100
        #: When False, decisions ignore saved phases (always negative).
        self.phase_saving: bool = True
        #: Learned-clause budget before database reduction kicks in.
        self.max_learned_base: int = 4000
        #: Set to True when the last solve() stopped on the conflict limit.
        self.interrupted = False

        # VSIDS order heap: lazy-deletion min-heap of (-activity, var)
        # tuples (C heapq), compacted when stale entries accumulate.
        self._heap: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    def _grow_assign(self) -> None:
        cap = self._cap * 2
        old = self._assign
        new = [0] * (2 * cap + 1)
        for v in range(1, self._nvars + 1):
            new[v] = old[v]
            new[-v] = old[-v]
        self._assign = new
        self._cap = cap

    def new_var(self, phase: bool = False) -> int:
        """Create a fresh variable; returns its (positive) index."""
        self._nvars += 1
        v = self._nvars
        if v >= self._cap:
            self._grow_assign()
        self._values.append(0)
        self._levels.append(0)
        self._reasons.append(NO_REASON)
        self._activity.append(0.0)
        self._phase.append(phase)
        self._seen.append(0)
        self._watches.extend(([], []))
        self._bin_watches.extend(([], []))
        self._prop_watches.extend(([], []))
        heappush(self._heap, (0.0, v))
        return v

    @property
    def num_vars(self) -> int:
        return self._nvars

    # ------------------------------------------------------------------
    # VSIDS order heap (lazy deletion over C heapq, bounded by compaction)
    # ------------------------------------------------------------------

    def _rescale_heap(self) -> None:
        """Rebuild the order heap from the slot-indexed activities.

        Drops stale lazy-deletion entries (old activities, assigned
        vars) so the heap size stays bounded by the variable count.
        """
        values = self._values
        activity = self._activity
        self._heap = [
            (-activity[v], v)
            for v in range(1, self._nvars + 1)
            if values[v] == 0
        ]
        heapify(self._heap)

    # ------------------------------------------------------------------
    # Assignment queries (public surface, shared with the reference core)
    # ------------------------------------------------------------------

    def value(self, lit: int) -> Optional[bool]:
        """Current truth value of ``lit`` (None if unassigned)."""
        v = self._assign[lit]
        if v == 0:
            return None
        return v > 0

    def level(self, lit: int) -> int:
        """Decision level at which ``lit``'s variable was assigned."""
        return self._levels[abs(lit)]

    @property
    def decision_level(self) -> int:
        return len(self._trail_lim)

    @property
    def trail(self) -> Sequence[int]:
        """The assignment trail (true literals in assignment order)."""
        return self._trail

    # ------------------------------------------------------------------
    # Clause arena
    # ------------------------------------------------------------------

    def _alloc(self, lits: Sequence[int]) -> int:
        """Store ``lits`` as an arena record; returns its reference."""
        arena = self._arena
        ref = len(arena)
        arena.append(len(lits))
        arena.extend(lits)
        return ref

    def _clause_lits(self, ref: int) -> List[int]:
        """The literals of ``ref`` (copies; used off the hot path)."""
        arena = self._arena
        return arena[ref + 1 : ref + 1 + arena[ref]]

    def clause_db_bytes(self) -> int:
        """Bytes held by the clause arena at 4 bytes per int slot
        (including not-yet-collected garbage; the arena is compacted on
        database reduction)."""
        return 4 * len(self._arena)

    def _attach(self, ref: int) -> None:
        arena = self._arena
        first = arena[ref + 1]
        second = arena[ref + 2]
        if arena[ref] == 2:
            # Binary clauses go to the static implication lists (exempt
            # from deletion, so the lists never churn during search):
            # flat [implied_lit, ref, ...] int pairs.
            bin_watches = self._bin_watches
            code = (-first << 1) if first < 0 else (first << 1) | 1
            bin_watches[code].extend((second, ref))
            code = (-second << 1) if second < 0 else (second << 1) | 1
            bin_watches[code].extend((first, ref))
        else:
            # Longer clauses: movable (blocker, ref) pair watch lists.
            watches = self._watches
            code = (-first << 1) if first < 0 else (first << 1) | 1
            watches[code].append((second, ref))
            code = (-second << 1) if second < 0 else (second << 1) | 1
            watches[code].append((first, ref))

    def _detach(self, ref: int) -> None:
        arena = self._arena
        binary = arena[ref] == 2
        for k in (ref + 1, ref + 2):
            lit = arena[k]
            code = (-lit << 1) if lit < 0 else (lit << 1) | 1
            if binary:
                wl = self._bin_watches[code]
                for i in range(1, len(wl), 2):
                    if wl[i] == ref:
                        del wl[i - 1 : i + 1]
                        break
            else:
                pairs = self._watches[code]
                for i, pair in enumerate(pairs):
                    if pair[1] == ref:
                        del pairs[i]
                        break

    # ------------------------------------------------------------------
    # Clause addition
    # ------------------------------------------------------------------

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause at decision level 0 (outside of search).

        Returns ``False`` if the solver became permanently unsatisfiable.
        """
        assert self.decision_level == 0, "use add_propagator_clause during search"
        if self._unsat:
            return False
        assign = self._assign
        seen: Set[int] = set()
        out: List[int] = []
        for lit in lits:
            if lit == 0 or abs(lit) > self._nvars:
                raise ValueError(f"invalid literal {lit}")
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            value = assign[lit]
            if value > 0:
                return True  # satisfied at level 0
            if value < 0:
                continue  # drop false literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self._unsat = True
            return False
        if len(out) == 1:
            self._enqueue(out[0], NO_REASON)
            if self._propagate_boolean() is not None:
                self._unsat = True
                return False
            return True
        ref = self._alloc(out)
        self._clause_refs.append(ref)
        self._attach(ref)
        return True

    def add_propagator_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause during search (lazy clause generation).

        May be called at any decision level.  Returns ``False`` when the
        clause is conflicting under the current assignment; the solver
        will resolve the conflict when the propagation round returns.
        """
        self.stats.propagator_clauses += 1
        lits = list(dict.fromkeys(lits))
        if any(-lit in lits for lit in lits):
            return True  # tautology
        for lit in lits:
            if lit == 0 or abs(lit) > self._nvars:
                raise ValueError(f"invalid literal {lit}")
        assign = self._assign
        levels = self._levels
        if any(assign[lit] > 0 and levels[abs(lit)] == 0 for lit in lits):
            return True  # satisfied forever
        lits = [
            lit for lit in lits if not (assign[lit] < 0 and levels[abs(lit)] == 0)
        ]
        if not lits:
            self._pending_conflict = EMPTY_CLAUSE
            return False

        def sort_key(lit: int) -> Tuple[int, int]:
            value = assign[lit]
            if value == 0:
                return (2, 0)
            if value > 0:
                return (3, levels[abs(lit)])
            return (1, levels[abs(lit)])  # false: later levels first

        lits.sort(key=sort_key, reverse=True)
        if len(lits) == 1:
            lit = lits[0]
            value = assign[lit]
            if value > 0:
                return True
            # Unit clauses are arena records but neither watched nor
            # tracked for deletion (they may serve as reasons).
            ref = self._alloc(lits)
            if value < 0:
                self._pending_conflict = ref
                return False
            # Unit: enqueue at the current level with this clause as reason.
            self._enqueue(lit, ref)
            return True
        ref = self._alloc(lits)
        self._learned_refs.append(ref)
        self._cla_act[ref] = 0.0
        self._attach(ref)
        first, second = lits[0], lits[1]
        value_first = assign[first]
        if value_first < 0:
            # All literals false: conflicting.
            self._pending_conflict = ref
            return False
        if assign[second] < 0 and value_first == 0:
            # Unit under current assignment.
            self._enqueue(first, ref)
        return True

    # ------------------------------------------------------------------
    # Propagators
    # ------------------------------------------------------------------

    def register_propagator(self, propagator: PropagatorBase) -> None:
        self._propagators.append(propagator)
        self._prop_buffers.append([])
        propagator.on_attach(self)

    def add_propagator_watch(self, lit: int, propagator: PropagatorBase) -> None:
        """Have ``propagator`` be told when ``lit`` becomes true."""
        index = self._propagators.index(propagator)
        code = (-lit << 1) | 1 if lit < 0 else (lit << 1)
        self._prop_watches[code].append(index)
        # Deliver an already-true watch immediately so no event is missed.
        if self._assign[lit] > 0:
            self._prop_buffers[index].append(lit)

    def requeue_watch(self, lit: int, propagator: PropagatorBase) -> None:
        """Re-deliver a true watched literal to ``propagator``.

        Used by drivers whose pruning state changes *between* solve calls
        (e.g. the DSE archive grows): re-queuing a root-level literal
        forces the propagator to re-evaluate at the next fixpoint.
        """
        index = self._propagators.index(propagator)
        if self._assign[lit] > 0:
            self._prop_buffers[index].append(lit)

    # ------------------------------------------------------------------
    # Assignment and propagation
    # ------------------------------------------------------------------

    def _enqueue(self, lit: int, reason: int) -> None:
        var = lit if lit > 0 else -lit
        assert self._values[var] == 0
        self._values[var] = 1 if lit > 0 else -1
        self._assign[lit] = 1
        self._assign[-lit] = -1
        self._levels[var] = len(self._trail_lim)
        self._reasons[var] = reason
        self._trail.append(lit)
        self._phase[var] = lit > 0
        self.stats.propagations += 1

    def _propagate_boolean(self) -> Optional[int]:
        """Unit propagation to fixpoint; returns a conflicting ref or None.

        Hot loop: truth tests are single literal-indexed lookups
        (``assign[lit]``: > 0 true, < 0 false, 0 unassigned).  Binary
        implications run first through the static pair lists (one lookup
        per clause, no watch moving); longer clauses go through the
        movable blocker watch lists over the arena.
        """
        assign = self._assign
        values = self._values
        levels = self._levels
        reasons = self._reasons
        phase = self._phase
        arena = self._arena
        watches = self._watches
        bin_watches = self._bin_watches
        trail = self._trail
        prop_watches = self._prop_watches
        prop_buffers = self._prop_buffers
        enqueued = 0
        conflict: Optional[int] = None
        level = len(self._trail_lim)
        qhead = self._qhead
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            code = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
            # Feed propagator buffers.
            pw = prop_watches[code]
            if pw:
                for index in pw:
                    prop_buffers[index].append(lit)
            # Binary implications: ``lit`` true forces every paired lit.
            bw = bin_watches[code]
            for i in range(0, len(bw), 2):
                other = bw[i]
                val = assign[other]
                if val > 0:
                    continue
                if val < 0:
                    conflict = bw[i + 1]
                    break
                var = other if other > 0 else -other
                values[var] = 1 if other > 0 else -1
                assign[other] = 1
                assign[-other] = -1
                levels[var] = level
                reasons[var] = bw[i + 1]
                trail.append(other)
                phase[var] = other > 0
                enqueued += 1
            if conflict is not None:
                break
            wl = watches[code]
            i = 0
            j = 0
            n = len(wl)
            false_lit = -lit
            while i < n:
                pair = wl[i]
                i += 1
                if assign[pair[0]] > 0:
                    wl[j] = pair
                    j += 1
                    continue
                ref = pair[1]
                base = ref + 1
                # Ensure the falsified literal is at position 1.
                first = arena[base]
                if first == false_lit:
                    first = arena[base + 1]
                    arena[base] = first
                    arena[base + 1] = false_lit
                first_val = assign[first]
                if first_val > 0:
                    # Keep the watch with the true literal as blocker.
                    wl[j] = pair if pair[0] == first else (first, ref)
                    j += 1
                    continue
                # Look for a replacement watch (a non-false literal).
                found = False
                for k in range(base + 2, base + arena[ref]):
                    other = arena[k]
                    if assign[other] >= 0:
                        arena[base + 1] = other
                        arena[k] = false_lit
                        neg_code = (
                            (other << 1) | 1 if other > 0 else (-other) << 1
                        )
                        watches[neg_code].append((first, ref))
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                wl[j] = (first, ref)
                j += 1
                if first_val < 0:
                    conflict = ref
                    # Copy remaining watches back.
                    while i < n:
                        wl[j] = wl[i]
                        i += 1
                        j += 1
                else:
                    # Inline enqueue of the unit literal.
                    var = first if first > 0 else -first
                    values[var] = 1 if first > 0 else -1
                    assign[first] = 1
                    assign[-first] = -1
                    levels[var] = level
                    reasons[var] = ref
                    trail.append(first)
                    phase[var] = first > 0
                    enqueued += 1
            del wl[j:]
            if conflict is not None:
                break
        self._qhead = qhead
        self.stats.propagations += enqueued
        return conflict

    def _propagate(self) -> Optional[int]:
        """Full propagation fixpoint: unit propagation plus propagators."""
        stats = self.stats
        while True:
            started = perf_counter()
            conflict = self._propagate_boolean()
            stats.time_boolean += perf_counter() - started
            if conflict is not None:
                return conflict
            if self._pending_conflict is not None:
                conflict = self._pending_conflict
                self._pending_conflict = None
                return conflict
            progressed = False
            for index, propagator in enumerate(self._propagators):
                buffer = self._prop_buffers[index]
                if not buffer:
                    continue
                self._prop_buffers[index] = []
                progressed = True
                started = perf_counter()
                keep_going = propagator.propagate(self, buffer)
                stats.time_theory += perf_counter() - started
                if self._pending_conflict is not None:
                    conflict = self._pending_conflict
                    self._pending_conflict = None
                    return conflict
                if not keep_going:
                    # The propagator signalled a conflict but the clause it
                    # added was resolved into a pending unit; re-propagate.
                    break
                if self._qhead < len(self._trail):
                    break  # new unit assignments: restart the loop
            if not progressed and self._qhead == len(self._trail):
                return None

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        assign = self._assign
        values = self._values
        reasons = self._reasons
        activity = self._activity
        trail = self._trail
        heap = self._heap
        for index in range(len(trail) - 1, limit - 1, -1):
            lit = trail[index]
            var = lit if lit > 0 else -lit
            values[var] = 0
            assign[lit] = 0
            assign[-lit] = 0
            reasons[var] = NO_REASON
            heappush(heap, (-activity[var], var))
        if len(heap) > 2 * self._nvars + 16:
            # Lazy deletion leaves stale (activity, var) tuples behind;
            # compact so enumeration runs keep the heap bounded.
            self._rescale_heap()
        del trail[limit:]
        del self._trail_lim[level:]
        if self._qhead > limit:
            self._qhead = limit
        # Drop buffered propagator changes that are no longer assigned true.
        for index in range(len(self._prop_buffers)):
            buffer = self._prop_buffers[index]
            if buffer:
                self._prop_buffers[index] = [
                    lit for lit in buffer if assign[lit] > 0
                ]
        for propagator in self._propagators:
            propagator.undo(self, level)

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _analyze(self, conflict: int) -> Tuple[List[int], int]:
        """First-UIP analysis; returns (learned clause lits, backjump level)."""
        arena = self._arena
        levels = self._levels
        reasons = self._reasons
        trail = self._trail
        seen = self._seen
        activity = self._activity
        cla_act = self._cla_act
        var_inc = self._var_inc
        cla_inc = self._cla_inc
        current = len(self._trail_lim)
        learned: List[int] = [0]  # placeholder for the asserting literal
        counter = 0
        lit = 0
        index = len(trail) - 1
        ref = conflict
        is_conflict_clause = True
        path: List[int] = []

        while True:
            # Inline clause bump (learned clauses only; rescale is rare).
            act = cla_act.get(ref)
            if act is not None:
                act += cla_inc
                cla_act[ref] = act
                if act > 1e20:
                    for other in cla_act:
                        cla_act[other] *= 1e-20
                    cla_inc = self._cla_inc = self._cla_inc * 1e-20
            for k in range(ref + 1, ref + 1 + arena[ref]):
                q = arena[k]
                # For reason clauses, position 0 is the propagated literal.
                if not is_conflict_clause and q == lit:
                    continue
                var = q if q > 0 else -q
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    path.append(var)
                    # Inline VSIDS bump; overflow rescale is rare.
                    a = activity[var] + var_inc
                    activity[var] = a
                    if a > 1e100:
                        for v in range(1, self._nvars + 1):
                            activity[v] *= 1e-100
                        var_inc = self._var_inc = self._var_inc * 1e-100
                        self._rescale_heap()
                    if levels[var] >= current:
                        counter += 1
                    else:
                        learned.append(q)
            # Select next literal to expand.
            while True:
                lit = trail[index]
                var = lit if lit > 0 else -lit
                if seen[var]:
                    break
                index -= 1
            index -= 1
            seen[var] = 0
            ref = reasons[var]
            is_conflict_clause = False
            counter -= 1
            if counter == 0:
                break
        learned[0] = -lit

        # Recursive minimization: drop literals implied by the rest.
        keep = [learned[0]]
        lit_levels = {levels[abs(q)] for q in learned[1:]}
        for q in learned[1:]:
            if self._redundant(q, lit_levels):
                continue
            keep.append(q)
        for var in path:
            seen[var] = 0

        if len(keep) == 1:
            backjump = 0
        else:
            # Move the highest-level literal (besides the UIP) to position 1.
            max_i = 1
            for i in range(2, len(keep)):
                if levels[abs(keep[i])] > levels[abs(keep[max_i])]:
                    max_i = i
            keep[1], keep[max_i] = keep[max_i], keep[1]
            backjump = levels[abs(keep[1])]
        return keep, backjump

    def _redundant(self, lit: int, lit_levels: Set[int]) -> bool:
        """Check whether ``lit`` is implied by the remaining learned lits."""
        arena = self._arena
        levels = self._levels
        reasons = self._reasons
        seen = self._seen
        stack = [lit]
        visited: List[int] = []
        result = True
        while stack:
            current = stack.pop()
            ref = reasons[abs(current)]
            if ref < 0:
                result = False
                break
            failed = False
            for k in range(ref + 1, ref + 1 + arena[ref]):
                q = arena[k]
                var = q if q > 0 else -q
                if q == -current or levels[var] == 0 or seen[var]:
                    continue
                if levels[var] not in lit_levels:
                    failed = True
                    break
                seen[var] = 1
                visited.append(var)
                stack.append(q)
            if failed:
                result = False
                break
        for var in visited:
            seen[var] = 0
        return result

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _decide(self) -> Optional[int]:
        saving = self.phase_saving
        values = self._values
        phase = self._phase
        heap = self._heap
        while heap:
            var = heappop(heap)[1]
            if values[var] == 0:
                return var if (saving and phase[var]) else -var
        for var in range(1, self._nvars + 1):
            if values[var] == 0:
                return var if (saving and phase[var]) else -var
        return None

    # ------------------------------------------------------------------
    # Clause DB reduction + arena garbage collection
    # ------------------------------------------------------------------

    def _locked(self, ref: int) -> bool:
        lit = self._arena[ref + 1]
        return self._assign[lit] > 0 and self._reasons[abs(lit)] == ref

    def _reduce_db(self) -> None:
        cla_act = self._cla_act
        arena = self._arena
        self._learned_refs.sort(key=lambda ref: cla_act.get(ref, 0.0))
        target = len(self._learned_refs) // 2
        kept: List[int] = []
        removed = 0
        for ref in self._learned_refs:
            if removed < target and arena[ref] > 2 and not self._locked(ref):
                self._detach(ref)
                cla_act.pop(ref, None)
                removed += 1
            else:
                kept.append(ref)
        self._learned_refs = kept
        self.stats.deleted += removed
        if removed:
            self._collect_arena()

    def _collect_arena(self) -> None:
        """Compact the arena, dropping unreachable records.

        Live records are the problem clauses, the kept learned clauses,
        and any reason refs on the trail (propagator unit clauses are
        stored in the arena without being attached or tracked, so the
        reason scan is what keeps them alive).  Watch lists and the
        reason array are rewritten with the remapped refs.
        """
        arena = self._arena
        reasons = self._reasons
        live = set(self._clause_refs)
        live.update(self._learned_refs)
        for lit in self._trail:
            ref = reasons[lit if lit > 0 else -lit]
            if ref >= 0:
                live.add(ref)
        if self._pending_conflict is not None and self._pending_conflict >= 0:
            live.add(self._pending_conflict)
        new_arena: List[int] = []
        mapping: Dict[int, int] = {}
        for ref in sorted(live):
            mapping[ref] = len(new_arena)
            new_arena.append(arena[ref])
            new_arena.extend(arena[ref + 1 : ref + 1 + arena[ref]])
        self._arena = new_arena
        self._clause_refs = [mapping[ref] for ref in self._clause_refs]
        self._learned_refs = [mapping[ref] for ref in self._learned_refs]
        self._cla_act = {
            mapping[ref]: act for ref, act in self._cla_act.items()
        }
        for var in range(1, self._nvars + 1):
            ref = reasons[var]
            if ref >= 0:
                reasons[var] = mapping[ref]
        for pairs in self._watches:
            for i, pair in enumerate(pairs):
                pairs[i] = (pair[0], mapping[pair[1]])
        # Binary clauses are never deleted, but compaction still moves
        # their records: the static implication lists must be remapped.
        for wl in self._bin_watches:
            for i in range(1, len(wl), 2):
                wl[i] = mapping[wl[i]]
        if self._pending_conflict is not None and self._pending_conflict >= 0:
            self._pending_conflict = mapping[self._pending_conflict]

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> SolveResult:
        """Search for a model extending ``assumptions``.

        On SAT, the assignment is total and remains available through
        :meth:`value` until the next ``solve``/``add_clause`` call; the
        caller typically records the model and adds a blocking clause.
        """
        self.interrupted = False
        if self._unsat:
            return SolveResult(False)
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._unsat = True
            return SolveResult(False)

        arena = self._arena
        levels = self._levels
        stats = self.stats
        # _trail and _trail_lim are only ever mutated in place, so these
        # aliases stay valid across _backtrack/_enqueue calls.
        trail = self._trail
        trail_lim = self._trail_lim
        n_assumptions = len(assumptions)
        max_learned = max(self.max_learned_base, len(self._clause_refs) // 3)
        restart_count = 0
        restart_base = self.restart_base
        conflicts_until_restart = (
            restart_base * _luby(restart_count + 1) if restart_base else None
        )
        conflicts_at_start = stats.conflicts

        try:
            while True:
                conflict = self._propagate()
                arena = self._arena  # _reduce_db may have replaced it
                if conflict is not None:
                    stats.conflicts += 1
                    if conflict == EMPTY_CLAUSE or arena[conflict] == 0:
                        self._unsat = True
                        return SolveResult(False)
                    span = range(conflict + 1, conflict + 1 + arena[conflict])
                    if not trail_lim or all(
                        levels[abs(arena[k])] == 0 for k in span
                    ):
                        self._unsat = True
                        return SolveResult(False)
                    # A propagator clause may be conflicting without a
                    # literal at the current level; backtrack until
                    # analysis applies.
                    top = max(levels[abs(arena[k])] for k in span)
                    if top < len(trail_lim):
                        self._backtrack(top)
                    if not trail_lim:
                        self._unsat = True
                        return SolveResult(False)
                    current = len(trail_lim)
                    if not any(levels[abs(arena[k])] == current for k in span):
                        # `top` equals an assumption level whose decision is
                        # not in the clause; fall back to a plain backtrack
                        # by one level re-propagating the clause.
                        self._backtrack(len(trail_lim) - 1)
                        self._pending_conflict = conflict
                        continue
                    learned, backjump = self._analyze(conflict)
                    self._backtrack(backjump)
                    if len(learned) == 1:
                        value = self._assign[learned[0]]
                        if value < 0:
                            self._unsat = True
                            return SolveResult(False)
                        if value == 0:
                            self._enqueue(learned[0], NO_REASON)
                    else:
                        ref = self._alloc(learned)
                        self._learned_refs.append(ref)
                        self._cla_act[ref] = 0.0
                        stats.learned += 1
                        self._attach(ref)
                        self._enqueue(learned[0], ref)
                    self._var_inc /= self._var_decay
                    self._cla_inc /= self._cla_decay

                    if (
                        self.conflict_limit is not None
                        and stats.conflicts - conflicts_at_start
                        >= self.conflict_limit
                    ):
                        self.interrupted = True
                        self._backtrack(0)
                        return SolveResult(False)
                    if (
                        conflicts_until_restart is not None
                        and stats.conflicts - conflicts_at_start
                        >= conflicts_until_restart
                    ):
                        restart_count += 1
                        stats.restarts += 1
                        conflicts_until_restart += restart_base * _luby(
                            restart_count + 1
                        )
                        self._backtrack(0)
                    if len(self._learned_refs) > max_learned:
                        self._reduce_db()
                        arena = self._arena
                        max_learned = int(max_learned * 1.3)
                    continue

                # No conflict: assumptions, then decisions.
                if len(trail_lim) < n_assumptions:
                    lit = assumptions[len(trail_lim)]
                    value = self._assign[lit]
                    if value > 0:
                        # Already implied: open an empty level to keep the
                        # level/assumption correspondence simple.
                        trail_lim.append(len(trail))
                        continue
                    if value < 0:
                        core = self._analyze_final(lit, assumptions)
                        self._backtrack(0)
                        return SolveResult(False, core=tuple(core))
                    stats.decisions += 1
                    trail_lim.append(len(trail))
                    self._enqueue(lit, NO_REASON)
                    continue

                if len(trail) == self._nvars:
                    # Total assignment: final propagator checks.
                    ok = True
                    for propagator in self._propagators:
                        keep_going = propagator.check(self)
                        if self._pending_conflict is not None:
                            ok = False
                            break
                        if not keep_going:
                            raise RuntimeError(
                                f"{type(propagator).__name__}.check() returned "
                                f"False without adding a conflicting clause"
                            )
                    if ok:
                        return SolveResult(True)
                    continue  # pending conflict resolved by next _propagate()

                decision = self._decide()
                if decision is None:
                    continue
                stats.decisions += 1
                trail_lim.append(len(trail))
                self._enqueue(decision, NO_REASON)
        finally:
            stats.clause_db_bytes = self.clause_db_bytes()

    def _analyze_final(self, failed: int, assumptions: Sequence[int]) -> List[int]:
        """Compute an unsatisfiable core from a failed assumption."""
        arena = self._arena
        levels = self._levels
        reasons = self._reasons
        assumption_set = set(assumptions)
        core = [failed]
        seen = {abs(failed)}
        queue = [-failed]
        while queue:
            lit = queue.pop()
            ref = reasons[abs(lit)]
            if ref < 0:
                if lit in assumption_set and lit != -failed:
                    core.append(lit)
                continue
            for k in range(ref + 1, ref + 1 + arena[ref]):
                q = arena[k]
                var = abs(q)
                if var not in seen and levels[var] > 0:
                    seen.add(var)
                    queue.append(-q)
        return core

    # ------------------------------------------------------------------
    # Model access and heuristic hooks
    # ------------------------------------------------------------------

    def set_phase(self, var: int, phase: bool) -> None:
        """Set the saved phase of ``var`` (decision polarity hint)."""
        if not 1 <= var <= self._nvars:
            raise ValueError(f"unknown variable {var}")
        self._phase[var] = phase

    def set_initial_activity(self, var: int, activity: float) -> None:
        """Seed the VSIDS activity of ``var`` (decision priority hint)."""
        if not 1 <= var <= self._nvars:
            raise ValueError(f"unknown variable {var}")
        self._activity[var] = activity
        heappush(self._heap, (-activity, var))

    def reset_to_root(self) -> None:
        """Backtrack to decision level 0 (e.g. before adding clauses
        between enumeration steps)."""
        self._backtrack(0)

    def model(self) -> List[int]:
        """The current total assignment as a list of true literals."""
        values = self._values
        return [
            (v if values[v] > 0 else -v)
            for v in range(1, self._nvars + 1)
            if values[v] != 0
        ]

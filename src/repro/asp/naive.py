"""Brute-force answer-set enumeration (test oracle).

Enumerates every subset of the possible atoms and keeps those that are
answer sets.  Exponential — only usable on tiny programs — but written
directly from the semantics, with no code shared with the CDNL stack, so
it serves as an independent oracle for property-based tests.

Supported fragment: normal rules, choice rules with bounds, integrity
constraints, and non-recursive ``#count``/``#sum`` body aggregates (the
same fragment the grounder accepts).  Theory atoms are not supported.

Semantics: ``M`` is an answer set iff

* every rule is *satisfied* by ``M`` (classical reading, with choice
  bounds checked when the body holds), and
* ``M`` equals its *derivation closure*: the least set ``D`` such that a
  normal rule with positive body atoms in ``D`` and negative
  literals/aggregates satisfied w.r.t. ``M`` adds its head, and a choice
  element whose atom is in ``M`` and whose body/condition is derivable
  adds its atom.

For the supported (aggregate-stratified) fragment this coincides with the
FLP answer sets computed by clingo.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.asp import ast
from repro.asp.grounder import (
    GroundAggregate,
    GroundChoice,
    GroundRule,
    GroundTheoryAtom,
    Grounder,
    evaluate_comparison,
)
from repro.asp.parser import parse_program
from repro.asp.syntax import Function, Number

__all__ = ["naive_answer_sets", "is_answer_set"]


def _literal_holds(sign: int, atom: Function, model: Set[Function]) -> bool:
    return (atom in model) != bool(sign)


def _aggregate_value(aggregate: GroundAggregate, model: Set[Function]):
    """Aggregate value under ``model`` (None = empty #min/#max)."""
    weights = []
    for element in aggregate.elements:
        holds = any(
            all(_literal_holds(sign, atom, model) for sign, atom in condition)
            for condition in element.conditions
        )
        if holds:
            weights.append(1 if aggregate.function == "count" else element.weight)
    if aggregate.function == "count" or aggregate.function == "sum":
        return sum(weights)
    if aggregate.function == "min":
        return min(weights) if weights else None
    if aggregate.function == "max":
        return max(weights) if weights else None
    raise NotImplementedError(aggregate.function)


def _aggregate_holds(aggregate: GroundAggregate, model: Set[Function]) -> bool:
    value = _aggregate_value(aggregate, model)
    holds = True
    for guard in (aggregate.left_guard, aggregate.right_guard):
        if guard is None:
            continue
        if value is None:
            # Empty #min is #sup, empty #max is #inf.
            if aggregate.function == "min":
                holds = holds and guard[0] in (">", ">=", "!=")
            else:
                holds = holds and guard[0] in ("<", "<=", "!=")
        else:
            holds = holds and evaluate_comparison(
                guard[0], Number(value), Number(guard[1])
            )
    return holds != bool(aggregate.sign)


def _body_holds(rule: GroundRule, model: Set[Function]) -> bool:
    return all(
        _literal_holds(sign, atom, model) for sign, atom in rule.body
    ) and all(_aggregate_holds(a, model) for a in rule.aggregates)


def _rule_satisfied(rule: GroundRule, model: Set[Function]) -> bool:
    if not _body_holds(rule, model):
        return True
    head = rule.head
    if head is None:
        return False
    if isinstance(head, Function):
        return head in model
    if isinstance(head, GroundChoice):
        count = sum(
            1
            for atom, condition in head.elements
            if atom in model
            and all(_literal_holds(sign, a, model) for sign, a in condition)
        )
        if head.lower is not None and count < head.lower:
            return False
        if head.upper is not None and count > head.upper:
            return False
        return True
    if isinstance(head, GroundTheoryAtom):
        # Theory atoms (incl. desugared #minimize) do not constrain the
        # Boolean answer sets.
        return True
    raise NotImplementedError(f"naive oracle cannot handle head {head!r}")


def _closure(rules: Sequence[GroundRule], model: Set[Function]) -> Set[Function]:
    derived: Set[Function] = set()
    changed = True
    while changed:
        changed = False
        for rule in rules:
            head = rule.head
            if head is None or isinstance(head, GroundTheoryAtom):
                continue
            body_ok = all(
                (atom in derived) if sign == 0 else (atom not in model)
                for sign, atom in rule.body
            ) and all(_aggregate_holds(a, model) for a in rule.aggregates)
            if not body_ok:
                continue
            if isinstance(head, Function):
                if head not in derived:
                    derived.add(head)
                    changed = True
            else:
                for atom, condition in head.elements:
                    if atom in model and atom not in derived:
                        cond_ok = all(
                            (c in derived) if sign == 0 else (c not in model)
                            for sign, c in condition
                        )
                        if cond_ok:
                            derived.add(atom)
                            changed = True
    return derived


def is_answer_set(rules: Sequence[GroundRule], model: Set[Function]) -> bool:
    """Check the stable-model condition for ``model``."""
    if not all(_rule_satisfied(rule, model) for rule in rules):
        return False
    return _closure(rules, model) == model


def naive_answer_sets(text: str, limit: int = 1 << 20) -> List[FrozenSet[Function]]:
    """All answer sets of ``text``, as frozensets of atoms, sorted.

    Raises :class:`ValueError` when the candidate space exceeds ``limit``.
    """
    program = parse_program(text)
    grounder = Grounder(program)
    rules = grounder.ground()
    if any(
        isinstance(rule.head, GroundTheoryAtom)
        and rule.head.name != "__minimize"
        for rule in rules
    ):
        raise NotImplementedError("naive oracle does not support theory atoms")
    facts = sorted(grounder.fact_atoms)
    candidates = sorted(grounder.possible_atoms - grounder.fact_atoms)
    if 2 ** len(candidates) > limit:
        raise ValueError(
            f"{len(candidates)} candidate atoms exceed the enumeration limit"
        )
    answer_sets: List[FrozenSet[Function]] = []
    for mask in itertools.product((False, True), repeat=len(candidates)):
        model = set(facts)
        model.update(atom for atom, bit in zip(candidates, mask) if bit)
        if is_answer_set(rules, model):
            answer_sets.append(frozenset(model))
    answer_sets.sort(key=lambda s: sorted(s))
    return answer_sets

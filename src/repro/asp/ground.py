"""Ground program representation and dependency analysis.

Collects the grounder's output, assigns consecutive ids to atoms, and
computes the *positive dependency graph* used both for tightness analysis
and by the unfounded-set propagator: an edge ``head -> b`` exists when
``b`` occurs positively in the body (or choice-element condition) of a
rule with head ``head``.

A :class:`GroundProgram` is a self-contained, *picklable* artifact: it
carries the ``#show``/``#external`` declarations and the grounding
statistics alongside the rules, so a program ground once can be shipped
to other processes (the parallel DSE workers) or cached and replayed
into fresh :class:`~repro.asp.control.Control` instances without
re-grounding.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.asp.grounder import (
    GroundAggregate,
    GroundChoice,
    GroundingStatistics,
    GroundRule,
    GroundTheoryAtom,
)
from repro.asp.syntax import Function

__all__ = ["GroundProgram"]

Signature = Tuple[str, int]


@dataclass
class GroundProgram:
    """The grounder's output plus the derived atom universe.

    ``shows`` mirrors :attr:`repro.asp.ast.Program.shows` (``None`` when
    the program had no ``#show`` statement); ``externals`` holds the
    ``#external``-declared signatures; ``grounding`` the effort counters
    of the run that produced this program (``None`` for hand-built
    programs, e.g. in unit tests).
    """

    rules: List[GroundRule]
    possible: Set[Function]
    facts: Set[Function]
    shows: Optional[Set[Signature]] = None
    externals: FrozenSet[Signature] = frozenset()
    grounding: Optional[GroundingStatistics] = None

    def __post_init__(self) -> None:
        self._positive_graph: Optional[nx.DiGraph] = None

    # -- serialization -------------------------------------------------------

    def __getstate__(self) -> dict:
        # The dependency graph is a derived cache and can be large;
        # receivers recompute it on demand.
        state = self.__dict__.copy()
        state["_positive_graph"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def to_bytes(self) -> bytes:
        """Serialize once; ship to workers with :meth:`from_bytes`."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_bytes(payload: bytes) -> "GroundProgram":
        program = pickle.loads(payload)
        if not isinstance(program, GroundProgram):
            raise TypeError(
                f"expected a pickled GroundProgram, got {type(program).__name__}"
            )
        return program

    # -- dependency analysis -------------------------------------------------

    def positive_dependency_graph(self) -> nx.DiGraph:
        """The positive atom dependency graph (facts excluded)."""
        if self._positive_graph is not None:
            return self._positive_graph
        graph = nx.DiGraph()
        for atom in sorted(self.possible):
            if atom not in self.facts:
                graph.add_node(atom)
        for rule in self.rules:
            heads = self._head_atoms(rule)
            positives = [
                atom for sign, atom in rule.body if sign == 0 and atom not in self.facts
            ]
            if isinstance(rule.head, GroundChoice):
                for head, condition in rule.head.elements:
                    extra = [
                        atom
                        for sign, atom in condition
                        if sign == 0 and atom not in self.facts
                    ]
                    for body_atom in positives + extra:
                        graph.add_edge(head, body_atom)
            else:
                for head in heads:
                    for body_atom in positives:
                        graph.add_edge(head, body_atom)
        self._positive_graph = graph
        return graph

    @staticmethod
    def _head_atoms(rule: GroundRule) -> List[Function]:
        if isinstance(rule.head, Function):
            return [rule.head]
        if isinstance(rule.head, GroundChoice):
            return [atom for atom, _cond in rule.head.elements]
        return []

    def nontrivial_sccs(self) -> List[FrozenSet[Function]]:
        """SCCs of the positive dependency graph with a real cycle."""
        graph = self.positive_dependency_graph()
        result = []
        for component in nx.strongly_connected_components(graph):
            if len(component) > 1:
                result.append(frozenset(component))
            else:
                (atom,) = component
                if graph.has_edge(atom, atom):
                    result.append(frozenset(component))
        return result

    @property
    def is_tight(self) -> bool:
        """True when the positive dependency graph is acyclic."""
        return not self.nontrivial_sccs()

    # -- misc ------------------------------------------------------------------

    def theory_atoms(self) -> List[GroundTheoryAtom]:
        out = []
        seen = set()
        for rule in self.rules:
            if isinstance(rule.head, GroundTheoryAtom) and rule.head not in seen:
                seen.add(rule.head)
                out.append(rule.head)
        return out

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)

"""CLI: a small clingo-like front-end for the ASP(mT) substrate.

Usage::

    python -m repro.asp program.lp [more.lp ...] [--models N]
    echo "{a;b}. :- a, b." | python -m repro.asp - --models 0
    python -m repro.asp sched.lp --theory          # enable &dom/&sum/&diff
    python -m repro.asp weighted.lp --opt          # run #minimize
    python -m repro.asp lint program.lp --format=json   # static analysis

Prints models clingo-style (``Answer: k`` lines) and a final
SATISFIABLE / UNSATISFIABLE / OPTIMUM FOUND verdict.  The ``lint``
subcommand runs the static analyzer instead (see ``docs/LINT.md``) and
exits non-zero on error-severity diagnostics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.asp.control import Control


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        from repro.analysis.cli import lint_main

        return lint_main(argv[1:])
    parser = argparse.ArgumentParser(prog="repro.asp", description=__doc__)
    parser.add_argument("files", nargs="+", help="program files ('-' for stdin)")
    parser.add_argument(
        "--models", "-n", type=int, default=1, help="models to enumerate (0 = all)"
    )
    parser.add_argument(
        "--theory",
        action="store_true",
        help="register the linear + difference-logic theory propagators",
    )
    parser.add_argument(
        "--opt", action="store_true", help="optimize #minimize statements"
    )
    parser.add_argument(
        "--opt-strategy",
        choices=("bb", "oll"),
        default="bb",
        help="optimization algorithm: branch-and-bound or core-guided",
    )
    parser.add_argument(
        "--budget", type=int, default=None, help="conflict limit per solve"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print solver statistics"
    )
    parser.add_argument(
        "--solver-core",
        choices=("flat", "reference"),
        default=None,
        help="CDNL engine: flat array core (default) or the reference "
        "object core (differential oracle; see docs/SOLVER.md)",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="run the static analyzer before grounding (warnings to stderr)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="enumerate distinct #show projections only",
    )
    parser.add_argument(
        "--const",
        "-c",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="override a #const (repeatable)",
    )
    args = parser.parse_args(argv)

    control = Control(solver_core=args.solver_core)
    control.conflict_limit = args.budget
    for path in args.files:
        text = sys.stdin.read() if path == "-" else open(path).read()
        control.add(text)
    # Overrides come last: for duplicate #const names the last wins.
    for override in args.const:
        name, _, value = override.partition("=")
        if not name or not value:
            parser.error(f"malformed --const {override!r}")
        control.add(f"#const {name} = {value}.")
    if args.theory:
        from repro.theory import DifferenceLogicPropagator, LinearPropagator

        control.register_propagator(LinearPropagator())
        control.register_propagator(DifferenceLogicPropagator())
    control.ground(lint=args.lint)

    if args.opt:
        result = control.optimize(strategy=args.opt_strategy)
        if not result.satisfiable:
            print("UNSATISFIABLE")
            return 1
        print(f"Answer: 1\n{result.model}")
        print(f"Optimization: {' '.join(map(str, result.costs))}")
        print("INTERRUPTED" if result.interrupted else "OPTIMUM FOUND")
        return 0

    count = 0

    def on_model(model) -> None:
        nonlocal count
        count += 1
        print(f"Answer: {count}")
        print(model)
        if model.theory.get("ints"):
            values = " ".join(
                f"{name}={value}"
                for name, value in sorted(
                    model.theory["ints"].items(), key=lambda kv: str(kv[0])
                )
            )
            print(f"Theory: {values}")

    summary = control.solve(
        on_model=on_model, models=args.models, project=args.project
    )
    print("SATISFIABLE" if summary.satisfiable else "UNSATISFIABLE")
    if args.stats:
        stats = control.statistics
        print(
            f"Conflicts: {stats.conflicts}  Decisions: {stats.decisions}  "
            f"Restarts: {stats.restarts}  Learned: {stats.learned}"
        )
        print(
            f"Core: {stats.core}  Propagations: {stats.propagations}  "
            f"Clause DB: {stats.clause_db_bytes} bytes"
        )
        grounding = control.ground_program.grounding
        if grounding is not None:
            print(
                f"Grounding: {control.grounding_seconds:.3f}s  "
                f"Instantiations: {grounding.instantiations}  "
                f"Delta rounds: {grounding.delta_rounds}"
                + ("  (cache hit)" if control.ground_cache_hit else "")
            )
            if grounding.domain_prune:
                print(
                    f"Domains: {grounding.domain_predicates} predicate(s)  "
                    f"Pruned: {grounding.pruned_instances}  "
                    f"Dead rules skipped: {grounding.rules_skipped}  "
                    f"Analysis: {grounding.domain_seconds:.3f}s"
                )
        if control.lint_report is not None:
            report = control.lint_report
            print(
                f"Lint: {control.lint_seconds:.3f}s  "
                f"Errors: {report.errors}  Warnings: {report.warnings}  "
                f"Infos: {report.infos}"
            )
    return 0 if summary.satisfiable else 1


if __name__ == "__main__":
    sys.exit(main())

"""High-level solving facade (mirrors ``clingo.Control``).

Typical use::

    ctl = Control()
    ctl.add('''
        task(t1). task(t2).
        1 { bind(T, r1); bind(T, r2) } 1 :- task(T).
    ''')
    ctl.register_propagator(my_theory)
    ctl.ground()
    result = ctl.solve(on_model=lambda m: print(m.symbols))

Models are enumerated by blocking: after each model a clause excluding
its projection onto the symbolic atoms is added, so the same Boolean
design point is never reported twice (auxiliary and theory variables are
functionally determined and need no blocking).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.asp.completion import Translation, translate
from repro.asp.ground import GroundProgram
from repro.asp.grounder import Grounder, domain_prune_default
from repro.asp.parser import parse_program
from repro.asp.propagator import PropagatorInit, TheoryPropagator
from repro.asp.solver import Solver, SolverStatistics
from repro.asp.syntax import Function, Number
from repro.asp.unfounded import UnfoundedSetPropagator

__all__ = [
    "Control",
    "Model",
    "SolveSummary",
    "ground_text",
    "clear_ground_cache",
    "ground_cache_info",
]


# ---------------------------------------------------------------------------
# Shared ground-program cache
# ---------------------------------------------------------------------------

#: Maximum number of ground programs retained, keyed on program text.
GROUND_CACHE_SIZE = 16

_ground_cache: "OrderedDict[Tuple[str, str], GroundProgram]" = OrderedDict()
_ground_cache_hits = 0
_ground_cache_misses = 0


def clear_ground_cache() -> None:
    """Drop all cached ground programs (tests; memory pressure)."""
    global _ground_cache_hits, _ground_cache_misses
    _ground_cache.clear()
    _ground_cache_hits = 0
    _ground_cache_misses = 0


def ground_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the shared ground-program cache."""
    return {
        "hits": _ground_cache_hits,
        "misses": _ground_cache_misses,
        "size": len(_ground_cache),
        "maxsize": GROUND_CACHE_SIZE,
    }


def _ground_text_cached(
    text: str, cache: bool, mode: str, domain_prune: Optional[bool] = None
) -> Tuple[GroundProgram, bool]:
    """Ground ``text`` into a :class:`GroundProgram`; returns (program, hit).

    The LRU is keyed on the exact program text (plus grounding mode and
    the effective domain-prune flag — outputs are identical either way,
    but the attached statistics are not), so repeated
    ``explore()``/``Control`` runs over the same instance —
    benchmark repetitions, parallel workers on one machine, test
    fixtures — instantiate it once.  Sharing is safe because nothing
    downstream mutates a :class:`GroundProgram` (the translator only
    reads it; the dependency-graph cache is idempotent).
    """
    global _ground_cache_hits, _ground_cache_misses
    if domain_prune is None:
        domain_prune = domain_prune_default()
    key = (mode, bool(domain_prune), text)
    if cache:
        program = _ground_cache.get(key)
        if program is not None:
            _ground_cache.move_to_end(key)
            _ground_cache_hits += 1
            return program, True
        _ground_cache_misses += 1
    parsed = parse_program(text)
    grounder = Grounder(parsed, mode=mode, domain_prune=domain_prune)
    rules = grounder.ground()
    program = GroundProgram(
        rules,
        grounder.possible_atoms,
        grounder.fact_atoms,
        shows=parsed.shows,
        externals=frozenset(parsed.externals),
        grounding=grounder.statistics,
    )
    if cache:
        _ground_cache[key] = program
        while len(_ground_cache) > GROUND_CACHE_SIZE:
            _ground_cache.popitem(last=False)
    return program, False


def ground_text(
    text: str,
    cache: bool = True,
    mode: str = "seminaive",
    domain_prune: Optional[bool] = None,
) -> GroundProgram:
    """Ground program ``text`` into a reusable :class:`GroundProgram`.

    The resulting artifact is picklable (``to_bytes``/``from_bytes``)
    and can be passed to :meth:`Control.ground` — or shipped to another
    process — to skip instantiation entirely.  ``domain_prune`` opts
    in/out of abstract-domain join pruning (``None`` follows the
    ``REPRO_DOMAIN_PRUNE`` environment default).
    """
    program, _hit = _ground_text_cached(text, cache, mode, domain_prune)
    return program


@dataclass
class Model:
    """A snapshot of one answer set.

    ``symbols`` holds the true symbolic atoms; ``theory`` holds values
    snapshotted from theory propagators (e.g. ``{"start": {...},
    "objectives": (...)}`` — keys are propagator-defined).
    """

    number: int
    symbols: Tuple[Function, ...]
    theory: Dict[str, object] = field(default_factory=dict)

    def contains(self, atom: Function) -> bool:
        return atom in self._symbol_set

    def __post_init__(self) -> None:
        self._symbol_set = set(self.symbols)

    def atoms_of(self, name: str, arity: int) -> List[Function]:
        """True atoms with the given predicate name/arity."""
        return [s for s in self.symbols if s.signature == (name, arity)]

    def __str__(self) -> str:
        return " ".join(str(s) for s in self.symbols)


@dataclass
class OptimizeResult:
    """Result of :meth:`Control.optimize` (lexicographic ``#minimize``)."""

    satisfiable: bool
    #: Cost per priority level, highest priority first.
    costs: Tuple[int, ...] = ()
    model: Optional[Model] = None
    interrupted: bool = False

    def __bool__(self) -> bool:
        return self.satisfiable


@dataclass
class SolveSummary:
    """Result of a :meth:`Control.solve` call."""

    satisfiable: bool
    exhausted: bool
    models: int
    interrupted: bool = False

    def __bool__(self) -> bool:
        return self.satisfiable


class Control:
    """Grounder + translator + solver with theory propagators."""

    def __init__(self, solver_core: Optional[str] = None) -> None:
        if solver_core is None:
            solver_core = os.environ.get("REPRO_SOLVER_CORE", "flat")
        if solver_core not in ("flat", "reference"):
            raise ValueError(
                f"unknown solver core {solver_core!r} "
                f"(expected 'flat' or 'reference')"
            )
        #: Which CDNL engine backs this Control: ``"flat"`` (the
        #: array-based core, default) or ``"reference"`` (the object
        #: core, kept as a differential oracle — same pattern as the
        #: grounder's ``mode="naive"``).  Overridable per process with
        #: the ``REPRO_SOLVER_CORE`` environment variable.
        self.solver_core = solver_core
        self._parts: List[str] = []
        self._propagators: List[TheoryPropagator] = []
        self._solver: Optional[Solver] = None
        self._translation: Optional[Translation] = None
        self._ground_program: Optional[GroundProgram] = None
        self._model_count = 0
        self._shows: Optional[set] = None
        self._external_signatures: set = set()
        #: Per-atom truth assignment of #external atoms (None = free);
        #: unlisted external atoms default to false, as in clingo.
        self._external_values: Dict[Function, Optional[bool]] = {}
        #: Conflict budget per solve() call (None = unlimited).
        self.conflict_limit: Optional[int] = None
        #: Grounding observability: how many times this Control actually
        #: instantiated a program (0 when a cached or shipped artifact
        #: was reused), whether the shared cache answered, and the wall
        #: seconds spent instantiating in this process.
        self.grounds = 0
        self.ground_cache_hit = False
        self.grounding_seconds = 0.0
        #: Lint observability: the report of the last ``ground(lint=...)``
        #: run (None when linting was off) and the wall seconds it took.
        self.lint_report = None
        self.lint_seconds = 0.0

    # -- program construction ---------------------------------------------------

    def add(self, text: str) -> None:
        """Append program text (callable multiple times before ground())."""
        if self._translation is not None:
            raise RuntimeError("cannot add program text after ground()")
        self._parts.append(text)

    def register_propagator(self, propagator: TheoryPropagator) -> None:
        if self._translation is not None:
            raise RuntimeError("register propagators before ground()")
        self._propagators.append(propagator)

    def ground(
        self,
        program: Optional[GroundProgram] = None,
        cache: bool = True,
        mode: str = "seminaive",
        lint: object = False,
        domain_prune: Optional[bool] = None,
    ) -> None:
        """Instantiate and translate the program.

        By default the accumulated text is parsed and ground through the
        shared :func:`ground_text` LRU (``cache=False`` opts out).
        Passing a pre-ground ``program`` — e.g. an artifact shipped from
        another process — skips parsing and instantiation entirely and
        takes its ``#show``/``#external`` declarations from the artifact;
        any text added via :meth:`add` is ignored in that case.

        ``lint`` opts into the static analyzer (:mod:`repro.analysis`)
        over the accumulated text before grounding: ``True`` surfaces
        error/warning diagnostics as Python warnings, ``"raise"`` raises
        :class:`repro.analysis.LintError` on error-severity findings.
        The report lands in :attr:`lint_report`/:attr:`lint_seconds`
        either way.  Ignored when a pre-ground ``program`` is passed.
        """
        if self._translation is not None:
            raise RuntimeError(
                "ground() was already called; build a fresh Control "
                "(multi-shot grounding is not supported)"
            )
        if program is None:
            text = "\n".join(self._parts)
            if lint:
                self._lint(text, lint)
            program, hit = _ground_text_cached(text, cache, mode, domain_prune)
            self.ground_cache_hit = hit
            if not hit:
                self.grounds += 1
                if program.grounding is not None:
                    self.grounding_seconds += program.grounding.seconds
        self._shows = program.shows
        self._external_signatures = set(program.externals)
        self._ground_program = program
        if self.solver_core == "flat":
            from repro.asp.flatsolver import FlatSolver

            solver = FlatSolver()
        else:
            solver = Solver()
        self._translation = translate(self._ground_program, solver)
        self._solver = solver
        if not self._ground_program.is_tight:
            solver.register_propagator(UnfoundedSetPropagator(self._translation))
        init = PropagatorInit(solver, self._translation)
        for propagator in self._propagators:
            # Register first: init() typically adds watches, which require
            # the propagator to be known to the solver.
            solver.register_propagator(propagator)
            propagator.init(init)

    def _lint(self, text: str, lint: object) -> None:
        """Run the static analyzer over ``text`` (the ``lint=`` hook)."""
        import warnings as _warnings

        from repro.analysis import LintError, Severity, lint_text

        report = lint_text(text, filename="<control>")
        self.lint_report = report
        self.lint_seconds += report.seconds
        if lint == "raise":
            if report.errors:
                raise LintError(report)
            return
        for diagnostic in report.diagnostics:
            if diagnostic.severity is not Severity.INFO:
                _warnings.warn(str(diagnostic), stacklevel=3)

    # -- introspection ------------------------------------------------------------

    @property
    def translation(self) -> Translation:
        if self._translation is None:
            raise RuntimeError("ground() has not been called")
        return self._translation

    @property
    def ground_program(self) -> GroundProgram:
        if self._ground_program is None:
            raise RuntimeError("ground() has not been called")
        return self._ground_program

    @property
    def solver(self) -> Solver:
        if self._solver is None:
            raise RuntimeError("ground() has not been called")
        return self._solver

    @property
    def statistics(self) -> SolverStatistics:
        return self.solver.stats

    # -- solving ---------------------------------------------------------------

    def solve(
        self,
        on_model: Optional[Callable[[Model], Optional[bool]]] = None,
        models: int = 1,
        assumptions: Sequence[Tuple[Function, bool]] = (),
        block: bool = True,
        assumption_literals: Sequence[int] = (),
        project: bool = False,
    ) -> SolveSummary:
        """Enumerate up to ``models`` answer sets (0 = all).

        ``on_model`` is called with each :class:`Model` while the solver
        assignment is still total (theory propagators can be queried); a
        ``False`` return stops the enumeration early.  Blocking clauses
        are added between models, so repeated ``solve`` calls continue the
        enumeration rather than repeating models; pass ``block=False``
        when a registered propagator excludes found models itself (as the
        DSE dominance propagator does).

        ``project=True`` blocks on the ``#show``-projected atoms only, so
        each distinct *projection* is enumerated exactly once (clingo's
        ``--project``); requires at least one ``#show`` statement.
        """
        if project and self._shows is None:
            raise ValueError("project=True requires #show statements")
        solver = self.solver
        solver.conflict_limit = self.conflict_limit
        assumption_lits = [
            self.translation.atom_lit(atom) * (1 if truth else -1)
            for atom, truth in assumptions
        ]
        assumption_lits.extend(assumption_literals)
        assumption_lits.extend(self._external_assumptions())
        found = 0
        while True:
            result = solver.solve(assumption_lits)
            if not result.satisfiable:
                return SolveSummary(
                    satisfiable=found > 0,
                    exhausted=not solver.interrupted,
                    models=found,
                    interrupted=solver.interrupted,
                )
            self._model_count += 1
            found += 1
            model = self._snapshot_model()
            keep_going = True
            if on_model is not None:
                keep_going = on_model(model) is not False
            if block:
                blocking = self._blocking_clause(project)
                solver.reset_to_root()
                blocked = solver.add_clause(blocking)
            else:
                solver.reset_to_root()
                blocked = True
            if not keep_going or (models and found >= models):
                return SolveSummary(
                    satisfiable=True,
                    exhausted=not blocked,
                    models=found,
                )
            if not blocked:
                return SolveSummary(satisfiable=True, exhausted=True, models=found)

    # -- externals ---------------------------------------------------------------

    def external_atoms(self) -> List[Function]:
        """All ground atoms of ``#external``-declared signatures."""
        return sorted(
            atom
            for atom in self.translation.atom_vars
            if atom.signature in self._external_signatures
        )

    def assign_external(self, atom: Function, value: Optional[bool]) -> None:
        """Pin an ``#external`` atom to true/false, or free it (None).

        Unassigned external atoms are false by default (clingo
        semantics); freed atoms are enumerated like choice atoms.
        """
        if atom.signature not in self._external_signatures:
            raise ValueError(f"{atom} was not declared #external")
        if value is None:
            self._external_values.pop(atom, None)
            self._external_values[atom] = None
        else:
            self._external_values[atom] = value

    def _external_assumptions(self) -> List[int]:
        lits: List[int] = []
        for atom in self.external_atoms():
            value = self._external_values.get(atom, False)
            if value is None:
                continue  # freed: both truth values enumerable
            lit = self.translation.atom_lit(atom)
            lits.append(lit if value else -lit)
        return lits

    def consequences(self, mode: str = "brave") -> Optional[List[Function]]:
        """Brave or cautious consequences (clingo's ``--enum-mode``).

        * brave — atoms true in *some* answer set,
        * cautious — atoms true in *every* answer set.

        Returns ``None`` when the program is unsatisfiable.  Computed by
        iterative strengthening: after each model, a clause requires the
        next model to differ in the relevant direction, so the number of
        solver calls is bounded by the number of atoms (not models).

        Like model enumeration, the strengthening clauses persist — use a
        fresh :class:`Control` for further solving afterwards.
        """
        if mode not in ("brave", "cautious"):
            raise ValueError(f"unknown consequence mode {mode!r}")
        solver = self.solver
        solver.conflict_limit = self.conflict_limit
        translation = self.translation
        result = solver.solve()
        if not result.satisfiable:
            return None
        atom_vars = dict(translation.atom_vars)
        if mode == "brave":
            # Grow the set of atoms seen true; ask for a model adding one.
            seen = {
                atom for atom, var in atom_vars.items() if solver.value(var) is True
            }
            while True:
                missing = [var for atom, var in atom_vars.items() if atom not in seen]
                if not missing:
                    break
                solver.reset_to_root()
                if not solver.add_clause(missing):
                    break
                result = solver.solve()
                if not result.satisfiable:
                    break
                seen |= {
                    atom
                    for atom, var in atom_vars.items()
                    if atom not in seen and solver.value(var) is True
                }
            return sorted(seen | set(translation.program.facts))
        # Cautious: shrink the candidate set; ask for a model dropping one.
        candidates = {
            atom for atom, var in atom_vars.items() if solver.value(var) is True
        }
        while True:
            if not candidates:
                break
            solver.reset_to_root()
            clause = [-atom_vars[atom] for atom in candidates]
            if not solver.add_clause(clause):
                break
            result = solver.solve()
            if not result.satisfiable:
                break
            candidates = {
                atom for atom in candidates if solver.value(atom_vars[atom]) is True
            }
        return sorted(candidates | set(translation.program.facts))

    # -- optimization (#minimize / #maximize) -----------------------------------

    def minimize_terms(self) -> Dict[int, List[Tuple[int, int]]]:
        """Ground ``#minimize`` terms: priority -> [(weight, literal)].

        Term tuples have set semantics per priority (duplicates collapse,
        mirroring clingo); conditions become auxiliary conjunction
        literals.
        """
        translation = self.translation
        solver = self.solver
        # Set semantics per (priority, term tuple): the tuple's weight
        # counts once, iff *any* of its condition instances holds.
        groups: Dict[Tuple[int, Tuple], Tuple[int, List[int]]] = {}
        priorities_seen: set = set()
        for atom, _var in translation.theory_vars.items():
            if atom.name != "__minimize":
                continue
            priority_symbol = atom.arguments[0]
            if not isinstance(priority_symbol, Number):
                raise ValueError(f"#minimize priority must be an integer: {atom}")
            priority = priority_symbol.value
            priorities_seen.add(priority)
            for terms, condition in atom.elements:
                weight = terms[0]
                if not isinstance(weight, Number):
                    raise ValueError(f"#minimize weight must be an integer: {atom}")
                lits = []
                dropped = False
                for sign, cond_atom in condition:
                    lit = translation.atom_lit(cond_atom)
                    lit = -lit if sign else lit
                    if lit == -translation.true_lit:
                        dropped = True
                        break
                    if lit != translation.true_lit:
                        lits.append(lit)
                if dropped:
                    continue
                if not lits:
                    cond_lit = translation.true_lit
                elif len(lits) == 1:
                    cond_lit = lits[0]
                else:
                    cond_lit = solver.new_var()
                    for lit in lits:
                        solver.add_clause([-cond_lit, lit])
                    solver.add_clause([cond_lit] + [-lit for lit in lits])
                key = (priority, tuple(terms))
                weight_value, conditions = groups.setdefault(key, (weight.value, []))
                conditions.append(cond_lit)
        # Levels whose elements all vanished at grounding still exist
        # (their cost is constantly 0), mirroring clingo's output.
        by_priority: Dict[int, List[Tuple[int, int]]] = {
            priority: [] for priority in priorities_seen
        }
        for (priority, _terms), (weight, conditions) in groups.items():
            unique = list(dict.fromkeys(conditions))
            if translation.true_lit in unique:
                tuple_lit = translation.true_lit
            elif len(unique) == 1:
                tuple_lit = unique[0]
            else:
                tuple_lit = solver.new_var()
                for lit in unique:
                    solver.add_clause([tuple_lit, -lit])
                solver.add_clause([-tuple_lit] + unique)
            by_priority.setdefault(priority, []).append((weight, tuple_lit))
        return by_priority

    def optimize(self, strategy: str = "bb") -> OptimizeResult:
        """Lexicographic optimization of the ``#minimize`` statements.

        Two strategies, both exact (mirroring clasp's ``--opt-strategy``):

        * ``"bb"`` — model-improving branch and bound: after each model,
          a BDD-compiled pseudo-Boolean indicator ``sum >= incumbent`` is
          *assumed* negatively, so proving optimality never poisons the
          solver state;
        * ``"oll"`` — unsatisfiability-core guided (the OLL algorithm of
          Andres et al. 2012): assume every weighted literal false,
          extract cores, and relax them through cardinality outputs until
          the first model — which is then optimal.

        The optimum of each priority level is asserted permanently before
        the next level is minimized.
        """
        from repro.asp.completion import PseudoBooleanBuilder

        if strategy not in ("bb", "oll"):
            raise ValueError(f"unknown optimization strategy {strategy!r}")
        by_priority = self.minimize_terms()
        if not by_priority:
            raise ValueError("the program has no #minimize/#maximize statements")
        solver = self.solver
        solver.conflict_limit = self.conflict_limit
        translation = self.translation
        builder = PseudoBooleanBuilder(solver, translation.true_lit)
        best_model: Optional[Model] = None
        costs: List[int] = []

        result = solver.solve()
        if solver.interrupted:
            return OptimizeResult(False, interrupted=True)
        if not result.satisfiable:
            return OptimizeResult(False)

        for priority in sorted(by_priority, reverse=True):
            offset, positive = self._normalize_terms(by_priority[priority])
            if strategy == "bb":
                incumbent = self._minimize_level_bb(builder, offset, positive)
            else:
                incumbent = self._minimize_level_oll(builder, offset, positive)
            if incumbent is None:
                return OptimizeResult(
                    True, tuple(costs), best_model, interrupted=True
                )
            costs.append(incumbent)
            # Freeze this level at its optimum for the remaining levels.
            solver.reset_to_root()
            target = incumbent - offset
            if positive:
                if target > 0:
                    solver.add_clause([builder.geq(positive, target)])
                solver.add_clause([-builder.geq(positive, target + 1)])
            # Re-establish a model satisfying the frozen bounds (always
            # possible — the optimum was achieved by some model).
            result = solver.solve()
            if solver.interrupted or not result.satisfiable:
                return OptimizeResult(
                    True, tuple(costs), best_model, interrupted=True
                )
            best_model = self._snapshot_model()
        return OptimizeResult(True, tuple(costs), best_model)

    def _normalize_terms(
        self, terms: List[Tuple[int, int]]
    ) -> Tuple[int, List[Tuple[int, int]]]:
        """Fold constants/negative weights into an offset + positive terms."""
        translation = self.translation
        offset = 0
        positive: List[Tuple[int, int]] = []
        for weight, lit in terms:
            if lit == translation.true_lit:
                offset += weight
            elif weight < 0:
                offset += weight
                positive.append((-weight, -lit))
            elif weight > 0:
                positive.append((weight, lit))
        return offset, positive

    def _minimize_level_bb(
        self, builder, offset: int, positive: List[Tuple[int, int]]
    ) -> Optional[int]:
        """Branch-and-bound descent; assumes the solver is currently SAT
        with a total assignment.  Returns the optimum or None on budget."""
        solver = self.solver

        def current_sum() -> int:
            return offset + sum(w for w, l in positive if solver.value(l) is True)

        incumbent = current_sum()
        while True:
            target = incumbent - offset
            if target <= 0:
                return incumbent
            solver.reset_to_root()
            indicator = builder.geq(positive, target)
            result = solver.solve([-indicator])
            if solver.interrupted:
                return None
            if not result.satisfiable:
                return incumbent
            incumbent = current_sum()

    def _minimize_level_oll(
        self,
        builder,
        offset: int,
        positive: List[Tuple[int, int]],
        shrink_cores: bool = True,
    ) -> Optional[int]:
        """Unsatisfiability-core guided minimization (OLL).

        Soft claims are "this weighted literal is false"; every core of
        soft claims raises the lower bound by its minimum weight and is
        relaxed through cardinality outputs (``>= k`` indicators) that
        become new soft claims.  The first satisfiable call is optimal.
        Cores are optionally shrunk by deletion filtering (each literal
        is dropped if the rest stays unsatisfiable) — smaller cores mean
        fewer, cheaper cardinality outputs.
        """
        solver = self.solver
        weights: Dict[int, int] = {}
        for weight, lit in positive:
            weights[lit] = weights.get(lit, 0) + weight
        lower = 0
        while True:
            solver.reset_to_root()
            assumptions = [-lit for lit in sorted(weights)]
            result = solver.solve(assumptions)
            if solver.interrupted:
                return None
            if result.satisfiable:
                return offset + lower
            core_costs = [-a for a in result.core]
            if not core_costs:
                raise RuntimeError(
                    "hard unsatisfiability during OLL descent (level "
                    "freezing should have prevented this)"
                )
            if shrink_cores and len(core_costs) > 1:
                core_costs = self._shrink_core(core_costs)
            w_min = min(weights[lit] for lit in core_costs)
            lower += w_min
            for lit in core_costs:
                weights[lit] -= w_min
                if not weights[lit]:
                    del weights[lit]
            # At least one of the core's literals is true in every model.
            solver.reset_to_root()
            solver.add_clause(core_costs)
            # Cardinality outputs: pay w_min for each *additional* true one.
            if len(core_costs) > 1:
                terms = [(1, lit) for lit in core_costs]
                for k in range(2, len(core_costs) + 1):
                    indicator = builder.geq(terms, k)
                    weights[indicator] = weights.get(indicator, 0) + w_min

    def _shrink_core(self, core_costs: List[int]) -> List[int]:
        """Deletion-based core minimization.

        Tries to drop each cost literal: if assuming the remaining
        literals false is still UNSAT, the dropped one was unnecessary.
        The result is a (not necessarily minimum) irreducible core.
        """
        solver = self.solver
        kept = list(core_costs)
        index = 0
        while index < len(kept):
            candidate = kept[:index] + kept[index + 1 :]
            if not candidate:
                break
            solver.reset_to_root()
            result = solver.solve([-lit for lit in candidate])
            if solver.interrupted:
                break
            if result.satisfiable:
                index += 1  # literal is needed
            else:
                kept = candidate  # dropped; retry same index
        return kept

    def _snapshot_model(self) -> Model:
        translation = self.translation
        symbols = tuple(translation.symbols_of_model())
        if self._shows is not None:
            symbols = tuple(s for s in symbols if s.signature in self._shows)
        theory: Dict[str, object] = {}
        for propagator in self._propagators:
            theory.update(propagator.model_values(self.solver))
        return Model(self._model_count, symbols, theory)

    def _blocking_clause(self, project: bool = False) -> List[int]:
        solver = self.solver
        clause = []
        for atom, var in self.translation.atom_vars.items():
            if project and atom.signature not in (self._shows or ()):
                continue
            clause.append(-var if solver.value(var) is True else var)
        return clause

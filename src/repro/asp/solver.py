"""Conflict-driven nogood-learning (CDNL) solver core.

A MiniSat-style CDCL engine extended with the propagator interface the
ASPmT stack needs (mirroring clasp/clingo):

* two-watched-literal unit propagation,
* first-UIP conflict analysis with recursive clause minimization,
* VSIDS variable activities, phase saving, Luby restarts,
* learned-clause database reduction,
* assumption-based incremental solving with core extraction,
* *propagators*: external objects that watch literals, get told about
  assignments at propagation fixpoints, may add clauses at any decision
  level (lazy clause generation), and are consulted before a total
  assignment is accepted as a model.

Literals are non-zero integers: ``+v`` means variable ``v`` is true,
``-v`` that it is false.  Variable 0 is unused.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Clause", "Solver", "SolveResult", "PropagatorBase"]


class Clause:
    """A clause; the first two literals are the watched ones."""

    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: List[int], learned: bool = False):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0

    def __repr__(self) -> str:
        return f"Clause({self.lits}, learned={self.learned})"


@dataclass
class SolveResult:
    """Outcome of a :meth:`Solver.solve` call."""

    satisfiable: bool
    #: For unsatisfiable results under assumptions: a subset of the
    #: assumptions sufficient for unsatisfiability.
    core: Tuple[int, ...] = ()

    def __bool__(self) -> bool:
        return self.satisfiable


class PropagatorBase:
    """Base class for propagators (theory, unfounded-set, dominance).

    Subclasses override any of the hooks; all have default no-op
    implementations so simple propagators stay small.  The ``solver``
    argument gives access to the assignment (:meth:`Solver.value`,
    :attr:`Solver.decision_level`) and to clause addition
    (:meth:`Solver.add_propagator_clause`).
    """

    def on_attach(self, solver: "Solver") -> None:
        """Called when the propagator is registered."""

    def propagate(self, solver: "Solver", changes: Sequence[int]) -> bool:
        """Called at propagation fixpoints with newly-true watched literals.

        Return ``False`` if a conflict was produced via
        :meth:`Solver.add_propagator_clause` (the solver then resolves it).
        """
        return True

    def undo(self, solver: "Solver", level: int) -> None:
        """Roll internal state back so it reflects the end of ``level``."""

    def check(self, solver: "Solver") -> bool:
        """Called on total assignments; return ``False`` on conflict."""
        return True


@dataclass
class SolverStatistics:
    """Search statistics, exposed by the benchmarks."""

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned: int = 0
    deleted: int = 0
    propagator_clauses: int = 0
    #: Wall seconds spent in two-watched-literal unit propagation.
    time_boolean: float = 0.0
    #: Wall seconds spent inside propagator callbacks (theory fixpoints).
    time_theory: float = 0.0
    #: Bytes held by the clause store at the end of the last solve call
    #: (the arena size for the flat core; an arena-equivalent estimate
    #: for the reference core, so the two are directly comparable).
    clause_db_bytes: int = 0
    #: Which engine produced these statistics ("reference" or "flat").
    core: str = "reference"


def _luby(i: int) -> int:
    """The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 ..."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


class Solver:
    """The CDCL engine."""

    def __init__(self) -> None:
        self._nvars = 0
        # Indexed by variable (1-based).
        self._values: List[int] = [0]  # 0 unassigned, 1 true, -1 false
        self._levels: List[int] = [0]
        self._reasons: List[Optional[Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._trail_pos: List[int] = [0]
        # Indexed by literal code (2v for +v, 2v+1 for -v).
        self._watches: List[List[Clause]] = [[], []]
        self._prop_watches: List[List[int]] = [[], []]

        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0

        self._clauses: List[Clause] = []
        self._learned: List[Clause] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._unsat = False

        self._propagators: List[PropagatorBase] = []
        self._prop_buffers: List[List[int]] = []
        self._pending_conflict: Optional[Clause] = None

        self.stats = SolverStatistics()
        #: Optional hard budget on conflicts for a single solve() call
        #: (None = unlimited).  Used by the benchmark harness.
        self.conflict_limit: Optional[int] = None
        #: Conflicts per Luby restart unit (None disables restarts).
        self.restart_base: Optional[int] = 100
        #: When False, decisions ignore saved phases (always negative).
        self.phase_saving: bool = True
        #: Learned-clause budget before database reduction kicks in.
        self.max_learned_base: int = 4000
        #: Set to True when the last solve() stopped on the conflict limit.
        self.interrupted = False

        self._seen: List[bool] = [False]
        self._order_heap: List[Tuple[float, int]] = []
        # Arena-equivalent int slots held by _clauses + _learned, kept
        # incrementally for clause_db_bytes().
        self._db_ints = 0

    # ------------------------------------------------------------------
    # Variables and clauses
    # ------------------------------------------------------------------

    def new_var(self, phase: bool = False) -> int:
        """Create a fresh variable; returns its (positive) index."""
        self._nvars += 1
        v = self._nvars
        self._values.append(0)
        self._levels.append(0)
        self._reasons.append(None)
        self._activity.append(0.0)
        self._phase.append(phase)
        self._trail_pos.append(0)
        self._watches.extend(([], []))
        self._prop_watches.extend(([], []))
        self._seen.append(False)
        heapq.heappush(self._order_heap, (0.0, v))
        return v

    @property
    def num_vars(self) -> int:
        return self._nvars

    @staticmethod
    def _code(lit: int) -> int:
        return (lit << 1) if lit > 0 else ((-lit) << 1) | 1

    def value(self, lit: int) -> Optional[bool]:
        """Current truth value of ``lit`` (None if unassigned)."""
        v = self._values[abs(lit)]
        if v == 0:
            return None
        return (v > 0) == (lit > 0)

    def level(self, lit: int) -> int:
        """Decision level at which ``lit``'s variable was assigned."""
        return self._levels[abs(lit)]

    @property
    def decision_level(self) -> int:
        return len(self._trail_lim)

    @property
    def trail(self) -> Sequence[int]:
        """The assignment trail (true literals in assignment order)."""
        return self._trail

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause at decision level 0 (outside of search).

        Returns ``False`` if the solver became permanently unsatisfiable.
        """
        assert self.decision_level == 0, "use add_propagator_clause during search"
        if self._unsat:
            return False
        seen: Set[int] = set()
        out: List[int] = []
        for lit in lits:
            if lit == 0 or abs(lit) > self._nvars:
                raise ValueError(f"invalid literal {lit}")
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            value = self.value(lit)
            if value is True:
                return True  # satisfied at level 0
            if value is False:
                continue  # drop false literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self._unsat = True
            return False
        if len(out) == 1:
            self._enqueue(out[0], None)
            conflict = self._propagate_boolean()
            if conflict is not None:
                self._unsat = True
                return False
            return True
        clause = Clause(out)
        self._clauses.append(clause)
        self._db_ints += len(out) + 1
        self._attach(clause)
        return True

    def _attach(self, clause: Clause) -> None:
        self._watches[self._code(-clause.lits[0])].append(clause)
        self._watches[self._code(-clause.lits[1])].append(clause)

    # ------------------------------------------------------------------
    # Propagators
    # ------------------------------------------------------------------

    def register_propagator(self, propagator: PropagatorBase) -> None:
        self._propagators.append(propagator)
        self._prop_buffers.append([])
        propagator.on_attach(self)

    def add_propagator_watch(self, lit: int, propagator: PropagatorBase) -> None:
        """Have ``propagator`` be told when ``lit`` becomes true."""
        index = self._propagators.index(propagator)
        self._prop_watches[self._code(lit)].append(index)
        # Deliver an already-true watch immediately so no event is missed.
        if self.value(lit) is True:
            self._prop_buffers[index].append(lit)

    def requeue_watch(self, lit: int, propagator: PropagatorBase) -> None:
        """Re-deliver a true watched literal to ``propagator``.

        Used by drivers whose pruning state changes *between* solve calls
        (e.g. the DSE archive grows): re-queuing a root-level literal
        forces the propagator to re-evaluate at the next fixpoint.
        """
        index = self._propagators.index(propagator)
        if self.value(lit) is True:
            self._prop_buffers[index].append(lit)

    def add_propagator_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause during search (lazy clause generation).

        May be called at any decision level.  Returns ``False`` when the
        clause is conflicting under the current assignment; the solver
        will resolve the conflict when the propagation round returns.
        """
        self.stats.propagator_clauses += 1
        lits = list(dict.fromkeys(lits))
        if any(-lit in lits for lit in lits):
            return True  # tautology
        for lit in lits:
            if lit == 0 or abs(lit) > self._nvars:
                raise ValueError(f"invalid literal {lit}")
        if any(self.value(lit) is True and self.level(lit) == 0 for lit in lits):
            return True  # satisfied forever
        lits = [lit for lit in lits if not (self.value(lit) is False and self.level(lit) == 0)]
        if not lits:
            self._pending_conflict = Clause([], learned=True)
            return False

        def sort_key(lit: int) -> Tuple[int, int]:
            value = self.value(lit)
            if value is None:
                return (2, 0)
            if value is True:
                return (3, self.level(lit))
            return (1, self.level(lit))  # false: later levels first

        lits.sort(key=sort_key, reverse=True)
        clause = Clause(lits, learned=True)
        if len(lits) == 1:
            lit = lits[0]
            value = self.value(lit)
            if value is True:
                return True
            if value is False:
                self._pending_conflict = clause
                return False
            # Unit: enqueue at the current level with this clause as reason.
            self._enqueue(lit, clause)
            return True
        self._learned.append(clause)
        self._db_ints += len(lits) + 1
        self._attach(clause)
        first, second = lits[0], lits[1]
        value_first = self.value(first)
        if value_first is False:
            # All literals false: conflicting.
            self._pending_conflict = clause
            return False
        if self.value(second) is False and value_first is None:
            # Unit under current assignment.
            self._enqueue(first, clause)
        return True

    # ------------------------------------------------------------------
    # Assignment and propagation
    # ------------------------------------------------------------------

    def _enqueue(self, lit: int, reason: Optional[Clause]) -> None:
        var = abs(lit)
        assert self._values[var] == 0
        self._values[var] = 1 if lit > 0 else -1
        self._levels[var] = self.decision_level
        self._reasons[var] = reason
        self._trail_pos[var] = len(self._trail)
        self._trail.append(lit)
        self._phase[var] = lit > 0
        self.stats.propagations += 1

    def _propagate_boolean(self) -> Optional[Clause]:
        """Unit propagation to fixpoint; returns a conflicting clause or None.

        Hot loop: truth tests use the values array directly
        (``values[var] * sign``: > 0 true, < 0 false, 0 unassigned).
        """
        values = self._values
        watches = self._watches
        trail = self._trail
        prop_watches = self._prop_watches
        prop_buffers = self._prop_buffers
        while self._qhead < len(trail):
            lit = trail[self._qhead]
            self._qhead += 1
            code = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
            # Feed propagator buffers.
            for index in prop_watches[code]:
                prop_buffers[index].append(lit)
            watch_list = watches[code]
            i = 0
            j = 0
            n = len(watch_list)
            conflict: Optional[Clause] = None
            false_lit = -lit
            while i < n:
                clause = watch_list[i]
                i += 1
                lits = clause.lits
                # Ensure the falsified literal is at position 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                first_val = values[first] if first > 0 else -values[-first]
                if first_val > 0:
                    watch_list[j] = clause
                    j += 1
                    continue
                # Look for a replacement watch (a non-false literal).
                found = False
                for k in range(2, len(lits)):
                    other = lits[k]
                    other_val = values[other] if other > 0 else -values[-other]
                    if other_val >= 0:
                        lits[1], lits[k] = other, lits[1]
                        neg = -other
                        neg_code = (neg << 1) if neg > 0 else ((-neg) << 1) | 1
                        watches[neg_code].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                watch_list[j] = clause
                j += 1
                if first_val < 0:
                    conflict = clause
                    # Copy remaining watches back.
                    while i < n:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                else:
                    self._enqueue(first, clause)
            del watch_list[j:]
            if conflict is not None:
                return conflict
        return None

    def _propagate(self) -> Optional[Clause]:
        """Full propagation fixpoint: unit propagation plus propagators."""
        stats = self.stats
        while True:
            started = perf_counter()
            conflict = self._propagate_boolean()
            stats.time_boolean += perf_counter() - started
            if conflict is not None:
                return conflict
            if self._pending_conflict is not None:
                conflict = self._pending_conflict
                self._pending_conflict = None
                return conflict
            progressed = False
            for index, propagator in enumerate(self._propagators):
                buffer = self._prop_buffers[index]
                if not buffer:
                    continue
                self._prop_buffers[index] = []
                progressed = True
                started = perf_counter()
                keep_going = propagator.propagate(self, buffer)
                stats.time_theory += perf_counter() - started
                if self._pending_conflict is not None:
                    conflict = self._pending_conflict
                    self._pending_conflict = None
                    return conflict
                if not keep_going:
                    # The propagator signalled a conflict but the clause it
                    # added was resolved into a pending unit; re-propagate.
                    break
                if self._qhead < len(self._trail):
                    break  # new unit assignments: restart the loop
            if not progressed and self._qhead == len(self._trail):
                return None

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------

    def _backtrack(self, level: int) -> None:
        if self.decision_level <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._values[var] = 0
            self._reasons[var] = None
            heapq.heappush(self._order_heap, (-self._activity[var], var))
        if len(self._order_heap) > 2 * self._nvars + 16:
            # Lazy deletion leaves stale (activity, var) tuples behind;
            # long enumeration runs (many solve/backtrack cycles) would
            # otherwise grow the heap without bound.  Compact it.
            self._rescale_heap()
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))
        # Drop buffered propagator changes that are no longer assigned true.
        for index in range(len(self._prop_buffers)):
            self._prop_buffers[index] = [
                lit for lit in self._prop_buffers[index] if self.value(lit) is True
            ]
        for propagator in self._propagators:
            propagator.undo(self, level)

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._nvars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            # Heap entries hold pre-rescale keys; rebuild so decision
            # order keeps following the (rescaled) activities.
            self._rescale_heap()

    def _bump_clause(self, clause: Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learned:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: Clause) -> Tuple[List[int], int]:
        """First-UIP analysis; returns (learned clause lits, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        counter = 0
        lit = 0
        index = len(self._trail) - 1
        clause: Optional[Clause] = conflict
        path: List[int] = []

        while True:
            assert clause is not None
            self._bump_clause(clause)
            start = 1 if clause is not conflict else 0
            # For reason clauses, lits[0] is the propagated literal.
            for k in range(0, len(clause.lits)):
                q = clause.lits[k]
                if clause is not conflict and q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self._levels[var] > 0:
                    seen[var] = True
                    path.append(var)
                    self._bump_var(var)
                    if self._levels[var] >= self.decision_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Select next literal to expand.
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            clause = self._reasons[var]
            counter -= 1
            if counter == 0:
                break
        learned[0] = -lit

        # Recursive minimization: drop literals implied by the rest.
        keep = [learned[0]]
        levels = {self._levels[abs(q)] for q in learned[1:]}
        for q in learned[1:]:
            if self._redundant(q, levels):
                continue
            keep.append(q)
        for var in path:
            seen[var] = False

        if len(keep) == 1:
            backjump = 0
        else:
            # Move the highest-level literal (besides the UIP) to position 1.
            max_i = 1
            for i in range(2, len(keep)):
                if self._levels[abs(keep[i])] > self._levels[abs(keep[max_i])]:
                    max_i = i
            keep[1], keep[max_i] = keep[max_i], keep[1]
            backjump = self._levels[abs(keep[1])]
        return keep, backjump

    def _redundant(self, lit: int, levels: Set[int]) -> bool:
        """Check whether ``lit`` is implied by the remaining learned lits."""
        stack = [lit]
        visited: List[int] = []
        result = True
        while stack:
            current = stack.pop()
            reason = self._reasons[abs(current)]
            if reason is None:
                result = False
                break
            for q in reason.lits:
                var = abs(q)
                if q == -current or self._levels[var] == 0 or self._seen[var]:
                    continue
                if self._levels[var] not in levels:
                    result = False
                    break
                self._seen[var] = True
                visited.append(var)
                stack.append(q)
            else:
                continue
            break
        if not result:
            for var in visited:
                self._seen[var] = False
        # Keep markings when redundant so shared work is reused; they are
        # cleared with `path` by the caller only for path vars, so clear
        # the extra ones here conservatively.
        if result:
            for var in visited:
                self._seen[var] = False
        return result

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _decide(self) -> Optional[int]:
        saving = self.phase_saving
        while self._order_heap:
            _act, var = heapq.heappop(self._order_heap)
            if self._values[var] == 0:
                return var if (saving and self._phase[var]) else -var
        for var in range(1, self._nvars + 1):
            if self._values[var] == 0:
                return var if (saving and self._phase[var]) else -var
        return None

    def _rescale_heap(self) -> None:
        self._order_heap = [
            (-self._activity[v], v) for v in range(1, self._nvars + 1) if self._values[v] == 0
        ]
        heapq.heapify(self._order_heap)

    # ------------------------------------------------------------------
    # Clause DB reduction
    # ------------------------------------------------------------------

    def _locked(self, clause: Clause) -> bool:
        lit = clause.lits[0]
        return self.value(lit) is True and self._reasons[abs(lit)] is clause

    def _reduce_db(self) -> None:
        self._learned.sort(key=lambda c: c.activity)
        target = len(self._learned) // 2
        kept: List[Clause] = []
        removed = 0
        for i, clause in enumerate(self._learned):
            if removed < target and len(clause.lits) > 2 and not self._locked(clause):
                self._detach(clause)
                self._db_ints -= len(clause.lits) + 1
                removed += 1
            else:
                kept.append(clause)
        self._learned = kept
        self.stats.deleted += removed

    def _detach(self, clause: Clause) -> None:
        for lit in clause.lits[:2]:
            try:
                self._watches[self._code(-lit)].remove(clause)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------

    def clause_db_bytes(self) -> int:
        """Arena-equivalent clause store size in bytes: one 4-byte int
        per literal plus a 4-byte header per clause, mirroring what the
        flat core's arena would occupy (tracked incrementally so the
        per-solve statistics update is O(1))."""
        return 4 * self._db_ints

    def solve(self, assumptions: Sequence[int] = ()) -> SolveResult:
        """Search for a model extending ``assumptions``.

        On SAT, the assignment is total and remains available through
        :meth:`value` until the next ``solve``/``add_clause`` call; the
        caller typically records the model and adds a blocking clause.
        """
        try:
            return self._solve(assumptions)
        finally:
            self.stats.clause_db_bytes = self.clause_db_bytes()

    def _solve(self, assumptions: Sequence[int] = ()) -> SolveResult:
        self.interrupted = False
        if self._unsat:
            return SolveResult(False)
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._unsat = True
            return SolveResult(False)

        max_learned = max(self.max_learned_base, len(self._clauses) // 3)
        restart_count = 0
        restart_base = self.restart_base
        conflicts_until_restart = (
            restart_base * _luby(restart_count + 1) if restart_base else None
        )
        conflicts_at_start = self.stats.conflicts

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                if self.decision_level == 0 or not conflict.lits:
                    self._unsat = True
                    return SolveResult(False)
                if all(self.level(lit) == 0 for lit in conflict.lits):
                    self._unsat = True
                    return SolveResult(False)
                # A propagator clause may be conflicting without a literal
                # at the current level; backtrack until analysis applies.
                top = max(self.level(lit) for lit in conflict.lits)
                if top < self.decision_level:
                    self._backtrack(top)
                if self.decision_level == 0:
                    self._unsat = True
                    return SolveResult(False)
                if self._num_at_current_level(conflict) == 0:
                    # Can happen when `top` equals an assumption level whose
                    # decision is not in the clause; fall back to a plain
                    # backtrack by one level re-propagating the clause.
                    self._backtrack(self.decision_level - 1)
                    self._readd_conflict(conflict)
                    continue
                learned, backjump = self._analyze(conflict)
                # Never jump above an assumption that is part of the clause?
                # Assumptions are re-decided by the decision loop, so a deep
                # backjump is safe.
                self._backtrack(backjump)
                if len(learned) == 1:
                    if self.value(learned[0]) is False:
                        self._unsat = True
                        return SolveResult(False)
                    if self.value(learned[0]) is None:
                        self._enqueue(learned[0], None)
                else:
                    clause = Clause(learned, learned=True)
                    self._learned.append(clause)
                    self._db_ints += len(learned) + 1
                    self.stats.learned += 1
                    self._attach(clause)
                    self._enqueue(learned[0], clause)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay

                if (
                    self.conflict_limit is not None
                    and self.stats.conflicts - conflicts_at_start >= self.conflict_limit
                ):
                    self.interrupted = True
                    self._backtrack(0)
                    return SolveResult(False)
                if (
                    conflicts_until_restart is not None
                    and self.stats.conflicts - conflicts_at_start
                    >= conflicts_until_restart
                ):
                    restart_count += 1
                    self.stats.restarts += 1
                    conflicts_until_restart += restart_base * _luby(restart_count + 1)
                    self._backtrack(0)
                if len(self._learned) > max_learned:
                    self._reduce_db()
                    max_learned = int(max_learned * 1.3)
                continue

            # No conflict: assumptions, then decisions.
            if self.decision_level < len(assumptions):
                lit = assumptions[self.decision_level]
                value = self.value(lit)
                if value is True:
                    # Already implied: open an empty level to keep the
                    # level/assumption correspondence simple.
                    self._trail_lim.append(len(self._trail))
                    continue
                if value is False:
                    core = self._analyze_final(lit, assumptions)
                    self._backtrack(0)
                    return SolveResult(False, core=tuple(core))
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                continue

            if len(self._trail) == self._nvars:
                # Total assignment: final propagator checks.
                ok = True
                for propagator in self._propagators:
                    keep_going = propagator.check(self)
                    if self._pending_conflict is not None:
                        ok = False
                        break
                    if not keep_going:
                        raise RuntimeError(
                            f"{type(propagator).__name__}.check() returned False "
                            f"without adding a conflicting clause"
                        )
                if ok:
                    return SolveResult(True)
                continue  # pending conflict resolved by next _propagate()

            decision = self._decide()
            if decision is None:
                # All vars assigned (can happen with lazy heap staleness).
                continue
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)

    def _num_at_current_level(self, clause: Clause) -> int:
        level = self.decision_level
        return sum(1 for lit in clause.lits if self.level(lit) == level)

    def _readd_conflict(self, clause: Clause) -> None:
        """Re-trigger a conflict clause after an ad-hoc backtrack."""
        self._pending_conflict = clause

    def _analyze_final(self, failed: int, assumptions: Sequence[int]) -> List[int]:
        """Compute an unsatisfiable core from a failed assumption."""
        assumption_set = set(assumptions)
        core = [failed]
        seen = {abs(failed)}
        queue = [-failed]
        while queue:
            lit = queue.pop()
            var = abs(lit)
            reason = self._reasons[var]
            if reason is None:
                if lit in assumption_set and lit != -failed:
                    core.append(lit)
                continue
            for q in reason.lits:
                if abs(q) not in seen and self._levels[abs(q)] > 0:
                    seen.add(abs(q))
                    queue.append(-q)
        return core

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------

    def set_phase(self, var: int, phase: bool) -> None:
        """Set the saved phase of ``var`` (decision polarity hint)."""
        if not 1 <= var <= self._nvars:
            raise ValueError(f"unknown variable {var}")
        self._phase[var] = phase

    def set_initial_activity(self, var: int, activity: float) -> None:
        """Seed the VSIDS activity of ``var`` (decision priority hint).

        Higher activity means the variable is decided earlier; conflicts
        gradually override the seed, so this only shapes the initial
        descent (domain-specific heuristics).
        """
        if not 1 <= var <= self._nvars:
            raise ValueError(f"unknown variable {var}")
        self._activity[var] = activity
        heapq.heappush(self._order_heap, (-activity, var))

    def reset_to_root(self) -> None:
        """Backtrack to decision level 0 (e.g. before adding clauses
        between enumeration steps)."""
        self._backtrack(0)

    def model(self) -> List[int]:
        """The current total assignment as a list of true literals."""
        return [
            (v if self._values[v] > 0 else -v)
            for v in range(1, self._nvars + 1)
            if self._values[v] != 0
        ]

"""Answer set programming substrate.

This subpackage is a from-scratch, pure-Python reimplementation of the
solving stack the paper builds on (clingo 5 with its theory-propagator
interface):

* :mod:`repro.asp.syntax` -- ground symbols (function terms, numbers,
  strings) and helper constructors.
* :mod:`repro.asp.ast` -- non-ground program AST (rules, aggregates,
  theory atoms).
* :mod:`repro.asp.parser` -- tokenizer and recursive-descent parser for an
  ASP-like input language.
* :mod:`repro.asp.grounder` -- safe-rule instantiation by a fixpoint over
  possibly-true atoms.
* :mod:`repro.asp.ground` -- ground-program representation, dependency
  graph, strongly connected components and tightness analysis.
* :mod:`repro.asp.completion` -- Clark completion and translation of the
  ground program to clauses (including pseudo-Boolean aggregates).
* :mod:`repro.asp.solver` -- conflict-driven nogood-learning (CDNL) SAT
  core with two-watched-literal propagation, 1-UIP learning, VSIDS and
  restarts.
* :mod:`repro.asp.unfounded` -- unfounded-set propagation for non-tight
  programs.
* :mod:`repro.asp.propagator` -- clingo-style ``Propagator`` protocol used
  by the theory and dominance propagators.
* :mod:`repro.asp.control` -- the high-level facade tying everything
  together (mirrors ``clingo.Control``).
* :mod:`repro.asp.naive` -- brute-force answer-set enumeration used as a
  test oracle.
"""

from repro.asp.control import Control
from repro.asp.syntax import Function, Number, String, Symbol

__all__ = ["Control", "Function", "Number", "String", "Symbol"]

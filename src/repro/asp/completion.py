"""Translation of ground programs to clauses (Clark completion).

Produces the clause set solved by :mod:`repro.asp.solver`:

* one solver variable per possible non-fact atom (facts are folded into a
  dedicated always-true literal),
* auxiliary variables for rule bodies (shared between identical bodies),
* *supportedness* clauses ``atom -> body_1 | ... | body_n`` and *forcing*
  clauses ``body -> atom`` (the latter omitted for choice rules),
* cardinality/weight aggregates and choice bounds compiled to clauses via
  a memoized BDD construction for pseudo-Boolean ``>=`` constraints,
* theory atoms get a variable with completion over their rule bodies; the
  background theory interprets the variable's truth.

For non-tight programs the translation additionally records, per atom,
its *supports* — ``(body literal, positive non-fact body atoms)`` pairs —
which the unfounded-set propagator combines with the SCC structure of
:class:`repro.asp.ground.GroundProgram`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.asp.ground import GroundProgram
from repro.asp.grounder import (
    GroundAggregate,
    GroundChoice,
    GroundRule,
    GroundTheoryAtom,
    GroundingError,
)
from repro.asp.solver import Solver
from repro.asp.syntax import Function

__all__ = ["Support", "Translation", "translate", "PseudoBooleanBuilder"]


@dataclass(frozen=True)
class Support:
    """One way an atom can be derived: a body literal plus the positive
    non-fact atoms whose derivations the body depends on."""

    literal: int
    positive_atoms: Tuple[Function, ...]


@dataclass
class Translation:
    """The result of translating a ground program."""

    solver: Solver
    program: GroundProgram
    true_lit: int
    atom_vars: Dict[Function, int] = field(default_factory=dict)
    theory_vars: Dict[GroundTheoryAtom, int] = field(default_factory=dict)
    supports: Dict[Function, List[Support]] = field(default_factory=dict)

    def atom_lit(self, atom: Function) -> int:
        """Solver literal for ``atom`` (the true/false constant for facts
        and impossible atoms respectively)."""
        if atom in self.program.facts:
            return self.true_lit
        var = self.atom_vars.get(atom)
        if var is None:
            return -self.true_lit
        return var

    def symbols_of_model(self) -> List[Function]:
        """Decode the solver's current total assignment into atoms."""
        out = [atom for atom in self.program.facts]
        for atom, var in self.atom_vars.items():
            if self.solver.value(var) is True:
                out.append(atom)
        return sorted(out)


class PseudoBooleanBuilder:
    """Compiles ``sum_i w_i * l_i >= k`` constraints to clauses.

    Uses the classic ROBDD construction with memoization on
    ``(index, bound)``: each node is an auxiliary variable equivalent to
    "the suffix starting at *index* can still reach *bound*".  Weights
    must be positive; callers shift negative weights beforehand.
    """

    def __init__(self, solver: Solver, true_lit: int):
        self._solver = solver
        self._true = true_lit

    def geq(self, terms: Sequence[Tuple[int, int]], bound: int) -> int:
        """Literal equivalent to ``sum(w * [lit]) >= bound``."""
        for weight, _lit in terms:
            if weight <= 0:
                raise ValueError("weights must be positive (shift negatives first)")
        terms = sorted(terms, key=lambda t: -t[0])
        suffix = [0] * (len(terms) + 1)
        for i in range(len(terms) - 1, -1, -1):
            suffix[i] = suffix[i + 1] + terms[i][0]
        memo: Dict[Tuple[int, int], int] = {}

        def build(i: int, b: int) -> int:
            if b <= 0:
                return self._true
            if suffix[i] < b:
                return -self._true
            b = min(b, suffix[i])  # clamp for better sharing
            key = (i, b)
            cached = memo.get(key)
            if cached is not None:
                return cached
            weight, lit = terms[i]
            hi = build(i + 1, b - weight)
            lo = build(i + 1, b)
            if hi == lo:
                memo[key] = hi
                return hi
            node = self._solver.new_var()
            # node <-> (lit ? hi : lo)
            self._solver.add_clause([-node, -lit, hi])
            self._solver.add_clause([-node, lit, lo])
            self._solver.add_clause([node, -lit, -hi])
            self._solver.add_clause([node, lit, -lo])
            memo[key] = node
            return node

        return build(0, bound)


class _Translator:
    def __init__(self, program: GroundProgram, solver: Solver):
        self._program = program
        self._solver = solver
        true_var = solver.new_var()
        solver.add_clause([true_var])
        self._result = Translation(solver, program, true_var)
        self._pb = PseudoBooleanBuilder(solver, true_var)
        self._body_cache: Dict[Tuple[int, ...], int] = {}
        self._or_cache: Dict[Tuple[int, ...], int] = {}
        self._aggregate_cache: Dict[GroundAggregate, int] = {}
        self._theory_supports: Dict[GroundTheoryAtom, List[int]] = {}
        # Choice-supported atoms must not be forced false by completion even
        # if every support is a choice (they are, via supportedness, only
        # *allowed* when supported).
        self._unsat = False

    # -- helpers ---------------------------------------------------------------

    @property
    def true_lit(self) -> int:
        return self._result.true_lit

    def _atom_var(self, atom: Function) -> int:
        var = self._result.atom_vars.get(atom)
        if var is None:
            var = self._solver.new_var()
            self._result.atom_vars[atom] = var
        return var

    def _literal(self, sign: int, atom: Function) -> int:
        if atom in self._program.facts:
            return -self.true_lit if sign else self.true_lit
        if atom not in self._program.possible:
            return self.true_lit if sign else -self.true_lit
        var = self._atom_var(atom)
        return -var if sign else var

    def _conjunction(self, lits: Sequence[int]) -> int:
        """Literal equivalent to the conjunction of ``lits``."""
        unique: List[int] = []
        for lit in lits:
            if lit == self.true_lit or lit in unique:
                continue
            if lit == -self.true_lit or -lit in unique:
                return -self.true_lit
            unique.append(lit)
        if not unique:
            return self.true_lit
        if len(unique) == 1:
            return unique[0]
        key = tuple(sorted(unique))
        cached = self._body_cache.get(key)
        if cached is not None:
            return cached
        aux = self._solver.new_var()
        for lit in key:
            self._solver.add_clause([-aux, lit])
        self._solver.add_clause([aux] + [-lit for lit in key])
        self._body_cache[key] = aux
        return aux

    def _disjunction(self, lits: Sequence[int]) -> int:
        unique: List[int] = []
        for lit in lits:
            if lit == -self.true_lit or lit in unique:
                continue
            if lit == self.true_lit or -lit in unique:
                return self.true_lit
            unique.append(lit)
        if not unique:
            return -self.true_lit
        if len(unique) == 1:
            return unique[0]
        key = tuple(sorted(unique))
        cached = self._or_cache.get(key)
        if cached is not None:
            return cached
        aux = self._solver.new_var()
        for lit in key:
            self._solver.add_clause([aux, -lit])
        self._solver.add_clause([-aux] + list(key))
        self._or_cache[key] = aux
        return aux

    # -- aggregates -------------------------------------------------------------

    def _aggregate_lit(self, aggregate: GroundAggregate) -> int:
        cached = self._aggregate_cache.get(aggregate)
        if cached is not None:
            return -cached if aggregate.sign else cached
        #: (weight, tuple literal) pairs; always-holding tuples use true_lit.
        pairs: List[Tuple[int, int]] = []
        for element in aggregate.elements:
            weight = 1 if aggregate.function == "count" else element.weight
            if element.conditions == ((),):
                pairs.append((weight, self.true_lit))
                continue
            tuple_lit = self._disjunction(
                [
                    self._conjunction(
                        [self._literal(sign, atom) for sign, atom in condition]
                    )
                    for condition in element.conditions
                ]
            )
            if tuple_lit != -self.true_lit:
                pairs.append((weight, tuple_lit))

        if aggregate.function in ("min", "max"):
            guard_lit = self._min_max_guard(aggregate.function, pairs)
        else:
            guard_lit = self._sum_guard(pairs)

        guards = []
        for guard in (aggregate.left_guard, aggregate.right_guard):
            if guard is not None:
                guards.append(guard_lit(*guard))
        value = self._conjunction(guards) if guards else self.true_lit
        self._aggregate_cache[aggregate] = value
        return -value if aggregate.sign else value

    def _sum_guard(self, pairs: List[Tuple[int, int]]):
        """Guard builder for #count/#sum (pseudo-Boolean translation)."""
        base = 0
        terms: List[Tuple[int, int]] = []
        for weight, tuple_lit in pairs:
            if weight == 0 or tuple_lit == self.true_lit:
                base += weight
                continue
            if weight < 0:
                base += weight
                terms.append((-weight, -tuple_lit))
            else:
                terms.append((weight, tuple_lit))

        def geq(bound: int) -> int:
            return self._pb.geq(terms, bound - base)

        def guard_lit(op: str, bound: int) -> int:
            if op == ">=":
                return geq(bound)
            if op == ">":
                return geq(bound + 1)
            if op == "<=":
                return -geq(bound + 1)
            if op == "<":
                return -geq(bound)
            if op == "=":
                return self._conjunction([geq(bound), -geq(bound + 1)])
            if op == "!=":
                return -self._conjunction([geq(bound), -geq(bound + 1)])
            raise GroundingError(f"unsupported aggregate guard operator {op!r}")

        return guard_lit

    def _min_max_guard(self, function: str, pairs: List[Tuple[int, int]]):
        """Guard builder for #min/#max.

        ``#min S <= b`` holds iff some tuple with weight <= b is in; the
        empty set behaves as #sup (for #min) / #inf (for #max), which the
        empty disjunction/conjunction encode naturally.
        """

        def low_le(bound: int) -> int:
            # min <= bound
            return self._disjunction([t for w, t in pairs if w <= bound])

        def low_ge(bound: int) -> int:
            # min >= bound: nothing below may hold
            return self._conjunction([-t for w, t in pairs if w < bound])

        def high_ge(bound: int) -> int:
            # max >= bound
            return self._disjunction([t for w, t in pairs if w >= bound])

        def high_le(bound: int) -> int:
            # max <= bound: nothing above may hold
            return self._conjunction([-t for w, t in pairs if w > bound])

        le, ge = (low_le, low_ge) if function == "min" else (high_le, high_ge)

        def guard_lit(op: str, bound: int) -> int:
            if op == "<=":
                return le(bound)
            if op == "<":
                return le(bound - 1)
            if op == ">=":
                return ge(bound)
            if op == ">":
                return ge(bound + 1)
            if op == "=":
                return self._conjunction([le(bound), ge(bound)])
            if op == "!=":
                return -self._conjunction([le(bound), ge(bound)])
            raise GroundingError(f"unsupported aggregate guard operator {op!r}")

        return guard_lit

    # -- rules -----------------------------------------------------------------

    def _body_literals(self, rule: GroundRule) -> Optional[List[int]]:
        """The rule body as solver literals, or None when trivially false."""
        lits: List[int] = []
        for sign, atom in rule.body:
            lit = self._literal(sign, atom)
            if lit == -self.true_lit:
                return None
            if lit != self.true_lit:
                lits.append(lit)
        for aggregate in rule.aggregates:
            lit = self._aggregate_lit(aggregate)
            if lit == -self.true_lit:
                return None
            if lit != self.true_lit:
                lits.append(lit)
        return lits

    def _positive_body_atoms(self, rule: GroundRule) -> Tuple[Function, ...]:
        return tuple(
            atom
            for sign, atom in rule.body
            if sign == 0
            and atom not in self._program.facts
            and atom in self._program.possible
        )

    def translate(self) -> Translation:
        for rule in self._program.rules:
            body_lits = self._body_literals(rule)
            if body_lits is None:
                continue
            head = rule.head
            if head is None:
                if not self._solver.add_clause([-lit for lit in body_lits]):
                    self._unsat = True
                continue
            if isinstance(head, Function):
                self._translate_normal(head, body_lits, rule)
            elif isinstance(head, GroundChoice):
                self._translate_choice(head, body_lits, rule)
            elif isinstance(head, GroundTheoryAtom):
                self._translate_theory(head, body_lits)
            else:
                raise GroundingError(f"unsupported ground head {head!r}")
        self._add_completion()
        return self._result

    def _translate_normal(
        self, head: Function, body_lits: List[int], rule: GroundRule
    ) -> None:
        if head in self._program.facts:
            # Fact (or derived by an unconditional rule elsewhere): bodies
            # still force it, but it is already true.
            return
        body_lit = self._conjunction(body_lits)
        head_lit = self._atom_var(head)
        self._solver.add_clause([-body_lit, head_lit])
        self._result.supports.setdefault(head, []).append(
            Support(body_lit, self._positive_body_atoms(rule))
        )

    def _translate_choice(
        self, head: GroundChoice, body_lits: List[int], rule: GroundRule
    ) -> None:
        rule_positives = self._positive_body_atoms(rule)
        element_lits: List[int] = []
        trivially_true = 0
        for atom, condition in head.elements:
            condition_lits: List[int] = []
            dropped = False
            for sign, cond_atom in condition:
                lit = self._literal(sign, cond_atom)
                if lit == -self.true_lit:
                    dropped = True
                    break
                if lit != self.true_lit:
                    condition_lits.append(lit)
            if dropped:
                continue
            support_lit = self._conjunction(body_lits + condition_lits)
            if atom in self._program.facts:
                trivially_true += 1
            else:
                condition_positives = tuple(
                    cond_atom
                    for sign, cond_atom in condition
                    if sign == 0
                    and cond_atom not in self._program.facts
                    and cond_atom in self._program.possible
                )
                self._result.supports.setdefault(atom, []).append(
                    Support(support_lit, rule_positives + condition_positives)
                )
                element_lits.append(
                    self._conjunction([self._atom_var(atom)] + condition_lits)
                )
        if head.lower is None and head.upper is None:
            return
        body_lit = self._conjunction(body_lits)
        terms = [(1, lit) for lit in element_lits]
        if head.lower is not None:
            lower_lit = self._pb.geq(terms, head.lower - trivially_true)
            self._solver.add_clause([-body_lit, lower_lit])
        if head.upper is not None:
            over_lit = self._pb.geq(terms, head.upper + 1 - trivially_true)
            self._solver.add_clause([-body_lit, -over_lit])

    def _translate_theory(self, head: GroundTheoryAtom, body_lits: List[int]) -> None:
        var = self._result.theory_vars.get(head)
        if var is None:
            var = self._solver.new_var()
            self._result.theory_vars[head] = var
            self._theory_supports[head] = []
        body_lit = self._conjunction(body_lits)
        self._solver.add_clause([-body_lit, var])
        self._theory_supports[head].append(body_lit)

    def _add_completion(self) -> None:
        for atom, var in self._result.atom_vars.items():
            supports = self._result.supports.get(atom, [])
            self._solver.add_clause([-var] + [s.literal for s in supports])
        for theory_atom, var in self._result.theory_vars.items():
            supports = self._theory_supports.get(theory_atom, [])
            self._solver.add_clause([-var] + supports)


def translate(program: GroundProgram, solver: Optional[Solver] = None) -> Translation:
    """Translate ``program`` into clauses on ``solver`` (a new one if None)."""
    if solver is None:
        solver = Solver()
    return _Translator(program, solver).translate()

"""Grounding: instantiation of non-ground rules.

The grounder computes, per dependency component, a fixpoint over
*possibly-true* atoms: starting from the facts, every rule is instantiated
against the current set of possible atoms (matching positive body
literals, evaluating builtins), and the head atoms of every instance are
added to the set.  This over-approximates the atoms of any answer set, so
solving on the resulting ground program is sound and complete.

Instantiation is scheduled along the condensation of the rule/predicate
dependency graph (as in gringo): a rule is grounded only after the
components of the predicates it uses under negation, in aggregate
elements, or in element conditions are *closed* (fully grounded).  This
makes the following simplifications sound:

* positive body literals over *facts* are dropped,
* positive body literals over impossible atoms drop the whole instance,
* negative body literals over closed impossible atoms are dropped,
* negative body literals over facts drop the whole instance,
* fully-determined comparisons are evaluated away.

Negative literals over predicates of the *same* component (negative
recursion, e.g. ``a :- not b.  b :- not a.``) are kept unsimplified; the
translator resolves atoms that never became possible.  Aggregates and
element conditions over predicates of the same component ("recursive
aggregates") are rejected with :class:`GroundingError` — the synthesis
encodings do not need them.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.asp import ast
from repro.asp.syntax import Function, Number, String, Symbol

__all__ = [
    "GroundingError",
    "GroundingStatistics",
    "GroundAggregate",
    "GroundAggregateElement",
    "GroundChoice",
    "GroundRule",
    "GroundTheoryAtom",
    "TheoryTermOp",
    "Grounder",
    "domain_prune_default",
    "evaluate_term",
    "evaluate_comparison",
    "ground_program",
]


def domain_prune_default() -> bool:
    """Domain-analysis pruning default: on, unless ``REPRO_DOMAIN_PRUNE``
    disables it (``off``/``0``/``false``/``no``)."""
    return os.environ.get("REPRO_DOMAIN_PRUNE", "on").lower() not in (
        "off",
        "0",
        "false",
        "no",
    )


class GroundingError(Exception):
    """Raised when a rule cannot be safely instantiated."""


@dataclass
class GroundingStatistics:
    """Effort counters of one :meth:`Grounder.ground` run.

    ``instantiations`` counts rule-instance emissions attempted (one per
    substitution produced by the body join); ``delta_rounds`` counts the
    semi-naive re-evaluation rounds beyond each batch's first full pass
    (for the naive mode: full fixpoint passes beyond the first).

    With ``domain_prune`` enabled, ``pruned_instances`` counts partial
    join substitutions rejected by eagerly evaluated comparison guards
    or per-variable domain filters (each would otherwise have grown into
    one or more full instantiations), ``rules_skipped`` counts rules the
    domain analysis proved dead before instantiation, and the
    ``domain_*`` fields summarize the analysis itself.
    """

    mode: str = "seminaive"
    seconds: float = 0.0
    instantiations: int = 0
    delta_rounds: int = 0
    domain_prune: bool = False
    domain_seconds: float = 0.0
    domain_predicates: int = 0
    domain_widenings: int = 0
    pruned_instances: int = 0
    rules_skipped: int = 0


# ---------------------------------------------------------------------------
# Ground representations
# ---------------------------------------------------------------------------

#: A ground literal: (sign, atom symbol); sign 0 positive, 1 negative.
GroundLiteral = Tuple[int, Function]


@dataclass(frozen=True)
class GroundAggregateElement:
    """A ground aggregate element: a term tuple plus condition instances.

    ASP-Core-2 aggregates have *set* semantics over term tuples: a tuple
    contributes (once) if any of its condition instances holds, so all
    instances sharing a tuple are grouped here.
    """

    terms: Tuple[Symbol, ...]
    conditions: Tuple[Tuple[GroundLiteral, ...], ...]

    @property
    def weight(self) -> int:
        """The #sum weight: the first term, which must be a number."""
        if not self.terms or not isinstance(self.terms[0], Number):
            raise GroundingError(
                f"#sum element {self.terms} does not start with an integer weight"
            )
        return self.terms[0].value


@dataclass(frozen=True)
class GroundAggregate:
    """A ground body aggregate with ``(op, bound)`` guards (aggregate on LHS)."""

    sign: int
    function: str  # "count" or "sum"
    elements: Tuple[GroundAggregateElement, ...]
    left_guard: Optional[Tuple[str, int]]
    right_guard: Optional[Tuple[str, int]]


@dataclass(frozen=True)
class TheoryTermOp:
    """A ground theory term with structure, e.g. ``start(t2) - start(t1)``.

    Leaves are plain symbols; arithmetic between numbers is folded during
    grounding, everything else is kept symbolic for the theory to
    interpret.
    """

    op: str
    arguments: Tuple["GroundTheoryTerm", ...]

    def __str__(self) -> str:
        if len(self.arguments) == 1:
            return f"({self.op}{self.arguments[0]})"
        return "(" + f"{self.op}".join(str(a) for a in self.arguments) + ")"


GroundTheoryTerm = object  # Union[Symbol, TheoryTermOp]


@dataclass(frozen=True)
class GroundTheoryAtom:
    """A ground theory atom handed to the background theory."""

    name: str
    arguments: Tuple[Symbol, ...]
    elements: Tuple[Tuple[Tuple[GroundTheoryTerm, ...], Tuple[GroundLiteral, ...]], ...]
    guard: Optional[Tuple[str, Symbol]]

    def __str__(self) -> str:
        args = ""
        if self.arguments:
            args = "(" + ",".join(str(a) for a in self.arguments) + ")"
        elems = []
        for terms, condition in self.elements:
            text = ",".join(str(t) for t in terms)
            if condition:
                text += " : " + ",".join(
                    ("not " if sign else "") + str(atom) for sign, atom in condition
                )
            elems.append(text)
        guard = f" {self.guard[0]} {self.guard[1]}" if self.guard else ""
        return f"&{self.name}{args}{{{';'.join(elems)}}}{guard}"


@dataclass(frozen=True)
class GroundChoice:
    """A ground choice head: elements are (atom, condition) pairs."""

    elements: Tuple[Tuple[Function, Tuple[GroundLiteral, ...]], ...]
    lower: Optional[int]
    upper: Optional[int]


@dataclass(frozen=True)
class GroundRule:
    """A ground rule.

    ``head`` is a :class:`Function` atom, a :class:`GroundChoice`, a
    :class:`GroundTheoryAtom`, or ``None`` for an integrity constraint.
    ``body`` holds ground symbolic literals; ``aggregates`` holds ground
    body aggregates.
    """

    head: object
    body: Tuple[GroundLiteral, ...]
    aggregates: Tuple[GroundAggregate, ...] = ()

    def __str__(self) -> str:
        parts = [("not " if sign else "") + str(atom) for sign, atom in self.body]
        parts.extend(str(a) for a in self.aggregates)
        body = ", ".join(parts)
        if isinstance(self.head, GroundChoice):
            elems = ";".join(str(atom) for atom, _cond in self.head.elements)
            lower = f"{self.head.lower} " if self.head.lower is not None else ""
            upper = f" {self.head.upper}" if self.head.upper is not None else ""
            head = f"{lower}{{{elems}}}{upper}"
        elif self.head is None:
            head = ""
        else:
            head = str(self.head)
        if not body:
            return f"{head}."
        return f"{head} :- {body}."


# ---------------------------------------------------------------------------
# Term evaluation and matching
# ---------------------------------------------------------------------------


def evaluate_term(term: ast.Term, subst: Dict[str, Symbol]) -> Optional[Symbol]:
    """Evaluate ``term`` under ``subst`` to a single ground symbol.

    Returns ``None`` when the term contains unbound variables, an interval,
    or ill-typed arithmetic.
    """
    if isinstance(term, ast.SymbolTerm):
        return term.symbol
    if isinstance(term, ast.Variable):
        return subst.get(term.name)
    if isinstance(term, ast.FunctionTerm):
        args = []
        for argument in term.arguments:
            value = evaluate_term(argument, subst)
            if value is None:
                return None
            args.append(value)
        return Function(term.name, args)
    if isinstance(term, ast.BinaryTerm):
        lhs = evaluate_term(term.lhs, subst)
        rhs = evaluate_term(term.rhs, subst)
        if not isinstance(lhs, Number) or not isinstance(rhs, Number):
            return None
        try:
            if term.op == "+":
                return Number(lhs.value + rhs.value)
            if term.op == "-":
                return Number(lhs.value - rhs.value)
            if term.op == "*":
                return Number(lhs.value * rhs.value)
            if term.op == "/":
                return Number(_int_div(lhs.value, rhs.value))
            if term.op == "\\":
                return Number(_int_mod(lhs.value, rhs.value))
            if term.op == "**":
                return Number(lhs.value**rhs.value)
        except (ZeroDivisionError, ValueError):
            return None
        raise GroundingError(f"unknown arithmetic operator {term.op!r}")
    if isinstance(term, ast.UnaryTerm):
        inner = evaluate_term(term.argument, subst)
        if not isinstance(inner, Number):
            return None
        if term.op == "-":
            return Number(-inner.value)
        if term.op == "|":
            return Number(abs(inner.value))
        raise GroundingError(f"unknown unary operator {term.op!r}")
    if isinstance(term, (ast.IntervalTerm, ast.PoolTerm)):
        return None
    raise GroundingError(f"cannot evaluate term {term}")


def _int_div(a: int, b: int) -> int:
    """Truncated integer division (gringo semantics)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_mod(a: int, b: int) -> int:
    return a - b * _int_div(a, b)


def evaluate_term_all(term: ast.Term, subst: Dict[str, Symbol]) -> List[Symbol]:
    """Evaluate a term that may contain intervals/pools, yielding every
    instance."""
    if isinstance(term, ast.PoolTerm):
        out: List[Symbol] = []
        for option in term.options:
            out.extend(evaluate_term_all(option, subst))
        return out
    if isinstance(term, ast.IntervalTerm):
        lower = evaluate_term(term.lower, subst)
        upper = evaluate_term(term.upper, subst)
        if not isinstance(lower, Number) or not isinstance(upper, Number):
            return []
        return [Number(v) for v in range(lower.value, upper.value + 1)]
    if isinstance(term, ast.FunctionTerm):
        choices = [evaluate_term_all(a, subst) for a in term.arguments]
        if any(not c for c in choices):
            return []
        return [Function(term.name, combo) for combo in itertools.product(*choices)]
    value = evaluate_term(term, subst)
    return [value] if value is not None else []


def evaluate_comparison(op: str, lhs: Symbol, rhs: Symbol) -> bool:
    """Evaluate a ground comparison under the total symbol order."""
    if op == "=":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    raise GroundingError(f"unknown comparison operator {op!r}")


def _match(term: ast.Term, symbol: Symbol, subst: Dict[str, Symbol]) -> bool:
    """Match ``term`` against ground ``symbol``, extending ``subst``.

    Arithmetic subterms must be evaluable from already-bound variables (we
    never invert arithmetic, mirroring gringo's safety requirements).
    """
    if isinstance(term, ast.Variable):
        bound = subst.get(term.name)
        if bound is None:
            subst[term.name] = symbol
            return True
        return bound == symbol
    if isinstance(term, ast.SymbolTerm):
        return term.symbol == symbol
    if isinstance(term, ast.FunctionTerm):
        if (
            not isinstance(symbol, Function)
            or symbol.name != term.name
            or len(symbol.arguments) != len(term.arguments)
        ):
            return False
        for sub_term, sub_symbol in zip(term.arguments, symbol.arguments):
            if not _match(sub_term, sub_symbol, subst):
                return False
        return True
    if isinstance(term, ast.PoolTerm):
        raise GroundingError(
            "argument pools are only supported in rule heads and facts"
        )
    # Arithmetic / interval: evaluate and compare.
    value = evaluate_term(term, subst)
    return value is not None and value == symbol


def _match_trail(
    term: ast.Term,
    symbol: Symbol,
    subst: Dict[str, Symbol],
    trail: List[str],
) -> bool:
    """Like :func:`_match`, but records new bindings on ``trail``.

    The caller undoes a (possibly partial) match by deleting the trailed
    names from ``subst`` — the shared-dictionary replacement for the
    per-candidate ``dict(subst)`` copies of the naive join.
    """
    if isinstance(term, ast.Variable):
        bound = subst.get(term.name)
        if bound is None:
            subst[term.name] = symbol
            trail.append(term.name)
            return True
        return bound == symbol
    if isinstance(term, ast.SymbolTerm):
        return term.symbol == symbol
    if isinstance(term, ast.FunctionTerm):
        if (
            not isinstance(symbol, Function)
            or symbol.name != term.name
            or len(symbol.arguments) != len(term.arguments)
        ):
            return False
        for sub_term, sub_symbol in zip(term.arguments, symbol.arguments):
            if not _match_trail(sub_term, sub_symbol, subst, trail):
                return False
        return True
    if isinstance(term, ast.PoolTerm):
        raise GroundingError(
            "argument pools are only supported in rule heads and facts"
        )
    value = evaluate_term(term, subst)
    return value is not None and value == symbol


def _term_variables(term: ast.Term, out: Set[str]) -> None:
    if isinstance(term, ast.Variable):
        out.add(term.name)
    elif isinstance(term, ast.FunctionTerm):
        for argument in term.arguments:
            _term_variables(argument, out)
    elif isinstance(term, ast.BinaryTerm):
        _term_variables(term.lhs, out)
        _term_variables(term.rhs, out)
    elif isinstance(term, ast.UnaryTerm):
        _term_variables(term.argument, out)
    elif isinstance(term, ast.IntervalTerm):
        _term_variables(term.lower, out)
        _term_variables(term.upper, out)
    elif isinstance(term, ast.PoolTerm):
        for option in term.options:
            _term_variables(option, out)


def _complex_variables(term: ast.Term, out: Set[str]) -> None:
    """Variables occurring under arithmetic/interval operators (which can
    only be evaluated, never inverted, during matching)."""
    if isinstance(term, ast.FunctionTerm):
        for argument in term.arguments:
            _complex_variables(argument, out)
    elif isinstance(term, (ast.BinaryTerm, ast.UnaryTerm, ast.IntervalTerm, ast.PoolTerm)):
        _term_variables(term, out)


def literal_variables(literal: ast.Literal) -> Set[str]:
    """The set of variable names occurring in ``literal``."""
    out: Set[str] = set()
    if isinstance(literal.atom, ast.Comparison):
        _term_variables(literal.atom.lhs, out)
        _term_variables(literal.atom.rhs, out)
    else:
        _term_variables(literal.atom, out)
    return out


def ground_theory_term(term: ast.Term, subst: Dict[str, Symbol]) -> GroundTheoryTerm:
    """Ground a theory-element term, folding numeric arithmetic.

    Non-numeric structure (e.g. ``start(t1) - start(t2)`` or
    ``3 * use(m, l)``) is preserved as :class:`TheoryTermOp` for the
    background theory to interpret.
    """
    if isinstance(term, ast.IntervalTerm):
        return TheoryTermOp(
            "..",
            (
                ground_theory_term(term.lower, subst),
                ground_theory_term(term.upper, subst),
            ),
        )
    if isinstance(term, (ast.BinaryTerm, ast.UnaryTerm)):
        value = evaluate_term(term, subst)
        if value is not None:
            return value
        if isinstance(term, ast.BinaryTerm):
            return TheoryTermOp(
                term.op,
                (
                    ground_theory_term(term.lhs, subst),
                    ground_theory_term(term.rhs, subst),
                ),
            )
        return TheoryTermOp(term.op, (ground_theory_term(term.argument, subst),))
    value = evaluate_term(term, subst)
    if value is None:
        raise GroundingError(f"theory term {term} is not ground under {subst}")
    return value


# ---------------------------------------------------------------------------
# Dependency analysis
# ---------------------------------------------------------------------------

Signature = Tuple[str, int]


def _literal_signature(literal: ast.Literal) -> Optional[Signature]:
    if isinstance(literal.atom, ast.FunctionTerm):
        return (literal.atom.name, len(literal.atom.arguments))
    return None


def _rule_occurrences(rule: ast.Rule):
    """Yield ``(signature, needs_closed)`` for every predicate the rule uses."""
    for item in rule.body:
        if isinstance(item, ast.Literal):
            sig = _literal_signature(item)
            if sig is not None:
                yield sig, item.sign == 1
        else:  # aggregate
            for element in item.elements:
                for condition in element.condition:
                    sig = _literal_signature(condition)
                    if sig is not None:
                        yield sig, True
    head = rule.head
    if isinstance(head, ast.ChoiceHead):
        for element in head.elements:
            for condition in element.condition:
                sig = _literal_signature(condition)
                if sig is not None:
                    yield sig, True
    elif isinstance(head, ast.TheoryAtom):
        for element in head.elements:
            for condition in element.condition:
                sig = _literal_signature(condition)
                if sig is not None:
                    yield sig, True


def _rule_head_signatures(rule: ast.Rule) -> List[Signature]:
    head = rule.head
    if isinstance(head, ast.FunctionTerm):
        return [(head.name, len(head.arguments))]
    if isinstance(head, ast.ChoiceHead):
        return [
            (element.atom.name, len(element.atom.arguments)) for element in head.elements
        ]
    return []


# ---------------------------------------------------------------------------
# The grounder
# ---------------------------------------------------------------------------


@dataclass
class _AtomIndex:
    """Possible/fact atom bookkeeping with a per-signature index.

    Besides the per-signature candidate lists, the index maintains
    *argument-position hash buckets*: ``buckets[(sig, pos)]`` maps the
    ground symbol at argument ``pos`` to the candidates carrying it.  A
    position's bucket is built lazily on the first
    :meth:`candidates_at` probe and kept up to date by
    :meth:`add_possible` from then on, so only positions the join
    actually constrains pay for indexing.
    """

    by_signature: Dict[Signature, List[Function]] = field(default_factory=dict)
    possible: Set[Function] = field(default_factory=set)
    facts: Set[Function] = field(default_factory=set)
    buckets: Dict[Tuple[Signature, int], Dict[Symbol, List[Function]]] = field(
        default_factory=dict
    )
    #: Positions with a built bucket, per signature (maintenance list).
    indexed_positions: Dict[Signature, List[int]] = field(default_factory=dict)

    def add_possible(self, atom: Function) -> bool:
        if atom in self.possible:
            return False
        self.possible.add(atom)
        signature = atom.signature
        self.by_signature.setdefault(signature, []).append(atom)
        for position in self.indexed_positions.get(signature, ()):
            self.buckets[(signature, position)].setdefault(
                atom.arguments[position], []
            ).append(atom)
        return True

    def add_fact(self, atom: Function) -> bool:
        self.add_possible(atom)
        if atom in self.facts:
            return False
        self.facts.add(atom)
        return True

    def candidates(self, name: str, arity: int) -> Sequence[Function]:
        return self.by_signature.get((name, arity), ())

    def candidates_at(
        self, signature: Signature, position: int, value: Symbol
    ) -> Sequence[Function]:
        """Candidates of ``signature`` whose argument ``position`` is ``value``."""
        key = (signature, position)
        bucket = self.buckets.get(key)
        if bucket is None:
            bucket = {}
            for atom in self.by_signature.get(signature, ()):
                bucket.setdefault(atom.arguments[position], []).append(atom)
            self.buckets[key] = bucket
            self.indexed_positions.setdefault(signature, []).append(position)
        return bucket.get(value, ())


#: Argument-plan kinds: how a body-literal argument binds at join time.
_ARG_CONST = 0  # ground symbol, known at planning time
_ARG_VAR = 1  # a plain variable (looked up in the substitution)
_ARG_TERM = 2  # arithmetic/structured term (evaluated under the substitution)


class _LiteralPlan:
    """Per-literal join metadata, computed once per rule.

    Caches the variable sets (recomputed on every fixpoint iteration
    before) and classifies each argument position for index probing.
    """

    __slots__ = (
        "literal",
        "is_comparison",
        "signature",
        "atom",
        "variables",
        "complex_vars",
        "args",
    )

    def __init__(self, literal: ast.Literal):
        self.literal = literal
        atom = literal.atom
        self.atom = atom
        self.variables = frozenset(literal_variables(literal))
        self.is_comparison = isinstance(atom, ast.Comparison)
        if self.is_comparison:
            self.signature: Optional[Signature] = None
            self.complex_vars: frozenset = frozenset()
            self.args: Tuple[Tuple[int, object], ...] = ()
            return
        assert isinstance(atom, ast.FunctionTerm)
        self.signature = (atom.name, len(atom.arguments))
        complex_vars: Set[str] = set()
        _complex_variables(atom, complex_vars)
        self.complex_vars = frozenset(complex_vars)
        args: List[Tuple[int, object]] = []
        for argument in atom.arguments:
            if isinstance(argument, ast.SymbolTerm):
                args.append((_ARG_CONST, argument.symbol))
            elif isinstance(argument, ast.Variable):
                args.append((_ARG_VAR, argument.name))
            else:
                variables: Set[str] = set()
                _term_variables(argument, variables)
                value = None if variables else evaluate_term(argument, {})
                if value is not None:
                    args.append((_ARG_CONST, value))
                else:
                    args.append((_ARG_TERM, argument))
        self.args = tuple(args)


class _RulePlan:
    """Per-rule instantiation metadata: body split, occurrence cache.

    ``guards`` and ``var_doms`` are filled by the grounder when domain
    pruning is active: eagerly evaluable comparison literals (with their
    variable sets) and per-variable abstract domains used as join-time
    pre-filters.
    """

    __slots__ = (
        "rule",
        "positives",
        "positive_literals",
        "others",
        "occurrences",
        "head_signatures",
        "guards",
        "var_doms",
    )

    def __init__(self, rule: ast.Rule, is_binder) -> None:
        self.rule = rule
        self.guards: Tuple[Tuple[ast.Literal, frozenset], ...] = ()
        self.var_doms: Optional[Dict[str, object]] = None
        self.positive_literals: List[ast.Literal] = []
        self.others: List[ast.BodyItem] = []
        for item in rule.body:
            if (
                isinstance(item, ast.Literal)
                and item.sign == 0
                and isinstance(item.atom, ast.FunctionTerm)
            ):
                self.positive_literals.append(item)
            elif is_binder(item):
                self.positive_literals.append(item)
            else:
                self.others.append(item)
        self.positives = [_LiteralPlan(lit) for lit in self.positive_literals]
        self.occurrences: List[Tuple[Signature, bool]] = list(
            _rule_occurrences(rule)
        )
        self.head_signatures: List[Signature] = _rule_head_signatures(rule)


class Grounder:
    """Instantiates a non-ground program into :class:`GroundRule` objects.

    Two instantiation strategies share the scheduling, simplification,
    and emission machinery:

    * ``mode="seminaive"`` (default) — per-batch delta evaluation with
      argument-indexed, selectivity-ordered joins and trail-based
      bind/undo matching;
    * ``mode="naive"`` — the original full-join fixpoint, kept as the
      differential-testing reference.
    """

    def __init__(
        self,
        program: ast.Program,
        mode: str = "seminaive",
        domain_prune: Optional[bool] = None,
    ):
        if mode not in ("seminaive", "naive"):
            raise ValueError(f"unknown grounding mode {mode!r}")
        self._mode = mode
        self._rules = [
            self._substitute_constants(rule, program.constants) for rule in program.rules
        ]
        self._plans = [_RulePlan(rule, self._is_binder) for rule in self._rules]
        self._index = _AtomIndex()
        self._emitted: Set[object] = set()
        self._output: List[GroundRule] = []
        self._closed: Set[Signature] = set()
        self._open: Set[Signature] = set()
        #: Literal-variable caches for the naive join (satellite of the
        #: plan caches: conditions and the reference path use these).
        self._literal_vars: Dict[int, Set[str]] = {}
        self._literal_complex_vars: Dict[int, Set[str]] = {}
        # Semi-naive delta bookkeeping (per batch).
        self._track_delta = False
        self._delta_next: Dict[Signature, Dict[Function, None]] = {}
        # Domain-analysis pruning: the naive mode stays the untouched
        # differential reference, so pruning only arms the semi-naive path.
        if domain_prune is None:
            domain_prune = domain_prune_default()
        self._domain_prune = bool(domain_prune) and mode == "seminaive"
        self.domain_analysis = None
        self._dead_rules: Set[int] = set()
        self.statistics = GroundingStatistics(
            mode=mode, domain_prune=self._domain_prune
        )
        if self._domain_prune:
            self._prepare_domain_pruning(program)

    def _prepare_domain_pruning(self, program: ast.Program) -> None:
        """Run the abstract domain analysis and attach its verdicts to the
        rule plans: provably-dead rules are skipped outright; eagerly
        evaluable comparison guards and per-variable domain filters prune
        the indexed join.  Soundness of the analysis guarantees the
        emitted ground program is identical with pruning off (enforced by
        the ``domain-soundness`` fuzz oracle) — an analysis failure
        therefore just disables pruning instead of failing the grounding.
        """
        from repro.analysis.domains import analyze_rules

        try:
            analysis = analyze_rules(self._rules, program.externals)
        except Exception:
            self._domain_prune = False
            self.statistics.domain_prune = False
            return
        self.domain_analysis = analysis
        self._dead_rules = set(analysis.dead)
        self.statistics.domain_seconds = analysis.seconds
        self.statistics.domain_predicates = len(analysis.domains)
        self.statistics.domain_widenings = analysis.widenings
        for index, plan in enumerate(self._plans):
            env = analysis.envs.get(index)
            if env is None:
                continue
            statically_true = analysis.true_comparisons.get(index, ())
            guards = []
            for position, item in enumerate(plan.rule.body):
                if (
                    isinstance(item, ast.Literal)
                    and isinstance(item.atom, ast.Comparison)
                    and not self._is_binder(item)
                    and position not in statically_true
                ):
                    guards.append((item, frozenset(literal_variables(item))))
            plan.guards = tuple(guards)
            var_doms = {
                name: dom for name, dom in env.items() if not dom.is_top
            }
            plan.var_doms = var_doms or None

    # -- #const substitution --------------------------------------------------

    @staticmethod
    def _substitute_constants(rule: ast.Rule, constants: Dict[str, ast.Term]) -> ast.Rule:
        if not constants:
            return rule

        def sub_term(term: ast.Term) -> ast.Term:
            if isinstance(term, ast.FunctionTerm):
                if not term.arguments and term.name in constants:
                    return constants[term.name]
                return ast.FunctionTerm(
                    term.name, tuple(sub_term(a) for a in term.arguments)
                )
            if isinstance(term, ast.BinaryTerm):
                return ast.BinaryTerm(term.op, sub_term(term.lhs), sub_term(term.rhs))
            if isinstance(term, ast.UnaryTerm):
                return ast.UnaryTerm(term.op, sub_term(term.argument))
            if isinstance(term, ast.IntervalTerm):
                return ast.IntervalTerm(sub_term(term.lower), sub_term(term.upper))
            if isinstance(term, ast.PoolTerm):
                return ast.PoolTerm(tuple(sub_term(o) for o in term.options))
            return term

        def sub_atom(atom: ast.FunctionTerm) -> ast.FunctionTerm:
            # Predicate names are never substituted, only arguments.
            return ast.FunctionTerm(atom.name, tuple(sub_term(a) for a in atom.arguments))

        def sub_literal(literal: ast.Literal) -> ast.Literal:
            atom = literal.atom
            if isinstance(atom, ast.Comparison):
                return ast.Literal(
                    literal.sign,
                    ast.Comparison(atom.op, sub_term(atom.lhs), sub_term(atom.rhs)),
                    location=literal.location,
                )
            return ast.Literal(literal.sign, sub_atom(atom), location=literal.location)

        def sub_guard(guard):
            if guard is None:
                return None
            return (guard[0], sub_term(guard[1]))

        def sub_body_item(item: ast.BodyItem) -> ast.BodyItem:
            if isinstance(item, ast.Literal):
                return sub_literal(item)
            return ast.Aggregate(
                item.sign,
                item.function,
                tuple(
                    ast.AggregateElement(
                        tuple(sub_term(t) for t in e.terms),
                        tuple(sub_literal(c) for c in e.condition),
                    )
                    for e in item.elements
                ),
                sub_guard(item.left_guard),
                sub_guard(item.right_guard),
                location=item.location,
            )

        head = rule.head
        if isinstance(head, ast.FunctionTerm):
            head = sub_atom(head)
        elif isinstance(head, ast.ChoiceHead):
            head = ast.ChoiceHead(
                tuple(
                    ast.ChoiceElement(
                        sub_atom(e.atom), tuple(sub_literal(c) for c in e.condition)
                    )
                    for e in head.elements
                ),
                sub_term(head.lower) if head.lower is not None else None,
                sub_term(head.upper) if head.upper is not None else None,
            )
        elif isinstance(head, ast.TheoryAtom):
            head = ast.TheoryAtom(
                head.name,
                tuple(sub_term(a) for a in head.arguments),
                tuple(
                    ast.TheoryElement(
                        tuple(sub_term(t) for t in e.terms),
                        tuple(sub_literal(c) for c in e.condition),
                    )
                    for e in head.elements
                ),
                sub_guard(head.guard),
            )
        return ast.Rule(
            head,
            tuple(sub_body_item(b) for b in rule.body),
            location=rule.location,
        )

    # -- component scheduling ---------------------------------------------------

    def _schedule(self) -> List[List[int]]:
        """Group rule indices into batches following the dependency condensation.

        The graph is bipartite: signature nodes and rule nodes.  A rule
        node depends on every signature it reads; every signature a rule
        defines depends on the rule node.  Batches are SCCs in topological
        order; a rule in a batch may read its own batch's signatures only
        through plain positive/negative literals (checked by the caller).
        """
        graph = nx.DiGraph()
        for i, plan in enumerate(self._plans):
            rule_node = ("rule", i)
            graph.add_node(rule_node)
            for sig, _needs_closed in plan.occurrences:
                graph.add_edge(rule_node, ("sig", sig))
            for sig in plan.head_signatures:
                graph.add_edge(("sig", sig), rule_node)
        condensation = nx.condensation(graph)
        batches: List[List[int]] = []
        members: Dict[int, List[int]] = {}
        for node, component in condensation.graph["mapping"].items():
            if node[0] == "rule":
                members.setdefault(component, []).append(node[1])
        self._component_sigs: Dict[int, Set[Signature]] = {}
        for node, component in condensation.graph["mapping"].items():
            if node[0] == "sig":
                self._component_sigs.setdefault(component, set()).add(node[1])
        # Topological order of the condensation puts *consumers* first
        # (edges point rule -> used signature); reverse it so that a
        # rule's dependencies are grounded before the rule itself.
        order = list(reversed(list(nx.topological_sort(condensation))))
        self._batch_order = order
        for component in order:
            batches.append(sorted(members.get(component, [])))
        return batches

    # -- fixpoint ---------------------------------------------------------------

    def ground(self) -> List[GroundRule]:
        """Run the component-wise grounding fixpoint; return the ground rules."""
        started = perf_counter()
        self._check_safety()
        batches = self._schedule()
        for component, rule_indices in zip(self._batch_order, batches):
            sigs = self._component_sigs.get(component, set())
            self._open = set(sigs)
            self._check_batch(rule_indices)
            if self._mode == "seminaive":
                self._ground_batch_seminaive(rule_indices)
            else:
                self._ground_batch_naive(rule_indices)
            self._closed |= sigs
            self._open = set()
        self.statistics.seconds += perf_counter() - started
        return self._output

    def _check_safety(self) -> None:
        """Pre-grounding safety check: reject rules whose variables would
        crash instantiation, naming the rule and its source location
        instead of failing mid-join with a bare ``unsafe literal``
        message.  The runtime checks in :meth:`_ground_literal` /
        :meth:`_ground_head` stay as a backstop.
        """
        from repro.analysis.safety import display_name, fatal_violations

        for rule in self._rules:
            violations = fatal_violations(rule)
            if not violations:
                continue
            names = ", ".join(
                sorted({display_name(v.variable) for v in violations})
            )
            first = violations[0]
            where = ""
            if first.location is not None:
                where = f" at {first.location}"
            raise GroundingError(
                f"unsafe variable(s) {names} in {first.context} "
                f"of rule `{rule}`{where}"
            )

    def _ground_batch_naive(self, rule_indices: List[int]) -> None:
        """Full-join fixpoint over the batch (reference strategy)."""
        passes = 0
        changed = True
        while changed:
            passes += 1
            changed = False
            for index in rule_indices:
                if self._ground_rule(index):
                    changed = True
        self.statistics.delta_rounds += max(passes - 1, 0)

    def _ground_batch_seminaive(self, rule_indices: List[int]) -> None:
        """Semi-naive delta evaluation of one batch.

        The first round is a full indexed join per rule.  From then on,
        only rule instantiations binding at least one atom whose status
        changed in the previous round (*newly possible* or *newly a
        fact* — fact transitions re-trigger simplified re-emission) are
        derived: the join is re-run once per positive open-signature
        literal, restricted to the delta atoms at that position.  Batches
        without recursion through an open signature finish after the
        first round — there is no verification pass to pay for.
        """
        plans = []
        for index in rule_indices:
            if index in self._dead_rules:
                self.statistics.rules_skipped += 1
                continue
            plans.append(self._plans[index])
        delta_plans: List[Tuple[_RulePlan, List[int]]] = []
        for plan in plans:
            positions = [
                j
                for j, literal_plan in enumerate(plan.positives)
                if literal_plan.signature is not None
                and literal_plan.signature in self._open
            ]
            if positions:
                delta_plans.append((plan, positions))
        self._track_delta = bool(delta_plans)
        self._delta_next = {}
        for plan in plans:
            self._ground_rule_indexed(plan)
        while self._delta_next:
            delta, self._delta_next = self._delta_next, {}
            self.statistics.delta_rounds += 1
            for plan, positions in delta_plans:
                for j in positions:
                    atoms = delta.get(plan.positives[j].signature)
                    if atoms:
                        self._ground_rule_indexed(plan, j, list(atoms))
        self._track_delta = False

    def _check_batch(self, rule_indices: List[int]) -> None:
        """Reject recursion through aggregates or element conditions."""
        for index in rule_indices:
            rule = self._rules[index]
            for sig, needs_closed in self._plans[index].occurrences:
                if needs_closed and sig in self._open:
                    # Plain negative body literals are tolerated (negative
                    # recursion); conditions/aggregates are not.
                    if self._is_condition_occurrence(rule, sig):
                        raise GroundingError(
                            f"predicate {sig[0]}/{sig[1]} is used in an aggregate or "
                            f"element condition of a rule in its own dependency "
                            f"component (recursive aggregates are not supported)"
                        )

    @staticmethod
    def _is_condition_occurrence(rule: ast.Rule, sig: Signature) -> bool:
        def in_conditions(conditions) -> bool:
            return any(_literal_signature(c) == sig for c in conditions)

        for item in rule.body:
            if isinstance(item, ast.Aggregate):
                if any(in_conditions(e.condition) for e in item.elements):
                    return True
        head = rule.head
        if isinstance(head, ast.ChoiceHead):
            if any(in_conditions(e.condition) for e in head.elements):
                return True
        if isinstance(head, ast.TheoryAtom):
            if any(in_conditions(e.condition) for e in head.elements):
                return True
        return False

    @property
    def possible_atoms(self) -> Set[Function]:
        return self._index.possible

    @property
    def fact_atoms(self) -> Set[Function]:
        return self._index.facts

    # -- rule instantiation -------------------------------------------------

    @staticmethod
    def _is_binder(item: ast.BodyItem) -> bool:
        """``X = term`` / ``term = X`` positive equalities act as
        generators during the join (gringo's assignment idiom, incl.
        intervals: ``X = 1..n``)."""
        return (
            isinstance(item, ast.Literal)
            and item.sign == 0
            and isinstance(item.atom, ast.Comparison)
            and item.atom.op == "="
            and (
                isinstance(item.atom.lhs, ast.Variable)
                or isinstance(item.atom.rhs, ast.Variable)
            )
        )

    def _ground_rule(self, index: int) -> bool:
        plan = self._plans[index]
        changed = False
        for subst in self._join(plan.positive_literals, {}):
            if self._emit_instance(
                plan.rule, plan.positive_literals, plan.others, subst
            ):
                changed = True
        return changed

    def _join(
        self, positives: List[ast.Literal], subst: Dict[str, Symbol]
    ) -> Iterator[Dict[str, Symbol]]:
        """Backtracking join of positive body literals against possible atoms.

        Literals are selected greedily by fewest unbound variables so that
        arithmetic subterms are evaluable (safety-driven reordering).
        """
        if not positives:
            yield dict(subst)
            return
        index = self._select_literal(positives, subst)
        literal = positives[index]
        remaining = positives[:index] + positives[index + 1 :]
        atom = literal.atom
        if isinstance(atom, ast.Comparison):
            # Binder: enumerate the values of the ground side.
            variable, source = self._binder_parts(atom, subst)
            if variable is None:
                # Both sides ground by now: an ordinary equality test.
                lhs = evaluate_term(atom.lhs, subst)
                rhs_values = evaluate_term_all(atom.rhs, subst)
                if lhs is not None and lhs in rhs_values:
                    yield from self._join(remaining, subst)
                return
            for value in evaluate_term_all(source, subst):
                local = dict(subst)
                if _match(variable, value, local):
                    yield from self._join(remaining, local)
            return
        assert isinstance(atom, ast.FunctionTerm)
        # Candidate lists are append-only within a batch: snapshotting the
        # length gives the same iteration-time view as copying the list,
        # without the per-step allocation.
        candidates = self._index.candidates(atom.name, len(atom.arguments))
        for position in range(len(candidates)):
            candidate = candidates[position]
            local = dict(subst)
            if _match(atom, candidate, local):
                yield from self._join(remaining, local)

    @staticmethod
    def _binder_parts(comparison: ast.Comparison, subst: Dict[str, Symbol]):
        """Split ``X = term`` into (variable side, value side); the
        variable side is None when already bound."""
        lhs, rhs = comparison.lhs, comparison.rhs
        if isinstance(lhs, ast.Variable) and lhs.name not in subst:
            return lhs, rhs
        if isinstance(rhs, ast.Variable) and rhs.name not in subst:
            return rhs, lhs
        return None, None

    def _cached_literal_vars(self, literal: ast.Literal) -> Set[str]:
        """Memoized :func:`literal_variables` (AST literals are stable
        objects, recomputing their variable set per fixpoint pass was
        pure waste)."""
        key = id(literal)
        cached = self._literal_vars.get(key)
        if cached is None:
            cached = literal_variables(literal)
            self._literal_vars[key] = cached
        return cached

    def _cached_complex_vars(self, atom: ast.FunctionTerm) -> Set[str]:
        key = id(atom)
        cached = self._literal_complex_vars.get(key)
        if cached is None:
            cached = set()
            _complex_variables(atom, cached)
            self._literal_complex_vars[key] = cached
        return cached

    def _select_literal(self, positives: List[ast.Literal], subst: Dict[str, Symbol]) -> int:
        """Pick the next positive literal to match.

        Literals whose arithmetic subterms are fully bound are preferred
        (they can actually be matched), binders whose value side is bound
        count as immediately evaluable; ties are broken by fewest unbound
        variables.
        """
        best = 0
        best_key = None
        for i, literal in enumerate(positives):
            atom = literal.atom
            if isinstance(atom, ast.Comparison):
                variable, source = self._binder_parts(atom, subst)
                if variable is None:
                    source_vars: Set[str] = set()
                    _term_variables(atom.lhs, source_vars)
                    _term_variables(atom.rhs, source_vars)
                else:
                    source_vars = set()
                    _term_variables(source, source_vars)
                blocked = len(source_vars - subst.keys())
                unbound = len(self._cached_literal_vars(literal) - subst.keys())
            else:
                assert isinstance(atom, ast.FunctionTerm)
                blocked = len(self._cached_complex_vars(atom) - subst.keys())
                unbound = len(self._cached_literal_vars(literal) - subst.keys())
            key = (blocked, unbound)
            if best_key is None or key < best_key:
                best, best_key = i, key
                if key == (0, 0):
                    break
        return best

    # -- indexed, trail-based join (semi-naive path) -------------------------

    def _ground_rule_indexed(
        self,
        plan: _RulePlan,
        delta_position: Optional[int] = None,
        delta_atoms: Optional[List[Function]] = None,
    ) -> None:
        """Instantiate one rule through the indexed join.

        With a ``delta_position``, the join is restricted: that literal
        may only bind atoms from ``delta_atoms`` (the batch's previous
        round delta), which is what makes re-evaluation semi-naive.  The
        restricted literal still participates in normal selectivity
        ordering, so arithmetic safety is preserved.
        """
        restrict = None
        if delta_position is not None:
            restrict = (plan.positives[delta_position], delta_atoms)
        guards = plan.guards if self._domain_prune else ()
        var_doms = plan.var_doms if self._domain_prune else None
        for subst in self._join_indexed(
            plan.positives, {}, restrict, guards, var_doms
        ):
            self._emit_instance(
                plan.rule, plan.positive_literals, plan.others, subst
            )

    def _join_indexed(
        self,
        plans: List[_LiteralPlan],
        subst: Dict[str, Symbol],
        restrict: Optional[Tuple[_LiteralPlan, List[Function]]] = None,
        guards: Sequence[Tuple[ast.Literal, frozenset]] = (),
        var_doms: Optional[Dict[str, object]] = None,
    ) -> Iterator[Dict[str, Symbol]]:
        """Backtracking join over literal plans with argument indexing.

        The substitution dictionary is *shared*: bindings are recorded on
        a trail and undone on backtracking instead of copying the dict
        per candidate.  Yielded substitutions are only valid until the
        generator is advanced — :meth:`_emit_instance` consumes them
        synchronously.

        ``guards`` holds comparison literals from the rule's ``others``
        that are evaluated *eagerly* as soon as their variables are bound
        (domain pruning): a failing guard rejects the partial
        substitution before the remaining literals multiply it out.  The
        comparisons stay in ``others`` too, so emission re-checks them —
        pruning can only skip work, never change the output.
        ``var_doms`` maps variables to their abstract domains; a freshly
        bound value outside its domain can never complete a full match
        and is rejected immediately.
        """
        if guards:
            passed, guards = self._eval_ready_guards(guards, subst)
            if not passed:
                return
        if not plans:
            yield subst
            return
        index, candidates = self._select_plan(plans, subst, restrict)
        plan = plans[index]
        remaining = plans[:index] + plans[index + 1 :]
        if plan.is_comparison:
            atom = plan.atom
            variable, source = self._binder_parts(atom, subst)
            if variable is None:
                lhs = evaluate_term(atom.lhs, subst)
                rhs_values = evaluate_term_all(atom.rhs, subst)
                if lhs is not None and lhs in rhs_values:
                    yield from self._join_indexed(
                        remaining, subst, restrict, guards, var_doms
                    )
                return
            trail: List[str] = []
            for value in evaluate_term_all(source, subst):
                if _match_trail(variable, value, subst, trail):
                    if self._trail_in_domains(trail, subst, var_doms):
                        yield from self._join_indexed(
                            remaining, subst, restrict, guards, var_doms
                        )
                for name in trail:
                    del subst[name]
                trail.clear()
            return
        if restrict is not None and plan is restrict[0]:
            restrict = None  # the delta literal is being bound right here
        atom = plan.atom
        trail = []
        # Length snapshot: candidates appended during emission are picked
        # up by the next delta round, not by the running iteration.
        for position in range(len(candidates)):
            if _match_trail(atom, candidates[position], subst, trail):
                if self._trail_in_domains(trail, subst, var_doms):
                    yield from self._join_indexed(
                        remaining, subst, restrict, guards, var_doms
                    )
            for name in trail:
                del subst[name]
            trail.clear()

    def _eval_ready_guards(
        self,
        guards: Sequence[Tuple[ast.Literal, frozenset]],
        subst: Dict[str, Symbol],
    ) -> Tuple[bool, Sequence[Tuple[ast.Literal, frozenset]]]:
        """Evaluate every guard whose variables are all bound.

        Returns ``(False, ())`` when one fails (the partial substitution
        is rejected) or ``(True, remaining)`` with the still-pending
        guards.  Guards that are bound but not evaluable (interval
        comparisons) are left for :meth:`_emit_instance`, which treats
        them exactly as the unpruned path would.
        """
        consumed = False
        remaining: List[Tuple[ast.Literal, frozenset]] = []
        for entry in guards:
            literal, variables = entry
            if variables <= subst.keys():
                consumed = True
                atom = literal.atom
                lhs = evaluate_term(atom.lhs, subst)
                rhs = evaluate_term(atom.rhs, subst)
                if lhs is None or rhs is None:
                    continue  # not evaluable here: emission will decide
                holds = evaluate_comparison(atom.op, lhs, rhs)
                if literal.sign == 1:
                    holds = not holds
                if not holds:
                    self.statistics.pruned_instances += 1
                    return False, ()
            else:
                remaining.append(entry)
        if not consumed:
            return True, guards
        return True, remaining

    def _trail_in_domains(
        self,
        trail: List[str],
        subst: Dict[str, Symbol],
        var_doms: Optional[Dict[str, object]],
    ) -> bool:
        """Check freshly trailed bindings against their abstract domains."""
        if not var_doms:
            return True
        for name in trail:
            dom = var_doms.get(name)
            if dom is not None and not dom.contains(subst[name]):
                self.statistics.pruned_instances += 1
                return False
        return True

    def _probe(
        self, plan: _LiteralPlan, subst: Dict[str, Symbol]
    ) -> Sequence[Function]:
        """Smallest candidate pool for ``plan`` under ``subst``.

        Every argument position whose value is determined (constant,
        bound variable, or evaluable term) probes its hash bucket; the
        smallest bucket wins.  Unconstrained literals fall back to the
        full per-signature list.
        """
        signature = plan.signature
        best: Optional[Sequence[Function]] = None
        best_size = -1
        for position, (kind, payload) in enumerate(plan.args):
            if kind == _ARG_CONST:
                value = payload
            elif kind == _ARG_VAR:
                value = subst.get(payload)
                if value is None:
                    continue
            else:
                value = evaluate_term(payload, subst)
                if value is None:
                    continue
            bucket = self._index.candidates_at(signature, position, value)
            size = len(bucket)
            if not size:
                return ()
            if best is None or size < best_size:
                best, best_size = bucket, size
        if best is None:
            return self._index.candidates(signature[0], signature[1])
        return best

    def _select_plan(
        self,
        plans: List[_LiteralPlan],
        subst: Dict[str, Symbol],
        restrict: Optional[Tuple[_LiteralPlan, List[Function]]],
    ) -> Tuple[int, Optional[Sequence[Function]]]:
        """Selectivity-ordered literal selection.

        The key extends the naive ``(blocked, unbound)`` order with the
        candidate-pool size in the middle: among matchable literals the
        one with the smallest indexed bucket is joined first.  Returns
        the chosen index together with its (already probed) candidate
        pool so the caller does not probe twice.
        """
        best = 0
        best_key = None
        best_candidates: Optional[Sequence[Function]] = None
        for i, plan in enumerate(plans):
            candidates: Optional[Sequence[Function]] = None
            if plan.is_comparison:
                atom = plan.atom
                variable, source = self._binder_parts(atom, subst)
                if variable is None:
                    source_vars: Set[str] = set()
                    _term_variables(atom.lhs, source_vars)
                    _term_variables(atom.rhs, source_vars)
                    estimate = 0  # a decided comparison filters immediately
                else:
                    source_vars = set()
                    _term_variables(source, source_vars)
                    estimate = 1  # a binder generates, prefer empty pools
                blocked = len(source_vars - subst.keys())
            else:
                blocked = len(plan.complex_vars - subst.keys())
                if restrict is not None and plan is restrict[0]:
                    candidates = restrict[1]
                else:
                    candidates = self._probe(plan, subst)
                estimate = len(candidates)
            unbound = len(plan.variables - subst.keys())
            key = (blocked, estimate, unbound)
            if best_key is None or key < best_key:
                best, best_key, best_candidates = i, key, candidates
                if blocked == 0 and estimate == 0:
                    break
        return best, best_candidates

    def _emit_instance(
        self,
        rule: ast.Rule,
        positives: List[ast.Literal],
        others: List[ast.BodyItem],
        subst: Dict[str, Symbol],
    ) -> bool:
        """Instantiate non-positive body parts and the head; emit the rule."""
        self.statistics.instantiations += 1
        body: List[GroundLiteral] = []
        # Keep matched positive literals that are not (closed) facts
        # (binder equalities are fully resolved by the join).
        for literal in positives:
            if isinstance(literal.atom, ast.Comparison):
                continue
            value = evaluate_term(literal.atom, subst)
            assert isinstance(value, Function)
            if value not in self._index.facts:
                body.append((0, value))

        aggregates: List[GroundAggregate] = []
        for item in others:
            if isinstance(item, ast.Literal):
                status = self._ground_literal(item, subst, body)
                if status is False:
                    return False
            else:
                aggregate = self._ground_aggregate(item, subst)
                if aggregate is False:
                    return False
                if aggregate is not None:
                    aggregates.append(aggregate)

        heads = self._ground_head(rule.head, subst)

        changed = False
        for head in heads:
            key = (head, tuple(body), tuple(aggregates))
            if key in self._emitted:
                continue
            self._emitted.add(key)
            ground = GroundRule(head, tuple(body), tuple(aggregates))
            self._output.append(ground)
            changed = True
            changed |= self._register_head(head, ground)
        return changed

    def _register_head(self, head: object, ground: GroundRule) -> bool:
        changed = False
        if isinstance(head, Function):
            if not ground.body and not ground.aggregates:
                # add_fact reports possible->fact transitions too: those
                # re-trigger simplified re-emission in the delta rounds.
                if self._index.add_fact(head):
                    changed = True
                    self._note_delta(head)
            else:
                if self._index.add_possible(head):
                    changed = True
                    self._note_delta(head)
        elif isinstance(head, GroundChoice):
            for atom, _condition in head.elements:
                if self._index.add_possible(atom):
                    changed = True
                    self._note_delta(atom)
        return changed

    def _note_delta(self, atom: Function) -> None:
        """Record an atom whose status changed, for the next delta round."""
        if self._track_delta and atom.signature in self._open:
            self._delta_next.setdefault(atom.signature, {})[atom] = None

    # -- body parts -----------------------------------------------------------

    def _ground_literal(
        self,
        literal: ast.Literal,
        subst: Dict[str, Symbol],
        out: List[GroundLiteral],
    ) -> bool:
        """Ground one comparison or negative literal.

        Returns ``False`` to drop the whole instance; appends to ``out``
        when the literal must be kept.
        """
        atom = literal.atom
        if isinstance(atom, ast.Comparison):
            lhs = evaluate_term(atom.lhs, subst)
            rhs = evaluate_term(atom.rhs, subst)
            if lhs is None or rhs is None:
                raise GroundingError(f"comparison {atom} not fully bound under {subst}")
            holds = evaluate_comparison(atom.op, lhs, rhs)
            if literal.sign == 1:
                holds = not holds
            return holds
        value = evaluate_term(atom, subst)
        if value is None:
            raise GroundingError(f"unsafe literal {literal} under {subst}")
        assert isinstance(value, Function)
        if literal.sign == 1:
            if value.signature in self._open:
                # Same-component negation: keep unsimplified; the
                # translator resolves never-possible atoms to false.
                out.append((1, value))
                return True
            if value not in self._index.possible:
                return True  # trivially true
            if value in self._index.facts:
                return False  # trivially false
            out.append((1, value))
            return True
        # A positive literal can reach here only via element conditions.
        if value in self._index.facts:
            return True
        if value not in self._index.possible:
            return False
        out.append((0, value))
        return True

    def _ground_condition(
        self, condition: Sequence[ast.Literal], subst: Dict[str, Symbol]
    ) -> Iterator[Tuple[Dict[str, Symbol], Tuple[GroundLiteral, ...]]]:
        """Instantiate an element condition (choice/aggregate/theory).

        Yields ``(extended_subst, kept_literals)`` per instance; condition
        literals that are facts are simplified away.  Condition predicates
        are guaranteed closed by :meth:`_check_batch`.
        """
        positives = [
            c
            for c in condition
            if (c.sign == 0 and isinstance(c.atom, ast.FunctionTerm))
            or self._is_binder(c)
        ]
        others = [c for c in condition if c not in positives]
        for local in self._join(positives, subst):
            kept: List[GroundLiteral] = []
            ok = True
            for c in positives:
                if isinstance(c.atom, ast.Comparison):
                    continue  # binder: resolved by the join
                value = evaluate_term(c.atom, local)
                assert isinstance(value, Function)
                if value not in self._index.facts:
                    kept.append((0, value))
            for c in others:
                if not self._ground_literal(c, local, kept):
                    ok = False
                    break
            if ok:
                yield local, tuple(kept)

    def _ground_aggregate(self, aggregate: ast.Aggregate, subst: Dict[str, Symbol]):
        """Ground a body aggregate.

        Returns a :class:`GroundAggregate`, ``None`` when trivially true,
        or ``False`` when trivially false.
        """
        groups: Dict[Tuple[Symbol, ...], List[Tuple[GroundLiteral, ...]]] = {}
        order: List[Tuple[Symbol, ...]] = []
        for element in aggregate.elements:
            for local, kept in self._ground_condition(element.condition, subst):
                terms = tuple(evaluate_term(t, local) for t in element.terms)
                if any(t is None for t in terms):
                    raise GroundingError(
                        f"aggregate element terms {element.terms} not bound"
                    )
                if terms not in groups:
                    groups[terms] = []
                    order.append(terms)
                groups[terms].append(kept)
        elements = []
        for terms in order:
            conditions = groups[terms]
            if any(not c for c in conditions):
                conditions = [()]  # one condition is a fact: tuple always holds
            elements.append(
                GroundAggregateElement(terms, tuple(dict.fromkeys(conditions)))
            )

        def guard_value(guard) -> Optional[Tuple[str, int]]:
            if guard is None:
                return None
            op, term = guard
            value = evaluate_term(term, subst)
            if not isinstance(value, Number):
                raise GroundingError(f"aggregate guard {term} is not an integer")
            return (op, value.value)

        ground = GroundAggregate(
            aggregate.sign,
            aggregate.function,
            tuple(elements),
            guard_value(aggregate.left_guard),
            guard_value(aggregate.right_guard),
        )
        return self._simplify_aggregate(ground)

    @staticmethod
    def _simplify_aggregate(aggregate: GroundAggregate):
        """Evaluate an aggregate whose elements are all decided."""
        if any(element.conditions != ((),) for element in aggregate.elements):
            return aggregate
        if aggregate.function == "count":
            # #count has set semantics over whole tuples: elements carry
            # no integer weight (completion/naive already count each
            # tuple as 1), so .weight must not be evaluated here.
            value: Optional[int] = len(aggregate.elements)
        elif aggregate.function == "sum":
            value = sum(element.weight for element in aggregate.elements)
        elif aggregate.function == "min":
            weights = [element.weight for element in aggregate.elements]
            value = min(weights) if weights else None  # empty: #sup
        elif aggregate.function == "max":
            weights = [element.weight for element in aggregate.elements]
            value = max(weights) if weights else None  # empty: #inf
        else:
            raise GroundingError(f"unknown aggregate {aggregate.function!r}")
        holds = True
        for guard in (aggregate.left_guard, aggregate.right_guard):
            if guard is None:
                continue
            if value is None:
                # Empty #min (= #sup) exceeds every bound; empty #max
                # (= #inf) undercuts every bound.
                if aggregate.function == "min":
                    holds = holds and guard[0] in (">", ">=", "!=")
                else:
                    holds = holds and guard[0] in ("<", "<=", "!=")
            else:
                holds = holds and evaluate_comparison(
                    guard[0], Number(value), Number(guard[1])
                )
        if aggregate.sign == 1:
            holds = not holds
        return None if holds else False

    # -- heads ------------------------------------------------------------------

    def _ground_head(self, head: ast.Head, subst: Dict[str, Symbol]) -> List[object]:
        """Instantiate the head; returns a list of ground heads."""
        if head is None:
            return [None]
        if isinstance(head, ast.FunctionTerm):
            atoms = evaluate_term_all(head, subst)
            if not atoms:
                raise GroundingError(f"head {head} not bound under {subst}")
            for atom in atoms:
                if not isinstance(atom, Function):
                    raise GroundingError(f"head {atom} is not an atom")
            return atoms
        if isinstance(head, ast.ChoiceHead):
            elements: List[Tuple[Function, Tuple[GroundLiteral, ...]]] = []
            for element in head.elements:
                for local, kept in self._ground_condition(element.condition, subst):
                    for atom in evaluate_term_all(element.atom, local):
                        if not isinstance(atom, Function):
                            raise GroundingError(f"choice atom {atom} is not an atom")
                        elements.append((atom, kept))
            elements = list(dict.fromkeys(elements))

            def bound(term: Optional[ast.Term]) -> Optional[int]:
                if term is None:
                    return None
                value = evaluate_term(term, subst)
                if not isinstance(value, Number):
                    raise GroundingError(f"choice bound {term} is not an integer")
                return value.value

            return [GroundChoice(tuple(elements), bound(head.lower), bound(head.upper))]
        if isinstance(head, ast.TheoryAtom):
            arguments = tuple(evaluate_term(a, subst) for a in head.arguments)
            if any(a is None for a in arguments):
                raise GroundingError(f"theory atom arguments {head.arguments} not bound")
            elements = []
            for element in head.elements:
                for local, kept in self._ground_condition(element.condition, subst):
                    terms = tuple(ground_theory_term(t, local) for t in element.terms)
                    elements.append((terms, kept))
            guard = None
            if head.guard is not None:
                op, term = head.guard
                value = evaluate_term(term, subst)
                if value is None:
                    raise GroundingError(f"theory guard {term} not bound")
                guard = (op, value)
            return [
                GroundTheoryAtom(head.name, arguments, tuple(dict.fromkeys(elements)), guard)
            ]
        raise GroundingError(f"unsupported head {head!r}")


def ground_program(
    program: ast.Program,
    mode: str = "seminaive",
    domain_prune: Optional[bool] = None,
) -> Tuple[List[GroundRule], Set[Function], Set[Function]]:
    """Ground ``program``; returns (rules, possible atoms, fact atoms)."""
    grounder = Grounder(program, mode=mode, domain_prune=domain_prune)
    rules = grounder.ground()
    return rules, grounder.possible_atoms, grounder.fact_atoms

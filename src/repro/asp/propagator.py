"""The clingo-style propagator interface for background theories.

Theory and application propagators (linear arithmetic, difference logic,
the DSE dominance propagator) implement :class:`TheoryPropagator`:

* ``init(init)`` — called once after grounding with a
  :class:`PropagatorInit` giving access to ground theory atoms, symbolic
  atoms and watch registration;
* ``propagate(solver, changes)`` / ``undo(solver, level)`` / ``check(solver)``
  — inherited from :class:`repro.asp.solver.PropagatorBase`, called during
  search;
* ``model_values(solver)`` — optional hook invoked on a total assignment
  to snapshot theory values (schedules, objective vectors) into the
  :class:`repro.asp.control.Model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.asp.completion import Translation
from repro.asp.grounder import GroundTheoryAtom
from repro.asp.solver import PropagatorBase, Solver
from repro.asp.syntax import Function

__all__ = ["PropagatorInit", "TheoryPropagator"]


@dataclass
class PropagatorInit:
    """Grounding results handed to ``TheoryPropagator.init``."""

    solver: Solver
    translation: Translation

    @property
    def true_lit(self) -> int:
        return self.translation.true_lit

    @property
    def theory_atoms(self) -> List[Tuple[GroundTheoryAtom, int]]:
        """Ground theory atoms with their solver literals."""
        return sorted(
            self.translation.theory_vars.items(), key=lambda item: item[1]
        )

    def solver_literal(self, atom: Function) -> int:
        """Solver literal of a symbolic atom (constant for facts/absent)."""
        return self.translation.atom_lit(atom)

    def symbolic_atoms(self) -> Dict[Function, int]:
        """All symbolic atoms with dedicated solver variables."""
        return dict(self.translation.atom_vars)

    def add_watch(self, lit: int, propagator: PropagatorBase) -> None:
        self.solver.add_propagator_watch(lit, propagator)

    def add_clause(self, lits: List[int]) -> bool:
        return self.solver.add_clause(lits)


class TheoryPropagator(PropagatorBase):
    """Base class for background-theory propagators."""

    def init(self, init: PropagatorInit) -> None:
        """Inspect theory atoms, create state, register watches."""

    def model_values(self, solver: Solver) -> Dict[str, object]:
        """Snapshot theory values on a total assignment (optional)."""
        return {}

"""Unfounded-set propagation for non-tight programs.

Clark completion admits circular justifications (e.g. ``a :- b. b :- a.``
lets ``{a, b}`` satisfy all clauses), so for programs whose positive
dependency graph has cycles the solver runs this propagator.  It tracks,
per non-trivial strongly connected component, which atoms are *founded* —
derivable through a support whose body is not false and whose
same-component positive atoms are themselves founded — and falsifies the
rest with *loop nogoods*:

    unfounded atom  ->  disjunction of the external supports of the set

where an external support of an unfounded set ``U`` is the body of a rule
whose head lies in ``U`` but whose positive atoms avoid ``U``.  All such
bodies are false whenever ``U`` is unfounded, so the added clause either
propagates the atom to false or raises a conflict the CDCL core resolves.

The recomputation is triggered lazily: the propagator watches the
negation of every support body literal and re-evaluates only components
with newly-false supports (plus one final sweep in ``check``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.asp.completion import Translation
from repro.asp.solver import PropagatorBase, Solver
from repro.asp.syntax import Function

__all__ = ["UnfoundedSetPropagator"]


class UnfoundedSetPropagator(PropagatorBase):
    """Source-tracking unfounded-set check over non-trivial SCCs."""

    def __init__(self, translation: Translation):
        self._translation = translation
        sccs = translation.program.nontrivial_sccs()
        #: Per component: {atom: [(support_lit, internal_atoms)]}.
        self._components: List[Dict[Function, List[Tuple[int, Tuple[Function, ...]]]]] = []
        self._watch_to_components: Dict[int, List[int]] = {}
        for scc in sccs:
            members = {
                atom for atom in scc if atom in translation.atom_vars
            }
            if not members:
                continue
            component: Dict[Function, List[Tuple[int, Tuple[Function, ...]]]] = {}
            index = len(self._components)
            for atom in sorted(members):
                entries = []
                for support in translation.supports.get(atom, []):
                    internal = tuple(a for a in support.positive_atoms if a in members)
                    entries.append((support.literal, internal))
                    self._watch_to_components.setdefault(-support.literal, []).append(
                        index
                    )
                component[atom] = entries
            self._components.append(component)
        self._dirty: Set[int] = set(range(len(self._components)))

    @property
    def tracked_components(self) -> int:
        return len(self._components)

    def on_attach(self, solver: Solver) -> None:
        if not self._components:
            return
        for lit in sorted(self._watch_to_components):
            solver.add_propagator_watch(lit, self)
        # Ensure an initial propagation round even without support events.
        solver.add_propagator_watch(self._translation.true_lit, self)

    def propagate(self, solver: Solver, changes: Sequence[int]) -> bool:
        for lit in changes:
            if lit == self._translation.true_lit:
                self._dirty.update(range(len(self._components)))
            for index in self._watch_to_components.get(lit, ()):
                self._dirty.add(index)
        while self._dirty:
            index = self._dirty.pop()
            if not self._process(solver, index):
                return False
        return True

    def undo(self, solver: Solver, level: int) -> None:
        # Backtracking can only make supports non-false, which enlarges the
        # founded set; no unfounded atoms can appear, so nothing to do.
        pass

    def check(self, solver: Solver) -> bool:
        for index in range(len(self._components)):
            if not self._process(solver, index):
                return False
        return True

    # -- core -------------------------------------------------------------------

    def _process(self, solver: Solver, index: int) -> bool:
        component = self._components[index]
        founded: Set[Function] = set()
        changed = True
        while changed:
            changed = False
            for atom, entries in component.items():
                if atom in founded:
                    continue
                for support_lit, internal in entries:
                    if solver.value(support_lit) is False:
                        continue
                    if all(dep in founded for dep in internal):
                        founded.add(atom)
                        changed = True
                        break
        unfounded = [atom for atom in component if atom not in founded]
        if not unfounded:
            return True
        unfounded_set = set(unfounded)
        external: List[int] = []
        for atom in unfounded:
            for support_lit, internal in component[atom]:
                if not any(dep in unfounded_set for dep in internal):
                    if support_lit not in external:
                        external.append(support_lit)
        atom_vars = self._translation.atom_vars
        for atom in unfounded:
            var = atom_vars[atom]
            if solver.value(var) is False:
                continue
            if not solver.add_propagator_clause([-var] + external):
                return False
        return True

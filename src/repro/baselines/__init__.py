"""Baselines the paper's approach is compared against.

* :mod:`repro.baselines.exhaustive` — enumerate *every* implementation
  and filter the non-dominated ones (ground truth on small instances),
  plus the "solution-level evaluation only" ASPmT variant (dominance
  checked on total assignments, no partial-assignment pruning).
* :mod:`repro.baselines.epsilon` — the classic exact alternative:
  repeated single-objective branch-and-bound under epsilon-constraints
  (Klein–Hannan splitting), each solve using the
  :class:`repro.dse.explorer.ObjectiveBoundPropagator`.
* :mod:`repro.baselines.nsga2` — a self-contained NSGA-II heuristic over
  bindings with shortest-path routing (the inexact comparison point of
  Fig. 1).
"""

from repro.baselines.epsilon import BranchAndBoundMinimizer, epsilon_constraint_front
from repro.baselines.exhaustive import exhaustive_front, solution_level_front
from repro.baselines.nsga2 import nsga2_front
from repro.baselines.result import BaselineResult

__all__ = [
    "BaselineResult",
    "BranchAndBoundMinimizer",
    "epsilon_constraint_front",
    "exhaustive_front",
    "nsga2_front",
    "solution_level_front",
]

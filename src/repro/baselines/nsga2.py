"""NSGA-II heuristic baseline.

A compact, dependency-free NSGA-II over the binding design space:

* genome — one mapping-option index per task,
* routing — deterministic shortest path (by delay) between the bound
  resources; this restriction makes the heuristic fast but means parts of
  the exact front (which may use longer-but-cheaper routes) are simply
  unreachable for it,
* objectives — recomputed from first principles via
  :func:`repro.synthesis.solution.recompute_objectives`.

Used as the inexact comparison point in the Fig. 1 benchmark: NSGA-II
finds a good approximation quickly, while the paper's method returns the
provably complete front.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.dse.pareto import dominates, pareto_filter
from repro.synthesis.model import Specification
from repro.synthesis.solution import Implementation, recompute_objectives
from repro.baselines.result import BaselineResult

__all__ = ["nsga2_front", "shortest_path_routes"]


def shortest_path_routes(
    spec: Specification, binding: Dict[str, str]
) -> Optional[Dict[str, List[str]]]:
    """Delay-shortest routes for every message under ``binding``.

    Unicast messages get the shortest path; multicast messages grow a
    Steiner-like tree greedily (nearest target first), keeping in-degree
    one so the result stays a feasible route tree.  Returns None when
    some endpoint pair is not connected.
    """
    graph = spec.architecture.graph()
    routes: Dict[str, List[str]] = {}
    for message in spec.application.messages:
        src = binding[message.source]
        tree_nodes = {src}
        links: List[str] = []
        pending = {binding[t] for t in message.targets} - tree_nodes
        while pending:
            grown = _grow_tree(graph, tree_nodes, pending)
            if grown is None:
                return None
            new_links, new_nodes, reached = grown
            links.extend(new_links)
            tree_nodes |= new_nodes
            pending.discard(reached)
        routes[message.name] = links
    return routes


def _grow_tree(graph: nx.DiGraph, tree_nodes, targets):
    """Dijkstra from the whole tree to the nearest pending target.

    Path interiors avoid existing tree nodes, so attaching the path
    preserves the in-degree-one tree invariant.  Returns
    ``(links, new_nodes, reached_target)`` or None if unreachable.
    """
    import heapq

    dist = {node: 0 for node in tree_nodes}
    prev: Dict[str, Tuple[str, str]] = {}  # node -> (parent, link name)
    heap = [(0, node) for node in tree_nodes]
    heapq.heapify(heap)
    reached: Optional[str] = None
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist.get(node, float("inf")):
            continue
        if node in targets:
            reached = node
            break
        for _u, successor, data in graph.out_edges(node, data=True):
            if successor in tree_nodes:
                continue
            link = data["link"]
            candidate = d + link.delay
            if candidate < dist.get(successor, float("inf")):
                dist[successor] = candidate
                prev[successor] = (node, link.name)
                heapq.heappush(heap, (candidate, successor))
    if reached is None:
        return None
    links: List[str] = []
    new_nodes = set()
    current = reached
    while current not in tree_nodes:
        parent, link_name = prev[current]
        links.append(link_name)
        new_nodes.add(current)
        current = parent
    links.reverse()
    return links, new_nodes, reached


def _evaluate(
    spec: Specification,
    genome: Tuple[int, ...],
    options: List[List],
    names: Sequence[str],
) -> Optional[Tuple[Tuple[int, ...], Implementation]]:
    binding = {
        task.name: options[i][genome[i]].resource
        for i, task in enumerate(spec.application.tasks)
    }
    routes = shortest_path_routes(spec, binding)
    if routes is None:
        return None
    implementation = Implementation(binding=binding, routes=routes)
    objectives = recompute_objectives(spec, implementation)
    implementation.objectives = objectives
    vector = tuple(objectives[name] for name in names)
    return vector, implementation


def _non_dominated_sort(vectors: List[Tuple[int, ...]]) -> List[int]:
    """Front rank per individual (0 = non-dominated)."""
    n = len(vectors)
    ranks = [0] * n
    dominated_by = [0] * n
    dominates_list: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if dominates(vectors[i], vectors[j]):
                dominates_list[i].append(j)
            elif dominates(vectors[j], vectors[i]):
                dominated_by[i] += 1
    current = [i for i in range(n) if dominated_by[i] == 0]
    rank = 0
    while current:
        nxt = []
        for i in current:
            ranks[i] = rank
            for j in dominates_list[i]:
                dominated_by[j] -= 1
                if dominated_by[j] == 0:
                    nxt.append(j)
        current = nxt
        rank += 1
    return ranks


def _crowding(vectors: List[Tuple[int, ...]], indices: List[int]) -> Dict[int, float]:
    """Crowding distance within one front."""
    distance = {i: 0.0 for i in indices}
    if len(indices) <= 2:
        for i in indices:
            distance[i] = float("inf")
        return distance
    k = len(vectors[0])
    for dim in range(k):
        ordered = sorted(indices, key=lambda i: vectors[i][dim])
        lo = vectors[ordered[0]][dim]
        hi = vectors[ordered[-1]][dim]
        distance[ordered[0]] = float("inf")
        distance[ordered[-1]] = float("inf")
        if hi == lo:
            continue
        for pos in range(1, len(ordered) - 1):
            gap = vectors[ordered[pos + 1]][dim] - vectors[ordered[pos - 1]][dim]
            distance[ordered[pos]] += gap / (hi - lo)
    return distance


def nsga2_front(
    spec: Specification,
    objectives: Sequence[str] = ("latency", "energy", "cost"),
    population: int = 24,
    generations: int = 30,
    seed: int = 0,
    mutation_rate: float = 0.2,
) -> BaselineResult:
    """Run NSGA-II; returns the final non-dominated approximation."""
    started = time.perf_counter()
    rng = random.Random(seed)
    names = tuple(objectives)
    options = [spec.options_of(task.name) for task in spec.application.tasks]
    genome_length = len(options)

    def random_genome() -> Tuple[int, ...]:
        return tuple(rng.randrange(len(opts)) for opts in options)

    evaluations = 0
    cache: Dict[Tuple[int, ...], Optional[Tuple[Tuple[int, ...], Implementation]]] = {}

    def evaluate(genome: Tuple[int, ...]):
        nonlocal evaluations
        if genome not in cache:
            evaluations += 1
            cache[genome] = _evaluate(spec, genome, options, names)
        return cache[genome]

    # Initial population (connected individuals only, with a retry cap).
    pop: List[Tuple[int, ...]] = []
    attempts = 0
    while len(pop) < population and attempts < population * 20:
        attempts += 1
        genome = random_genome()
        if evaluate(genome) is not None:
            pop.append(genome)
    if not pop:
        return BaselineResult(
            method="nsga2", objectives=names, front={}, exact=False,
            wall_time=time.perf_counter() - started,
        )

    archive: Dict[Tuple[int, ...], Implementation] = {}

    def record(genome: Tuple[int, ...]) -> None:
        result = evaluate(genome)
        if result is not None:
            vector, implementation = result
            archive.setdefault(vector, implementation)

    for genome in pop:
        record(genome)

    for _generation in range(generations):
        vectors = [evaluate(g)[0] for g in pop]
        ranks = _non_dominated_sort(vectors)
        crowding: Dict[int, float] = {}
        by_rank: Dict[int, List[int]] = {}
        for i, rank in enumerate(ranks):
            by_rank.setdefault(rank, []).append(i)
        for indices in by_rank.values():
            crowding.update(_crowding(vectors, indices))

        def tournament() -> Tuple[int, ...]:
            a, b = rng.randrange(len(pop)), rng.randrange(len(pop))
            if (ranks[a], -crowding[a]) <= (ranks[b], -crowding[b]):
                return pop[a]
            return pop[b]

        offspring: List[Tuple[int, ...]] = []
        while len(offspring) < population:
            mother, father = tournament(), tournament()
            child = tuple(
                (m if rng.random() < 0.5 else f) for m, f in zip(mother, father)
            )
            child = tuple(
                rng.randrange(len(options[i]))
                if rng.random() < mutation_rate
                else gene
                for i, gene in enumerate(child)
            )
            if evaluate(child) is not None:
                offspring.append(child)
                record(child)
        merged = pop + offspring
        merged_vectors = [evaluate(g)[0] for g in merged]
        merged_ranks = _non_dominated_sort(merged_vectors)
        merged_by_rank: Dict[int, List[int]] = {}
        for i, rank in enumerate(merged_ranks):
            merged_by_rank.setdefault(rank, []).append(i)
        survivors: List[int] = []
        for rank in sorted(merged_by_rank):
            indices = merged_by_rank[rank]
            if len(survivors) + len(indices) <= population:
                survivors.extend(indices)
            else:
                crowd = _crowding(merged_vectors, indices)
                indices.sort(key=lambda i: -crowd[i])
                survivors.extend(indices[: population - len(survivors)])
                break
        pop = [merged[i] for i in survivors]

    front = dict(pareto_filter(archive.items()))
    return BaselineResult(
        method="nsga2",
        objectives=names,
        front=front,
        exact=False,
        evaluations=evaluations,
        wall_time=time.perf_counter() - started,
    )

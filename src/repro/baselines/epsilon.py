"""Exact epsilon-constraint baseline.

The classic way to obtain an exact Pareto front from a single-objective
exact solver: repeatedly lexicographically minimize the objectives under
upper bounds ("epsilons") on the non-primary objectives, then split the
bound space at every point found (Klein & Hannan).  Each single-objective
minimization is a branch-and-bound loop over the same ASPmT solver,
pruning with :class:`repro.dse.explorer.ObjectiveBoundPropagator`.

Bound *relaxations* between epsilon steps would invalidate pruning
clauses learned earlier, so every epsilon step runs in a fresh *epoch*:
a fresh activation variable is assumed, and all pruning clauses of the
step carry its negation.  Bounds only ever tighten within an epoch.

The method is exact but needs one solver descent per front point and per
bound split — the number of single-objective runs grows roughly with
``|front|^(k-1)``, which is the scaling disadvantage against the
single-run dominance-propagating DSE that Table II demonstrates.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.asp.control import Control
from repro.dse.explorer import ObjectiveBoundPropagator
from repro.dse.pareto import pareto_filter
from repro.synthesis.encoding import EncodedInstance
from repro.synthesis.solution import Implementation, decode_model
from repro.theory.linear import LinearPropagator
from repro.baselines.result import BaselineResult

__all__ = ["BranchAndBoundMinimizer", "epsilon_constraint_front"]


class BranchAndBoundMinimizer:
    """Incremental lexicographic minimization over one ASPmT solver."""

    def __init__(self, instance: EncodedInstance, conflict_limit: Optional[int] = None):
        self.instance = instance
        self.names = tuple(o.name for o in instance.objectives)
        self.control = Control()
        self.control.conflict_limit = conflict_limit
        self.linear = LinearPropagator()
        self.bound = ObjectiveBoundPropagator(instance.objectives, self.linear)
        self.control.add(instance.program)
        self.control.register_propagator(self.linear)
        self.control.register_propagator(self.bound)
        self.control.ground()
        self.solver_calls = 0
        self.models = 0
        self.interrupted = False

    def _new_epoch(self, bounds: Dict[str, int]) -> int:
        activation = self.control.solver.new_var()
        self.bound.activation = activation
        self.bound.bounds = dict(bounds)
        return activation

    def _solve_once(self, activation: int):
        self.solver_calls += 1
        captured: List = []

        def on_model(model):
            captured.append(model)
            return False

        summary = self.control.solve(
            on_model=on_model,
            models=1,
            block=False,
            assumption_literals=[activation],
        )
        if summary.interrupted:
            self.interrupted = True
        if captured:
            self.models += 1
            return captured[0]
        return None

    def lex_minimize(
        self, upper_bounds: Dict[str, int]
    ) -> Optional[Tuple[Tuple[int, ...], Implementation]]:
        """Lexicographically minimize the objectives under ``upper_bounds``.

        Returns ``(vector, implementation)`` of the lexicographic optimum,
        or None when the bounds are infeasible (or the budget ran out).
        """
        bounds = dict(upper_bounds)
        best_model = None
        for index, name in enumerate(self.names):
            activation = self._new_epoch(bounds)
            incumbent: Optional[int] = None
            while True:
                model = self._solve_once(activation)
                if model is None:
                    break
                best_model = model
                incumbent = model.theory["objectives"][name]
                self.bound.bounds[name] = incumbent - 1
            if self.interrupted:
                return None
            if incumbent is None:
                return None  # infeasible under the given bounds
            bounds[name] = incumbent  # fix the optimum for later objectives
        assert best_model is not None
        vector = tuple(best_model.theory["objectives"][n] for n in self.names)
        implementation = decode_model(self.instance.specification, best_model)
        implementation.objectives = dict(zip(self.names, vector))
        return vector, implementation


def epsilon_constraint_front(
    instance: EncodedInstance,
    conflict_limit: Optional[int] = None,
    max_solves: Optional[int] = None,
) -> BaselineResult:
    """Exact Pareto front by epsilon-constraint splitting."""
    started = time.perf_counter()
    minimizer = BranchAndBoundMinimizer(instance, conflict_limit=conflict_limit)
    names = minimizer.names
    front: Dict[Tuple[int, ...], Implementation] = {}
    visited: Set[Tuple[Optional[int], ...]] = set()
    # Bounds apply to objectives 1..k-1 (the primary one is minimized).
    stack: List[Tuple[Optional[int], ...]] = [tuple([None] * (len(names) - 1))]
    truncated = False
    while stack:
        key = stack.pop()
        if key in visited:
            continue
        visited.add(key)
        if max_solves is not None and minimizer.solver_calls >= max_solves:
            truncated = True
            break
        bounds = {
            names[i + 1]: bound for i, bound in enumerate(key) if bound is not None
        }
        point = minimizer.lex_minimize(bounds)
        if minimizer.interrupted:
            truncated = True
            break
        if point is None:
            continue
        vector, implementation = point
        front.setdefault(vector, implementation)
        for i in range(len(names) - 1):
            child = list(key)
            new_bound = vector[i + 1] - 1
            if child[i] is None or new_bound < child[i]:
                child[i] = new_bound
            else:
                continue
            stack.append(tuple(child))
    filtered = dict(pareto_filter(front.items()))
    return BaselineResult(
        method="epsilon-constraint",
        objectives=names,
        front=filtered,
        exact=not truncated,
        models_enumerated=minimizer.models,
        solver_calls=minimizer.solver_calls,
        conflicts=minimizer.control.statistics.conflicts,
        wall_time=time.perf_counter() - started,
        interrupted=truncated,
    )

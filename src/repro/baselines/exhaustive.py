"""Enumerate-and-filter baselines.

``exhaustive_front`` enumerates *every* answer set of the encoding (all
bindings x all routings), computes each objective vector, and filters the
non-dominated ones.  Exponential, but it is the independent ground truth
the exact DSE is validated against.

``solution_level_front`` is the intermediate point of the paper's
comparison: the same incremental ASPmT solver loop as the proposed
method, with the dominance check applied only to *total* assignments
(``partial_pruning=False``) — i.e. design points are still excluded
exactly, but subtrees are never cut early.  The gap between this and the
full method isolates the contribution of partial-assignment dominance
propagation (Fig. 3).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.asp.control import Control
from repro.dse.explorer import ExactParetoExplorer
from repro.dse.pareto import pareto_filter
from repro.synthesis.encoding import EncodedInstance
from repro.synthesis.solution import decode_model
from repro.theory.linear import LinearPropagator
from repro.baselines.result import BaselineResult

__all__ = ["exhaustive_front", "solution_level_front"]


def exhaustive_front(
    instance: EncodedInstance, conflict_limit: Optional[int] = None
) -> BaselineResult:
    """Enumerate all implementations, then Pareto-filter."""
    names = tuple(o.name for o in instance.objectives)
    spec = instance.specification
    started = time.perf_counter()

    control = Control()
    control.conflict_limit = conflict_limit
    linear = LinearPropagator()
    control.add(instance.program)
    control.register_propagator(linear)
    control.ground()

    points = []

    def on_model(model) -> None:
        implementation = decode_model(spec, model)
        vector = tuple(implementation.objectives[name] for name in names)
        implementation.objectives = dict(zip(names, vector))
        points.append((vector, implementation))

    summary = control.solve(on_model=on_model, models=0)
    front = dict(pareto_filter(points))
    return BaselineResult(
        method="exhaustive",
        objectives=names,
        front=front,
        exact=not summary.interrupted,
        models_enumerated=len(points),
        solver_calls=1,
        conflicts=control.statistics.conflicts,
        wall_time=time.perf_counter() - started,
        interrupted=summary.interrupted,
    )


def solution_level_front(
    instance: EncodedInstance, conflict_limit: Optional[int] = None
) -> BaselineResult:
    """ASPmT enumeration with dominance checks on total assignments only."""
    explorer = ExactParetoExplorer(
        instance,
        partial_pruning=False,
        conflict_limit=conflict_limit,
        validate_models=False,
    )
    result = explorer.run()
    front = {point.vector: point.implementation for point in result.front}
    return BaselineResult(
        method="solution-level",
        objectives=result.objectives,
        front=front,
        exact=not result.statistics.interrupted,
        models_enumerated=result.statistics.models_enumerated,
        solver_calls=1,
        conflicts=result.statistics.conflicts,
        wall_time=result.statistics.wall_time,
        interrupted=result.statistics.interrupted,
    )

"""Common result type for all DSE baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.synthesis.solution import Implementation

__all__ = ["BaselineResult"]


@dataclass
class BaselineResult:
    """A (claimed) Pareto front plus search-effort statistics.

    ``exact`` records whether the method guarantees the front is complete
    (exhaustive / epsilon-constraint / ASPmT variants) or heuristic
    (NSGA-II).
    """

    method: str
    objectives: Tuple[str, ...]
    front: Dict[Tuple[int, ...], Implementation]
    exact: bool
    models_enumerated: int = 0
    solver_calls: int = 0
    conflicts: int = 0
    evaluations: int = 0
    wall_time: float = 0.0
    interrupted: bool = False

    def vectors(self) -> List[Tuple[int, ...]]:
        return sorted(self.front)

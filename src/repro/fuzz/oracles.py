"""Pluggable differential and metamorphic oracles.

Every oracle runs one generated input through at least two independent
code paths and compares the results.  A mismatch raises
:class:`Divergence`; any other exception out of ``check`` is a *crash*
finding.  Oracles may raise :class:`Skip` when an input is outside
their domain (e.g. theory atoms for the naive solving oracle) — skips
are counted but are not findings.

The oracle matrix (see ``docs/FUZZING.md``):

====================  =======  ==================================================
oracle                input    compared paths
====================  =======  ==================================================
``grounding``         program  semi-naive vs naive grounder (rules, atom universe)
``solving``           program  CDNL pipeline vs brute-force stable-model check
``pickle``            program  ``GroundProgram`` bytes round-trip + replayed solve
``lint``              program  lint-clean implies grounds-without-error
``reorder``           program  rule reordering leaves the ground rule set intact
``front``             spec     exact explorer vs exhaustive vs parallel workers
``scale``             spec     objective scaling maps the front pointwise
``rename``            spec     task/resource renaming leaves the front invariant
``solver-core``       any      flat vs reference CDNL core (models and fronts)
``symmetry-front``    spec     lex-leader symmetry breaking leaves the front invariant
``domain-soundness``  program  derived atoms lie in inferred domains; pruning is inert
``serve-cache``       spec     canonical digests identify renamed twins; remapped
                               witnesses stay valid; perturbations change the digest
====================  =======  ==================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.asp.control import Control, ground_text
from repro.asp.ground import GroundProgram
from repro.asp.naive import naive_answer_sets
from repro.asp.parser import ParseError
from repro.baselines.exhaustive import exhaustive_front
from repro.dse.explorer import ExactParetoExplorer
from repro.dse.parallel import ParallelParetoExplorer
from repro.fuzz.generators import ProgramInput, SpecInput
from repro.synthesis.encoding import encode
from repro.synthesis.model import (
    Application,
    Architecture,
    Link,
    MappingOption,
    Message,
    Resource,
    Specification,
    Task,
)

__all__ = [
    "Divergence",
    "Skip",
    "Oracle",
    "ORACLES",
    "oracle_names",
    "select_oracles",
]


class Divergence(AssertionError):
    """Two independently-computed results disagree."""

    def __init__(self, oracle: str, message: str):
        super().__init__(f"[{oracle}] {message}")
        self.oracle = oracle
        self.message = message


class Skip(Exception):
    """The input is outside this oracle's domain (not a finding)."""


class Oracle:
    """Base class: ``name``, input ``kind``, and a ``check`` method."""

    name = "oracle"
    kind = "program"  # or "spec", or "any" (dispatches on input type)

    def check(self, input) -> None:
        raise NotImplementedError

    def diverge(self, message: str) -> None:
        raise Divergence(self.name, message)


# ---------------------------------------------------------------------------
# Program oracles
# ---------------------------------------------------------------------------

#: Cap on models enumerated per side in solve-comparing oracles.
MODEL_CAP = 256


def _ground_outcome(text: str, mode: str):
    """Ground ``text``; returns (rules, possible, facts) or the error."""
    try:
        program = ground_text(text, cache=False, mode=mode)
    except ParseError:
        raise
    except Exception as error:  # GroundingError and friends
        return ("error", type(error).__name__)
    return (
        frozenset(str(rule) for rule in program.rules),
        program.possible,
        program.facts,
    )


def _cdnl_models(
    text: str,
    program: Optional[GroundProgram] = None,
    solver_core: Optional[str] = None,
):
    """Up to MODEL_CAP answer sets through the full CDNL pipeline."""
    control = Control(solver_core=solver_core)
    if program is None:
        control.add(text)
        control.ground(cache=False)
    else:
        control.ground(program=program)
    models: List[frozenset] = []
    control.solve(
        on_model=lambda m: models.append(frozenset(str(s) for s in m.symbols)),
        models=MODEL_CAP,
    )
    return sorted(models, key=sorted)


class GroundingOracle(Oracle):
    """Semi-naive and naive grounding must be bit-identical."""

    name = "grounding"
    kind = "program"

    def check(self, input: ProgramInput) -> None:
        try:
            naive = _ground_outcome(input.text, "naive")
            semi = _ground_outcome(input.text, "seminaive")
        except ParseError:
            raise Skip("program does not parse")
        if naive[0] == "error" or semi[0] == "error":
            if naive != semi:
                self.diverge(
                    f"grounding outcome differs: naive={naive[1] if naive[0] == 'error' else 'ok'}, "
                    f"seminaive={semi[1] if semi[0] == 'error' else 'ok'}"
                )
            return
        if naive[0] != semi[0]:
            only_naive = sorted(naive[0] - semi[0])[:3]
            only_semi = sorted(semi[0] - naive[0])[:3]
            self.diverge(
                f"ground rules differ (naive-only {only_naive}, "
                f"seminaive-only {only_semi})"
            )
        if naive[1] != semi[1] or naive[2] != semi[2]:
            self.diverge("possible/fact atom universes differ")


class SolvingOracle(Oracle):
    """The CDNL stack must agree with the brute-force stable-model check."""

    name = "solving"
    kind = "program"

    def check(self, input: ProgramInput) -> None:
        if input.has_theory:
            raise Skip("theory atoms")
        try:
            want = naive_answer_sets(input.text, limit=1 << 14)
        except (ValueError, NotImplementedError) as error:
            raise Skip(str(error))
        except ParseError:
            raise Skip("program does not parse")
        if len(want) >= MODEL_CAP:
            raise Skip("too many answer sets for a full comparison")
        got = _cdnl_models(input.text)
        want_sets = sorted(
            (frozenset(str(atom) for atom in model) for model in want),
            key=sorted,
        )
        if got != want_sets:
            self.diverge(
                f"answer sets differ: cdnl found {len(got)}, "
                f"naive oracle found {len(want_sets)}"
            )


class PickleOracle(Oracle):
    """``GroundProgram`` bytes round-trip, then solves identically."""

    name = "pickle"
    kind = "program"

    def check(self, input: ProgramInput) -> None:
        try:
            program = ground_text(input.text, cache=False)
        except ParseError:
            raise Skip("program does not parse")
        except Exception:
            raise Skip("program does not ground")
        restored = GroundProgram.from_bytes(program.to_bytes())
        if {str(r) for r in program.rules} != {str(r) for r in restored.rules}:
            self.diverge("rules changed across the pickle round-trip")
        if (
            program.possible != restored.possible
            or program.facts != restored.facts
            or program.shows != restored.shows
            or program.externals != restored.externals
        ):
            self.diverge("atom universe changed across the pickle round-trip")
        if input.has_theory:
            return  # solving theory programs needs registered propagators
        fresh = _cdnl_models(input.text)
        replayed = _cdnl_models(input.text, program=restored)
        if len(fresh) >= MODEL_CAP or len(replayed) >= MODEL_CAP:
            raise Skip("model cap reached; comparison would be truncated")
        if fresh != replayed:
            self.diverge(
                f"restored artifact solves differently: {len(fresh)} vs "
                f"{len(replayed)} models"
            )


class LintOracle(Oracle):
    """A lint-clean program must ground without error."""

    name = "lint"
    kind = "program"

    def check(self, input: ProgramInput) -> None:
        from repro.analysis import lint_text

        report = lint_text(input.text, filename=f"<fuzz-{input.seed}>")
        if report.errors:
            raise Skip("lint reports errors")
        try:
            ground_text(input.text, cache=False)
        except Exception as error:
            self.diverge(
                f"lint-clean program failed to ground: "
                f"{type(error).__name__}: {error}"
            )


class ReorderOracle(Oracle):
    """Rule reordering must leave the ground rule set (and models) intact."""

    name = "reorder"
    kind = "program"

    def check(self, input: ProgramInput) -> None:
        lines = [line for line in input.text.splitlines() if line.strip()]
        if len(lines) < 2:
            raise Skip("single-rule program")
        shuffled = list(lines)
        random.Random(f"fuzz-reorder-{input.seed}").shuffle(shuffled)
        reordered = "\n".join(shuffled)
        try:
            base = ground_text(input.text, cache=False)
        except Exception:
            raise Skip("program does not ground")
        try:
            permuted = ground_text(reordered, cache=False)
        except Exception as error:
            self.diverge(
                f"reordered program fails to ground: {type(error).__name__}"
            )
        if {str(r) for r in base.rules} != {str(r) for r in permuted.rules}:
            self.diverge("ground rule set changed under rule reordering")
        if input.has_theory:
            return
        base_models = _cdnl_models(input.text)
        permuted_models = _cdnl_models(reordered)
        if len(base_models) >= MODEL_CAP or len(permuted_models) >= MODEL_CAP:
            # Both enumerations were truncated at the cap; the subsets
            # legitimately differ with enumeration order.
            return
        if base_models != permuted_models:
            self.diverge("answer sets changed under rule reordering")


# ---------------------------------------------------------------------------
# Specification oracles
# ---------------------------------------------------------------------------


def _front_vectors(
    spec_input: SpecInput,
    specification: Optional[Specification] = None,
    solver_core: Optional[str] = None,
) -> List[Tuple[int, ...]]:
    """The exact front of the instance, via the reference explorer."""
    instance = encode(
        specification or spec_input.specification,
        objectives=spec_input.objectives,
        latency_bound=spec_input.latency_bound,
    )
    result = ExactParetoExplorer(
        instance, validate_models=False, solver_core=solver_core
    ).run()
    return result.vectors()


class FrontOracle(Oracle):
    """Exact explorer vs exhaustive enumeration vs parallel workers."""

    name = "front"
    kind = "spec"

    def check(self, input: SpecInput) -> None:
        instance = encode(
            input.specification,
            objectives=input.objectives,
            latency_bound=input.latency_bound,
        )
        exact = ExactParetoExplorer(instance, validate_models=True).run()
        truth = exhaustive_front(instance)
        if exact.vectors() != truth.vectors():
            self.diverge(
                f"explorer front {exact.vectors()} != exhaustive front "
                f"{truth.vectors()}"
            )
        parallel = ParallelParetoExplorer(
            instance, jobs=2, backend="inline"
        ).run()
        if parallel.vectors() != truth.vectors():
            self.diverge(
                f"parallel front {parallel.vectors()} != exhaustive front "
                f"{truth.vectors()}"
            )


class ScaleOracle(Oracle):
    """Scaling one objective's weights scales that front axis exactly."""

    name = "scale"
    kind = "spec"

    def check(self, input: SpecInput) -> None:
        scalable = [o for o in input.objectives if o in ("energy", "cost")]
        if not scalable:
            raise Skip("no scalable objective")
        objective = scalable[0]
        axis = input.objectives.index(objective)
        factor = 2 + input.seed % 3
        spec = input.specification
        if objective == "energy":
            # The energy objective sums mapping energies (bind atoms) and
            # link energies x message size (route atoms): both weight
            # families must scale for the axis to scale.
            mappings = tuple(
                replace(option, energy=option.energy * factor)
                for option in spec.mappings
            )
            links = tuple(
                replace(link, energy=link.energy * factor)
                for link in spec.architecture.links
            )
            scaled_arch = Architecture(spec.architecture.resources, links)
            scaled = Specification(spec.application, scaled_arch, mappings)
        else:
            resources = tuple(
                replace(res, cost=res.cost * factor)
                for res in spec.architecture.resources
            )
            scaled_arch = Architecture(resources, spec.architecture.links)
            scaled = Specification(spec.application, scaled_arch, spec.mappings)
        base = _front_vectors(input)
        scaled_front = _front_vectors(input, specification=scaled)
        unscaled = sorted(
            tuple(
                value // factor if i == axis else value
                for i, value in enumerate(vector)
            )
            for vector in scaled_front
        )
        remainders = [
            vector[axis] % factor for vector in scaled_front
        ]
        if any(remainders) or unscaled != base:
            self.diverge(
                f"front not invariant under {objective} x{factor} scaling: "
                f"base {base}, scaled {scaled_front}"
            )


def _rename_spec(spec: Specification, tag: str) -> Specification:
    """Rename every task and resource (order-scrambling prefix)."""
    task_map = {
        task.name: f"{tag}t{i}_{task.name}"
        for i, task in enumerate(reversed(spec.application.tasks))
    }
    res_map = {
        res.name: f"{tag}r{i}_{res.name}"
        for i, res in enumerate(reversed(spec.architecture.resources))
    }
    tasks = tuple(
        Task(task_map[task.name], deadline=task.deadline)
        for task in spec.application.tasks
    )
    messages = tuple(
        Message(
            message.name,
            task_map[message.source],
            task_map[message.target],
            size=message.size,
            extra_targets=tuple(task_map[t] for t in message.extra_targets),
        )
        for message in spec.application.messages
    )
    resources = tuple(
        Resource(res_map[res.name], cost=res.cost)
        for res in spec.architecture.resources
    )
    links = tuple(
        Link(
            f"{tag}l{i}_{link.name}",
            res_map[link.source],
            res_map[link.target],
            delay=link.delay,
            energy=link.energy,
        )
        for i, link in enumerate(spec.architecture.links)
    )
    mappings = tuple(
        MappingOption(
            task_map[o.task], res_map[o.resource], wcet=o.wcet, energy=o.energy
        )
        for o in spec.mappings
    )
    return Specification(
        Application(tasks, messages), Architecture(resources, links), mappings
    )


class RenameOracle(Oracle):
    """Task/resource renaming must leave the front invariant."""

    name = "rename"
    kind = "spec"

    def check(self, input: SpecInput) -> None:
        renamed = _rename_spec(input.specification, tag="zz")
        base = _front_vectors(input)
        permuted = _front_vectors(input, specification=renamed)
        if base != permuted:
            self.diverge(
                f"front changed under renaming: {base} != {permuted}"
            )


class SolverCoreOracle(Oracle):
    """The flat and reference CDNL cores are interchangeable engines.

    On programs both cores must enumerate the same stable-model set; on
    specifications both must produce the same exact Pareto front.  This
    is the solver-level twin of the ``grounding`` oracle (semi-naive vs
    naive): the reference object solver is the executable specification
    the flat array core (:mod:`repro.asp.flatsolver`) is held against.
    """

    name = "solver-core"
    kind = "any"  # dispatches on the input type

    def check(self, input) -> None:
        if isinstance(input, SpecInput):
            self._check_spec(input)
        else:
            self._check_program(input)

    def _check_program(self, input: ProgramInput) -> None:
        if input.has_theory:
            raise Skip("theory atoms")  # needs registered propagators
        try:
            program = ground_text(input.text, cache=False)
        except ParseError:
            raise Skip("program does not parse")
        except Exception:
            raise Skip("program does not ground")
        flat = _cdnl_models(input.text, program=program, solver_core="flat")
        reference = _cdnl_models(
            input.text, program=program, solver_core="reference"
        )
        if len(flat) >= MODEL_CAP or len(reference) >= MODEL_CAP:
            raise Skip("model cap reached; comparison would be truncated")
        if flat != reference:
            only_flat = [sorted(m) for m in flat if m not in reference][:2]
            only_ref = [sorted(m) for m in reference if m not in flat][:2]
            self.diverge(
                f"stable models differ between solver cores: flat found "
                f"{len(flat)}, reference found {len(reference)} "
                f"(flat-only {only_flat}, reference-only {only_ref})"
            )

    def _check_spec(self, input: SpecInput) -> None:
        flat = _front_vectors(input, solver_core="flat")
        reference = _front_vectors(input, solver_core="reference")
        if flat != reference:
            self.diverge(
                f"Pareto front differs between solver cores: "
                f"flat {flat} != reference {reference}"
            )


class SymmetryFrontOracle(Oracle):
    """Lex-leader symmetry breaking must not change the vector front.

    The exactness argument (docs/SYMMETRY.md) says the Pareto front *of
    objective vectors* is identical with breaking on or off — for every
    platform, symmetric or not, because a trivial or partial
    automorphism group simply yields fewer (or no) constraints.  The
    oracle re-encodes with ``symmetry="on"`` and compares against the
    unbroken front, sequentially and through the parallel explorer.
    """

    name = "symmetry-front"
    kind = "spec"

    def check(self, input: SpecInput) -> None:
        base = _front_vectors(input)
        instance = encode(
            input.specification,
            objectives=input.objectives,
            latency_bound=input.latency_bound,
            symmetry="on",
        )
        broken = ExactParetoExplorer(instance, validate_models=True).run()
        if broken.vectors() != base:
            self.diverge(
                f"front changed under symmetry breaking: off {base} != "
                f"on {broken.vectors()} (group order "
                f"{instance.symmetry.order}, "
                f"{instance.symmetry.constraints} constraints)"
            )
        parallel = ParallelParetoExplorer(
            instance, jobs=2, backend="inline"
        ).run()
        if parallel.vectors() != base:
            self.diverge(
                f"parallel front changed under symmetry breaking: off "
                f"{base} != on {parallel.vectors()}"
            )


class DomainSoundnessOracle(Oracle):
    """The abstract domain analysis over-approximates the grounder.

    Two checks (the contract in ``docs/DOMAINS.md``): every atom the
    unpruned grounder derives as possible must be contained in the
    inferred per-position domains, and grounding with domain pruning on
    must emit an identical :class:`GroundProgram` (rules, possible and
    fact universes) — pruning may only skip work, never change output.
    """

    name = "domain-soundness"
    kind = "program"

    def check(self, input: ProgramInput) -> None:
        from repro.analysis.domains import analyze_program
        from repro.asp.grounder import Grounder
        from repro.asp.parser import parse_program

        try:
            parsed = parse_program(input.text)
        except ParseError:
            raise Skip("program does not parse")
        try:
            plain = Grounder(parsed, domain_prune=False)
            plain_rules = plain.ground()
        except Exception:
            raise Skip("program does not ground")
        analysis = analyze_program(parsed)
        escaped = analysis.violations(plain.possible_atoms)
        if escaped:
            self.diverge(
                f"derived atoms escape the inferred domains: "
                f"{sorted(str(atom) for atom in escaped)[:5]}"
            )
        pruned = Grounder(parse_program(input.text), domain_prune=True)
        pruned_rules = pruned.ground()
        if {str(r) for r in plain_rules} != {str(r) for r in pruned_rules}:
            self.diverge("domain pruning changed the ground rule set")
        if (
            plain.possible_atoms != pruned.possible_atoms
            or plain.fact_atoms != pruned.fact_atoms
        ):
            self.diverge("domain pruning changed the atom universe")


#: Registry, in documentation order.
class ServeCacheOracle(Oracle):
    """The serving layer's cache identity is sound and complete enough.

    The metamorphic twin of the ``rename`` oracle, lifted to the cache
    key level (:mod:`repro.analysis.canonical` + :mod:`repro.serve.cache`):

    * an order-scrambling rename of every task/resource/link must keep
      the canonical digest — and hence the cache key — unchanged
      (renamed twins coalesce onto one entry);
    * every front witness, remapped original -> canonical -> twin
      namespace the way a cache hit is served, must still validate
      against the renamed specification with identical objectives;
    * bumping a single WCET must change the digest (the mutation always
      changes the mapping-edge multiset, so a collision here would be a
      certificate bug — the "no false cache hits" direction).
    """

    name = "serve-cache"
    kind = "spec"

    def check(self, input: SpecInput) -> None:
        from repro.analysis.canonical import (
            canonicalize_specification,
            invert_name_map,
            remap_front_entry,
        )
        from repro.serve.cache import make_cache_key
        from repro.synthesis.solution import Implementation, validate

        spec = input.specification
        renamed = _rename_spec(spec, "q")
        original = canonicalize_specification(spec)
        twin = canonicalize_specification(renamed)
        if not (original.exact and twin.exact):
            raise Skip("canonical leaf budget exhausted")
        options = {"latency_bound": input.latency_bound}
        key = make_cache_key(original.digest, input.objectives, options)
        twin_key = make_cache_key(twin.digest, input.objectives, options)
        if key != twin_key:
            self.diverge(
                f"cache key changed under renaming: digest "
                f"{original.digest[:16]} != {twin.digest[:16]}"
            )

        instance = encode(
            spec,
            objectives=input.objectives,
            latency_bound=input.latency_bound,
        )
        result = ExactParetoExplorer(instance, validate_models=False).run()
        forward = (
            original.task_map,
            original.resource_map,
            original.message_map,
            original.link_map,
        )
        inverse = tuple(
            invert_name_map(mapping)
            for mapping in (
                twin.task_map,
                twin.resource_map,
                twin.message_map,
                twin.link_map,
            )
        )
        for entry in result.to_dict()["front"]:
            canonical_entry = remap_front_entry(entry, *forward)
            served = remap_front_entry(canonical_entry, *inverse)
            if served["vector"] != entry["vector"]:
                self.diverge("objective vector changed under remapping")
            implementation = Implementation(
                binding=dict(served["binding"]),
                routes={m: list(r) for m, r in served["routes"].items()},
                schedule=dict(served["schedule"]),
                objectives=dict(served["objective_values"]),
            )
            problems = validate(renamed, implementation)
            if problems:
                self.diverge(
                    f"remapped witness invalid for the renamed twin: "
                    f"{problems[:3]}"
                )

        mutated = Specification(
            spec.application,
            spec.architecture,
            (replace(spec.mappings[0], wcet=spec.mappings[0].wcet + 1),)
            + spec.mappings[1:],
        )
        perturbed = canonicalize_specification(mutated)
        if perturbed.digest == original.digest:
            self.diverge(
                "digest collision: a WCET perturbation kept the canonical "
                "digest (false cache hit)"
            )


ORACLES: Dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        GroundingOracle(),
        SolvingOracle(),
        PickleOracle(),
        LintOracle(),
        ReorderOracle(),
        FrontOracle(),
        ScaleOracle(),
        RenameOracle(),
        SolverCoreOracle(),
        SymmetryFrontOracle(),
        DomainSoundnessOracle(),
        ServeCacheOracle(),
    )
}


def oracle_names() -> List[str]:
    return list(ORACLES)


def select_oracles(names: Optional[Sequence[str]] = None) -> List[Oracle]:
    """Resolve oracle names (None = all), preserving registry order."""
    if not names:
        return list(ORACLES.values())
    unknown = [name for name in names if name not in ORACLES]
    if unknown:
        raise KeyError(
            f"unknown oracle(s) {unknown}; have {oracle_names()}"
        )
    return [ORACLES[name] for name in ORACLES if name in set(names)]

"""Differential fuzzing & metamorphic testing for the ASPmT stack.

The paper's headline claim is *exactness*: the enumerated front is the
complete Pareto front.  After several rounds of aggressive optimisation
(parallel subspace workers, semi-naive grounding, shared ground-program
caches) that claim rests on independently-optimised code paths agreeing
with each other.  This package turns those pairwise agreements into a
first-class, continuously-running correctness subsystem:

* :mod:`repro.fuzz.generators` — seedable random ASP programs
  (stratified/unstratified negation, aggregates, theory atoms) and
  random :class:`~repro.synthesis.model.Specification` instances with
  adversarial knobs (near-infeasible deadlines, thinned mapping options,
  tie-heavy objective weights);
* :mod:`repro.fuzz.oracles` — pluggable cross-checks that run each
  input through independent paths and compare (semi-naive vs naive
  grounding, exact explorer vs exhaustive enumeration vs parallel
  workers, pickle round-trips, lint-clean implies grounds, metamorphic
  invariances under scaling/renaming/reordering);
* :mod:`repro.fuzz.shrinker` — delta debugging that minimises any
  crashing or diverging input to a small deterministic reproducer;
* :mod:`repro.fuzz.corpus` — the reproducer file format plus the
  regression replayer over ``tests/corpus/fuzz/``;
* :mod:`repro.fuzz.harness` — the budgeted driver behind
  ``python -m repro.fuzz``.

See ``docs/FUZZING.md`` for the oracle matrix and workflow.
"""

from repro.fuzz.corpus import (
    load_reproducer,
    replay_corpus,
    replay_file,
    write_reproducer,
)
from repro.fuzz.generators import (
    ProgramInput,
    SpecInput,
    generate_input,
    generate_program,
    generate_spec,
    input_kind,
)
from repro.fuzz.harness import Finding, FuzzHarness, FuzzReport, OracleStats
from repro.fuzz.oracles import (
    ORACLES,
    Divergence,
    Oracle,
    Skip,
    oracle_names,
    select_oracles,
)
from repro.fuzz.shrinker import ddmin, shrink_program, shrink_spec

__all__ = [
    "Divergence",
    "Finding",
    "FuzzHarness",
    "FuzzReport",
    "ORACLES",
    "Oracle",
    "OracleStats",
    "ProgramInput",
    "Skip",
    "SpecInput",
    "ddmin",
    "generate_input",
    "generate_program",
    "generate_spec",
    "input_kind",
    "load_reproducer",
    "oracle_names",
    "replay_corpus",
    "replay_file",
    "select_oracles",
    "shrink_program",
    "shrink_spec",
    "write_reproducer",
]

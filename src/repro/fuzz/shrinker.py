"""Delta-debugging shrinker for crashing/diverging fuzz inputs.

Given a failing input and a predicate ("does this candidate still
fail?"), the shrinker searches for a small input that still triggers
the failure:

* programs — classic ``ddmin`` over the rule lines, then integer
  shrinking (every numeric literal is pushed toward 0/1 while the
  failure persists);
* specifications — structural passes that drop tasks (with their
  messages and mapping options), messages, surplus mapping options and
  objectives, clear the latency bound, and shrink numeric fields
  (sizes, WCETs, energies, costs) toward 1.

Predicates must treat *invalid* candidates (parse errors the oracle
skips, inconsistent specifications) as non-failing; the shrinker
guards against ``SpecificationError`` itself.

Every step is deterministic, so a shrunken reproducer replays
identically on every run.
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.fuzz.generators import SpecInput
from repro.synthesis.model import (
    Application,
    Specification,
    SpecificationError,
)

__all__ = ["ddmin", "shrink_program", "shrink_spec"]

T = TypeVar("T")

#: Hard cap on predicate evaluations per shrink (the fuzz harness calls
#: the full oracle for every candidate, which can be expensive).
DEFAULT_BUDGET = 400


class _Budget:
    def __init__(self, limit: int):
        self.remaining = limit

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def ddmin(
    items: Sequence[T],
    fails: Callable[[List[T]], bool],
    budget: Optional[_Budget] = None,
) -> List[T]:
    """Zeller's ddmin: a minimal failing sublist of ``items``.

    ``fails`` must return True for ``items`` itself; the result is
    1-minimal up to the evaluation budget (removing any single element
    no longer fails).
    """
    budget = budget or _Budget(DEFAULT_BUDGET)
    current = list(items)
    chunks = 2
    while len(current) >= 2:
        size = max(1, len(current) // chunks)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + size :]
            if candidate and budget.spend() and fails(candidate):
                current = candidate
                chunks = max(chunks - 1, 2)
                reduced = True
                start = 0
                size = max(1, len(current) // chunks)
                continue
            start += size
        if not reduced:
            if chunks >= len(current):
                break
            chunks = min(len(current), chunks * 2)
        if budget.remaining <= 0:
            break
    return current


_INTEGER = re.compile(r"(?<![\w.])(\d+)")


def _shrink_integers(
    text: str, fails: Callable[[str], bool], budget: _Budget
) -> str:
    """Replace each integer literal with smaller values while failing."""
    changed = True
    while changed and budget.remaining > 0:
        changed = False
        for match in list(_INTEGER.finditer(text)):
            value = int(match.group(1))
            for smaller in (0, 1, value // 2):
                if smaller >= value:
                    continue
                candidate = (
                    text[: match.start(1)] + str(smaller) + text[match.end(1) :]
                )
                if budget.spend() and fails(candidate):
                    text = candidate
                    changed = True
                    break
            if changed:
                break
    return text


def shrink_program(
    text: str,
    fails: Callable[[str], bool],
    max_checks: int = DEFAULT_BUDGET,
) -> str:
    """A minimised program that still satisfies ``fails``."""
    if not fails(text):
        raise ValueError("the initial program does not fail")
    budget = _Budget(max_checks)
    lines = [line for line in text.splitlines() if line.strip()]
    kept = ddmin(lines, lambda ls: fails("\n".join(ls)), budget)
    shrunk = "\n".join(kept)
    return _shrink_integers(shrunk, fails, budget)


# ---------------------------------------------------------------------------
# Specification shrinking
# ---------------------------------------------------------------------------


def _without_task(spec: Specification, name: str) -> Specification:
    tasks = tuple(t for t in spec.application.tasks if t.name != name)
    messages = tuple(
        m
        for m in spec.application.messages
        if m.source != name and name not in m.targets
    )
    mappings = tuple(o for o in spec.mappings if o.task != name)
    return Specification(
        Application(tasks, messages), spec.architecture, mappings
    )


def _without_message(spec: Specification, name: str) -> Specification:
    messages = tuple(m for m in spec.application.messages if m.name != name)
    return Specification(
        Application(spec.application.tasks, messages),
        spec.architecture,
        spec.mappings,
    )


def _without_option(spec: Specification, index: int) -> Specification:
    mappings = spec.mappings[:index] + spec.mappings[index + 1 :]
    return Specification(spec.application, spec.architecture, mappings)


def _candidate_fails(
    candidate: SpecInput, fails: Callable[[SpecInput], bool]
) -> bool:
    try:
        return fails(candidate)
    except SpecificationError:
        return False


def shrink_spec(
    input: SpecInput,
    fails: Callable[[SpecInput], bool],
    max_checks: int = DEFAULT_BUDGET,
) -> SpecInput:
    """A minimised specification input that still satisfies ``fails``."""
    if not fails(input):
        raise ValueError("the initial spec input does not fail")
    budget = _Budget(max_checks)
    current = input

    def attempt(candidate: SpecInput) -> bool:
        if not budget.spend():
            return False
        return _candidate_fails(candidate, fails)

    progress = True
    while progress and budget.remaining > 0:
        progress = False
        # Drop whole tasks (with their messages and mapping options).
        for task in list(current.specification.application.tasks):
            if len(current.specification.application.tasks) <= 1:
                break
            candidate = replace(
                current,
                specification=_without_task(current.specification, task.name),
            )
            if attempt(candidate):
                current = candidate
                progress = True
        # Drop messages.
        for message in list(current.specification.application.messages):
            candidate = replace(
                current,
                specification=_without_message(
                    current.specification, message.name
                ),
            )
            if attempt(candidate):
                current = candidate
                progress = True
        # Drop surplus mapping options (keeping at least one per task).
        index = 0
        while index < len(current.specification.mappings):
            option = current.specification.mappings[index]
            remaining = sum(
                1
                for o in current.specification.mappings
                if o.task == option.task
            )
            if remaining > 1:
                candidate = replace(
                    current,
                    specification=_without_option(
                        current.specification, index
                    ),
                )
                if attempt(candidate):
                    current = candidate
                    progress = True
                    continue
            index += 1
        # Drop objectives (a front over fewer axes is simpler to read).
        while len(current.objectives) > 1:
            dropped = False
            for objective in current.objectives:
                remaining = tuple(
                    o for o in current.objectives if o != objective
                )
                candidate = replace(current, objectives=remaining)
                if attempt(candidate):
                    current = candidate
                    progress = dropped = True
                    break
            if not dropped:
                break
        # Clear the latency bound.
        if current.latency_bound is not None:
            candidate = replace(current, latency_bound=None)
            if attempt(candidate):
                current = candidate
                progress = True
        # Shrink numeric fields toward 1.
        current, shrunk = _shrink_spec_numbers(current, attempt)
        progress = progress or shrunk
    return current


def _shrink_spec_numbers(
    current: SpecInput, attempt: Callable[[SpecInput], bool]
):
    """One pass of pushing wcet/energy/size/cost values toward 1."""
    progress = False
    spec = current.specification
    for index, option in enumerate(spec.mappings):
        for field_name in ("wcet", "energy"):
            value = getattr(option, field_name)
            target = 1 if field_name == "wcet" else 0
            if value <= target:
                continue
            mappings = (
                spec.mappings[:index]
                + (replace(option, **{field_name: target}),)
                + spec.mappings[index + 1 :]
            )
            candidate = replace(
                current,
                specification=Specification(
                    spec.application, spec.architecture, mappings
                ),
            )
            if attempt(candidate):
                current = candidate
                spec = current.specification
                progress = True
    for index, message in enumerate(spec.application.messages):
        if message.size <= 1:
            continue
        messages = (
            spec.application.messages[:index]
            + (replace(message, size=1),)
            + spec.application.messages[index + 1 :]
        )
        candidate = replace(
            current,
            specification=Specification(
                Application(spec.application.tasks, messages),
                spec.architecture,
                spec.mappings,
            ),
        )
        if attempt(candidate):
            current = candidate
            spec = current.specification
            progress = True
    return current, progress

"""Seedable random inputs for the differential fuzzing harness.

Two input families, both deterministic in a single integer seed:

* :func:`generate_program` — a small ASP program mixing the shapes the
  grounder and solver must agree on: ground rules with (possibly
  unstratified) negation, integrity constraints, bounded/unbounded
  choices, ``#sum``/``#min``/``#max``/``#count`` aggregates, non-ground
  recursion over interval facts, and ``&dom``/``&sum`` theory atoms
  (mirroring :func:`repro.tests.test_asp_properties` strategies, but
  driven by :class:`random.Random` so any finding replays from its
  printed seed);
* :func:`generate_spec` — a synthesis :class:`Specification` layered on
  :func:`repro.workloads.generator.generate_specification` with
  adversarial knobs: near-infeasible latency bounds, thinned mapping
  options (disconnected-ish design spaces), and uniform energy weights
  (maximally tie-heavy objectives).

The kind of the input (program vs. specification) is itself a pure
function of the seed (:func:`input_kind`), so ``--budget 1 --seed S``
regenerates exactly the input that seed produced in a longer run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.synthesis.model import MappingOption, Specification
from repro.workloads.generator import WorkloadConfig, generate_specification

__all__ = [
    "ProgramInput",
    "SpecInput",
    "generate_input",
    "generate_program",
    "generate_spec",
    "input_kind",
]

#: Ground atom pool of the propositional fragment.
ATOMS = ("a", "b", "c", "d")

#: One in this many inputs is a specification (the rest are programs);
#: spec oracles run full Pareto explorations and are far more expensive.
SPEC_PERIOD = 8


@dataclass(frozen=True)
class ProgramInput:
    """A generated ASP program (one rule per line)."""

    seed: int
    text: str

    @property
    def kind(self) -> str:
        return "program"

    @property
    def has_theory(self) -> bool:
        return "&" in self.text


@dataclass(frozen=True)
class SpecInput:
    """A generated synthesis instance plus its encoding options."""

    seed: int
    specification: Specification
    objectives: Tuple[str, ...] = ("latency", "energy", "cost")
    latency_bound: Optional[int] = None
    #: Human-readable adversarial knobs applied, for finding reports.
    notes: Tuple[str, ...] = ()

    @property
    def kind(self) -> str:
        return "spec"


# ---------------------------------------------------------------------------
# Program generation
# ---------------------------------------------------------------------------


def _literal(rng: random.Random, atom: str) -> str:
    return ("not " if rng.random() < 0.4 else "") + atom


def _normal_rule(rng: random.Random) -> str:
    head = rng.choice(ATOMS)
    body = [_literal(rng, rng.choice(ATOMS)) for _ in range(rng.randint(0, 3))]
    if not body:
        return f"{head}."
    return f"{head} :- {', '.join(body)}."


def _constraint(rng: random.Random) -> str:
    body = [_literal(rng, rng.choice(ATOMS)) for _ in range(rng.randint(1, 3))]
    return f":- {', '.join(body)}."


def _choice_rule(rng: random.Random) -> str:
    elements = rng.sample(ATOMS, rng.randint(1, 3))
    inner = "; ".join(elements)
    if rng.random() < 0.5:
        lower = rng.randint(0, len(elements))
        upper = rng.randint(lower, len(elements))
        return f"{lower} {{ {inner} }} {upper}."
    return f"{{ {inner} }}."


def _aggregate_rule(rng: random.Random) -> str:
    # Heads stay disjoint from the element atoms: recursion through
    # aggregates is (deliberately) rejected by the grounder.
    head = rng.choice(("x", "y"))
    function = rng.choice(("sum", "min", "max", "count"))
    elements = rng.sample(ATOMS, rng.randint(1, 3))
    op = rng.choice((">=", "<=", "=", "!=", "<", ">"))
    bound = rng.randint(-2, 4)
    if function == "count":
        inner = "; ".join(f"{atom} : {atom}" for atom in elements)
    else:
        inner = "; ".join(
            f"{rng.randint(-2, 3)},{atom} : {atom}" for atom in elements
        )
    return f"{head} :- #{function} {{ {inner} }} {op} {bound}."


def _variable_fragment(rng: random.Random) -> List[str]:
    """Non-ground recursion over interval facts (safe by construction)."""
    n = rng.randint(2, 4)
    rules = [f"p(1..{n})."]
    for _ in range(rng.randint(1, 3)):
        rules.append(f"edge({rng.randint(1, n)},{rng.randint(1, n)}).")
    shapes = [
        f"p(X+1) :- p(X), X < {n + rng.randint(0, 2)}.",
        "q(X) :- p(X), not edge(X,X).",
        f"c :- #count {{ X : pick(X) }} >= {rng.randint(1, n)}.",
        ":- pick(X), pick(Y), X < Y, not c.",
        f"s :- #sum {{ X,X : pick(X) }} >= {rng.randint(2, n + 2)}.",
        "r(X) :- q(X), pick(X).",
    ]
    chosen = rng.sample(shapes, rng.randint(1, 4))
    if rng.random() < 0.5:
        chosen += ["path(X,Y) :- edge(X,Y).", "path(X,Z) :- path(X,Y), edge(Y,Z)."]
    if any("pick(" in shape for shape in chosen):
        rules.append("{ pick(X) : p(X) }.")
    if any("q(X)" in shape and not shape.startswith("q(X)") for shape in chosen):
        rules.append("q(X) :- p(X), not edge(X,X).")
    rules.extend(shape for shape in dict.fromkeys(chosen) if shape not in rules)
    return rules


def _theory_fragment(rng: random.Random) -> List[str]:
    """``&dom``/``&sum`` rules shaped like the synthesis encoding."""
    n = rng.randint(2, 3)
    bound = rng.randint(0, 2)
    rules = [
        f"tk(1..{n}).",
        f"&dom {{ 0..{rng.randint(3, 6)} }} = v(X) :- tk(X).",
        f"&sum {{ v(Y) - v(X) ; -{rng.randint(1, 2)}, X : tk(X) }} >= {bound}"
        " :- tk(X), tk(Y), X < Y.",
    ]
    return rules


def generate_program(seed: int) -> ProgramInput:
    """A random program, deterministic in ``seed``."""
    rng = random.Random(f"fuzz-program-{seed}")
    rules: List[str] = []
    propositional = (_normal_rule, _constraint, _choice_rule, _aggregate_rule)
    for _ in range(rng.randint(1, 7)):
        rules.append(rng.choice(propositional)(rng))
    if rng.random() < 0.5:
        rules.extend(_variable_fragment(rng))
    if rng.random() < 0.2:
        rules.extend(_theory_fragment(rng))
    return ProgramInput(seed=seed, text="\n".join(rules))


# ---------------------------------------------------------------------------
# Specification generation
# ---------------------------------------------------------------------------


def _thin_mappings(spec: Specification, rng: random.Random) -> Specification:
    """Drop mapping options (keeping >= 1 per task): near-disconnected spaces."""
    by_task = {}
    for option in spec.mappings:
        by_task.setdefault(option.task, []).append(option)
    kept: List[MappingOption] = []
    for task, options in by_task.items():
        keep = max(1, rng.randint(1, len(options)))
        kept.extend(rng.sample(options, keep))
    return Specification(spec.application, spec.architecture, tuple(kept))


def _flatten_energies(spec: Specification, rng: random.Random) -> Specification:
    """Give every option the same energy: maximally tie-heavy objectives."""
    energy = rng.randint(1, 3)
    flat = tuple(replace(option, energy=energy) for option in spec.mappings)
    return Specification(spec.application, spec.architecture, flat)


_OBJECTIVE_CHOICES: Tuple[Tuple[str, ...], ...] = (
    ("latency", "energy", "cost"),
    ("latency", "energy"),
    ("latency", "cost"),
    ("energy", "cost"),
)


def generate_spec(seed: int) -> SpecInput:
    """A random (small, adversarial) synthesis instance for ``seed``."""
    rng = random.Random(f"fuzz-spec-{seed}")
    platform = rng.choice(("mesh", "bus", "ring"))
    if platform == "mesh":
        size: Tuple[int, int] = (2, 2)
    else:
        size = (rng.randint(2, 3), 0)
    # Identical tiles with full mapping coverage: the symmetry-front
    # oracle needs platforms with non-trivial automorphism groups to
    # actually occur (a heterogeneous draw is almost never symmetric).
    homogeneous = rng.random() < 0.3
    options_per_task = (16, 16) if homogeneous else (1, rng.randint(1, 3))
    config = WorkloadConfig(
        tasks=rng.randint(1, 4),
        seed=rng.randrange(1_000_000),
        platform=platform,
        platform_size=size,
        options_per_task=options_per_task,
        message_probability=rng.uniform(0.2, 1.0),
        max_message_size=rng.randint(1, 3),
        pe_homogeneity=1.0 if homogeneous else 0.0,
    )
    spec = generate_specification(config)
    notes: List[str] = [config.name()]
    if homogeneous:
        notes.append("homogeneous platform")
    if rng.random() < 0.35:
        spec = _thin_mappings(spec, rng)
        notes.append("thinned mappings")
    if rng.random() < 0.25:
        spec = _flatten_energies(spec, rng)
        notes.append("uniform energies")
    latency_bound: Optional[int] = None
    if rng.random() < 0.3:
        # Near-infeasible deadline: a small fraction of the horizon, so
        # the feasible space is tiny or empty — both paths must agree on
        # *which* tiny-or-empty front that is.
        latency_bound = max(1, int(spec.horizon() * rng.uniform(0.05, 0.35)))
        notes.append(f"latency_bound={latency_bound}")
    objectives = rng.choice(_OBJECTIVE_CHOICES)
    return SpecInput(
        seed=seed,
        specification=spec,
        objectives=objectives,
        latency_bound=latency_bound,
        notes=tuple(notes),
    )


def input_kind(seed: int) -> str:
    """``"program"`` or ``"spec"`` — a pure function of the seed."""
    if random.Random(f"fuzz-kind-{seed}").randrange(SPEC_PERIOD) == 0:
        return "spec"
    return "program"


def generate_input(seed: int):
    """The input owned by ``seed`` (kind chosen by :func:`input_kind`)."""
    if input_kind(seed) == "spec":
        return generate_spec(seed)
    return generate_program(seed)

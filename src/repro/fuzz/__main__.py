"""CLI: differential fuzzing of the ASPmT stack.

Usage::

    python -m repro.fuzz --budget 200 --seed 0
    python -m repro.fuzz --budget 50 --oracle grounding,solving
    python -m repro.fuzz --budget 500 --shrink --corpus tests/corpus/fuzz
    python -m repro.fuzz --list-oracles

Exit status is 0 when every oracle stayed green, 1 otherwise.  Every
finding prints a *seed line*: re-running it reproduces exactly that
input and oracle.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.fuzz.harness import FuzzHarness
from repro.fuzz.oracles import ORACLES, oracle_names


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.fuzz", description=__doc__)
    parser.add_argument(
        "--budget", type=int, default=100, help="number of generated inputs"
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--oracle",
        action="append",
        default=[],
        help="oracle name(s), comma-separable and repeatable (default: all)",
    )
    parser.add_argument(
        "--shrink",
        action="store_true",
        help="minimise findings and write reproducers to the corpus",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        help="reproducer directory (with --shrink; default tests/corpus/fuzz)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the full report as JSON (stats are always summarised)",
    )
    parser.add_argument(
        "--list-oracles", action="store_true", help="list oracles and exit"
    )
    args = parser.parse_args(argv)

    if args.list_oracles:
        for name, oracle in ORACLES.items():
            doc = (oracle.__doc__ or "").strip().splitlines()[0]
            print(f"{name:12s} [{oracle.kind:7s}] {doc}")
        return 0

    names: List[str] = []
    for entry in args.oracle:
        names.extend(part.strip() for part in entry.split(",") if part.strip())
    unknown = [name for name in names if name not in ORACLES]
    if unknown:
        parser.error(f"unknown oracle(s) {unknown}; have {oracle_names()}")

    corpus_dir = args.corpus
    if args.shrink and corpus_dir is None:
        from repro.fuzz.corpus import CORPUS_DIR

        corpus_dir = CORPUS_DIR

    harness = FuzzHarness(
        oracles=names or None,
        base_seed=args.seed,
        shrink=args.shrink,
        corpus_dir=corpus_dir,
    )

    def announce(finding) -> None:
        print(f"FAIL [{finding.oracle}] {finding.failure}: {finding.message}")
        print(f"  seed line: {finding.seed_line}")
        if finding.reproducer:
            print(f"  reproducer: {finding.reproducer}")

    report = harness.run(args.budget, on_finding=announce)

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(
            f"\nfuzz: {report.inputs} inputs, {len(report.findings)} "
            f"finding(s), {report.wall_time:.2f}s (seed {report.base_seed})"
        )
        for name, stats in report.oracle_stats.items():
            print(
                f"  {name:12s} {stats.inputs:5d} inputs, {stats.skips:4d} "
                f"skips, {stats.failures:3d} failures, "
                f"{stats.inputs_per_second:8.1f} inputs/s"
            )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())

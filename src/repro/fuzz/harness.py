"""The budgeted differential fuzzing driver.

One *budget unit* is one generated input (seed = base seed + index)
run through every active oracle of its kind.  Failures become
:class:`Finding` records; with shrinking enabled each finding is
minimised by :mod:`repro.fuzz.shrinker` and persisted as a reproducer
(:mod:`repro.fuzz.corpus`).  Per-oracle throughput (inputs/sec) is
tracked for ``BENCH_fuzz.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.fuzz.corpus import write_reproducer
from repro.fuzz.generators import (
    ProgramInput,
    SpecInput,
    generate_program,
    generate_spec,
    input_kind,
)
from repro.fuzz.oracles import Divergence, Oracle, Skip, select_oracles
from repro.fuzz.shrinker import shrink_program, shrink_spec

__all__ = ["Finding", "FuzzHarness", "FuzzReport", "OracleStats"]


@dataclass
class OracleStats:
    """Effort counters of one oracle across a fuzzing run."""

    inputs: int = 0
    skips: int = 0
    failures: int = 0
    seconds: float = 0.0

    @property
    def inputs_per_second(self) -> float:
        return self.inputs / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "inputs": self.inputs,
            "skips": self.skips,
            "failures": self.failures,
            "seconds": round(self.seconds, 6),
            "inputs_per_second": round(self.inputs_per_second, 3),
        }


@dataclass
class Finding:
    """One crash or divergence, plus its (optional) minimised form."""

    seed: int
    oracle: str
    failure: str  # "divergence" | "crash"
    message: str
    input: Union[ProgramInput, SpecInput]
    shrunk: Optional[Union[ProgramInput, SpecInput]] = None
    reproducer: Optional[Path] = None

    @property
    def seed_line(self) -> str:
        """The replay command for this finding."""
        line = (
            f"python -m repro.fuzz --seed {self.seed} --budget 1 "
            f"--oracle {self.oracle}"
        )
        if self.input.kind == "spec":
            line += f"  (instance: python -m repro.dse --fuzz-replay {self.seed})"
        return line

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seed": self.seed,
            "oracle": self.oracle,
            "failure": self.failure,
            "message": self.message,
            "kind": self.input.kind,
            "seed_line": self.seed_line,
        }
        if self.shrunk is not None and isinstance(self.shrunk, ProgramInput):
            out["shrunk_program"] = self.shrunk.text
        if self.shrunk is not None and isinstance(self.shrunk, SpecInput):
            out["shrunk_summary"] = self.shrunk.specification.summary()
        if self.reproducer is not None:
            out["reproducer"] = str(self.reproducer)
        return out


@dataclass
class FuzzReport:
    """Everything one :meth:`FuzzHarness.run` produced."""

    budget: int
    base_seed: int
    findings: List[Finding] = field(default_factory=list)
    oracle_stats: Dict[str, OracleStats] = field(default_factory=dict)
    wall_time: float = 0.0
    inputs: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "budget": self.budget,
            "seed": self.base_seed,
            "inputs": self.inputs,
            "wall_time": round(self.wall_time, 3),
            "ok": self.ok,
            "findings": [finding.to_dict() for finding in self.findings],
            "oracles": {
                name: stats.to_dict()
                for name, stats in self.oracle_stats.items()
            },
        }


class FuzzHarness:
    """Drives generators and oracles under a fixed input budget."""

    def __init__(
        self,
        oracles: Optional[Sequence[str]] = None,
        base_seed: int = 0,
        shrink: bool = False,
        corpus_dir: Union[str, Path, None] = None,
        shrink_checks: int = 200,
    ):
        self.oracles: List[Oracle] = select_oracles(oracles)
        self.base_seed = base_seed
        self.shrink = shrink
        self.corpus_dir = Path(corpus_dir) if corpus_dir else None
        self.shrink_checks = shrink_checks
        self._kinds = {oracle.kind for oracle in self.oracles}
        if not self._kinds:
            raise ValueError("no oracles selected")

    # -- input scheduling ---------------------------------------------------

    def _input_for(self, seed: int):
        """The input owned by ``seed``, restricted to the active kinds."""
        if self._kinds == {"spec"}:
            return generate_spec(seed)
        if self._kinds == {"program"}:
            return generate_program(seed)
        if input_kind(seed) == "spec":
            return generate_spec(seed)
        return generate_program(seed)

    # -- driving ------------------------------------------------------------

    def run(self, budget: int, on_finding=None) -> FuzzReport:
        """Fuzz ``budget`` inputs; returns the full report."""
        report = FuzzReport(budget=budget, base_seed=self.base_seed)
        report.oracle_stats = {o.name: OracleStats() for o in self.oracles}
        started = time.perf_counter()
        for index in range(budget):
            seed = self.base_seed + index
            input = self._input_for(seed)
            report.inputs += 1
            for finding in self.check_input(input, report.oracle_stats):
                if self.shrink:
                    self._shrink_finding(finding)
                report.findings.append(finding)
                if on_finding is not None:
                    on_finding(finding)
        report.wall_time = time.perf_counter() - started
        return report

    def check_input(
        self,
        input: Union[ProgramInput, SpecInput],
        stats: Optional[Dict[str, OracleStats]] = None,
    ) -> List[Finding]:
        """Run ``input`` through every kind-compatible active oracle."""
        findings: List[Finding] = []
        for oracle in self.oracles:
            # kind="any" oracles take both program and spec inputs.
            if oracle.kind not in ("any", input.kind):
                continue
            entry = None if stats is None else stats[oracle.name]
            started = time.perf_counter()
            try:
                oracle.check(input)
            except Skip:
                if entry:
                    entry.skips += 1
            except Divergence as divergence:
                findings.append(
                    Finding(
                        seed=input.seed,
                        oracle=oracle.name,
                        failure="divergence",
                        message=str(divergence),
                        input=input,
                    )
                )
                if entry:
                    entry.failures += 1
            except Exception as error:  # noqa: BLE001 — crashes are findings
                findings.append(
                    Finding(
                        seed=input.seed,
                        oracle=oracle.name,
                        failure="crash",
                        message=f"{type(error).__name__}: {error}",
                        input=input,
                    )
                )
                if entry:
                    entry.failures += 1
            finally:
                if entry:
                    entry.inputs += 1
                    entry.seconds += time.perf_counter() - started
        return findings

    # -- shrinking ----------------------------------------------------------

    def _still_fails(self, oracle: Oracle, failure: str):
        """A predicate matching the original failure class."""

        def predicate(candidate) -> bool:
            try:
                oracle.check(candidate)
            except Skip:
                return False
            except Divergence:
                return failure == "divergence"
            except Exception:
                return failure == "crash"
            return False

        return predicate

    def _shrink_finding(self, finding: Finding) -> None:
        oracle = next(o for o in self.oracles if o.name == finding.oracle)
        predicate = self._still_fails(oracle, finding.failure)
        try:
            if isinstance(finding.input, ProgramInput):
                text = shrink_program(
                    finding.input.text,
                    lambda t: predicate(replace(finding.input, text=t)),
                    max_checks=self.shrink_checks,
                )
                finding.shrunk = replace(finding.input, text=text)
            else:
                finding.shrunk = shrink_spec(
                    finding.input, predicate, max_checks=self.shrink_checks
                )
        except ValueError:
            # Flaky failure (did not reproduce at shrink time): keep the
            # original input as the reproducer.
            finding.shrunk = finding.input
        if self.corpus_dir is not None:
            finding.reproducer = write_reproducer(
                self.corpus_dir,
                finding.oracle,
                finding.shrunk,
                description=(
                    f"{finding.failure}: {finding.message} "
                    f"(fuzz seed {finding.seed})"
                ),
            )

"""Reproducer corpus: persisted fuzz findings and their replayer.

Every finding the shrinker minimises is written as one compact JSON
file under ``tests/corpus/fuzz/`` and replayed by the tier-1 suite
(``tests/test_fuzz.py::test_corpus_replays_green``), so a fixed bug
stays fixed.

File format (single line of JSON; ``description`` carries the story):

* common — ``oracle``, ``kind`` (``program``/``spec``), ``seed``,
  ``description``;
* program findings — ``program`` (the shrunken rule text);
* spec findings — ``spec`` (the :mod:`repro.synthesis.io` dict),
  ``objectives``, ``latency_bound``.

Conventions: files are named ``<oracle>_<seed>.json``; never edit a
reproducer in place — if the minimised input stops being interesting,
delete the file and let the fuzzer find a fresh one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Tuple, Union

from repro.fuzz.generators import ProgramInput, SpecInput
from repro.fuzz.oracles import ORACLES, Skip
from repro.synthesis.io import specification_from_dict, specification_to_dict

__all__ = [
    "CORPUS_DIR",
    "load_reproducer",
    "replay_corpus",
    "replay_file",
    "write_reproducer",
]

#: Default corpus location (inside the repository's test tree).
CORPUS_DIR = (
    Path(__file__).resolve().parents[3] / "tests" / "corpus" / "fuzz"
)

FuzzInput = Union[ProgramInput, SpecInput]


def write_reproducer(
    directory: Union[str, Path],
    oracle: str,
    input: FuzzInput,
    description: str = "",
) -> Path:
    """Persist a (shrunken) failing input; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    record = {
        "oracle": oracle,
        "kind": input.kind,
        "seed": input.seed,
        "description": description,
    }
    if isinstance(input, ProgramInput):
        record["program"] = input.text
    else:
        record["spec"] = specification_to_dict(input.specification)
        record["objectives"] = list(input.objectives)
        record["latency_bound"] = input.latency_bound
    path = directory / f"{oracle}_{input.seed}.json"
    path.write_text(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    )
    return path


def load_reproducer(path: Union[str, Path]) -> Tuple[str, FuzzInput]:
    """Read one reproducer file; returns ``(oracle_name, input)``."""
    record = json.loads(Path(path).read_text())
    oracle = record["oracle"]
    if oracle not in ORACLES:
        raise KeyError(f"{path}: unknown oracle {oracle!r}")
    if record["kind"] == "program":
        return oracle, ProgramInput(seed=record["seed"], text=record["program"])
    spec = specification_from_dict(record["spec"])
    return oracle, SpecInput(
        seed=record["seed"],
        specification=spec,
        objectives=tuple(record.get("objectives") or ("latency", "energy", "cost")),
        latency_bound=record.get("latency_bound"),
    )


def replay_file(path: Union[str, Path]) -> str:
    """Re-run one reproducer through its oracle.

    Returns ``"ok"`` or ``"skip"``; raises (Divergence or the original
    crash) when the finding still reproduces.
    """
    oracle_name, input = load_reproducer(path)
    try:
        ORACLES[oracle_name].check(input)
    except Skip:
        return "skip"
    return "ok"


def replay_corpus(
    directory: Union[str, Path, None] = None,
) -> List[Tuple[Path, str]]:
    """Replay every reproducer under ``directory`` (default corpus).

    Raises on the first reproducer that fails again; returns the
    ``(path, status)`` list otherwise.
    """
    directory = Path(directory) if directory is not None else CORPUS_DIR
    results: List[Tuple[Path, str]] = []
    for path in sorted(directory.glob("*.json")):
        results.append((path, replay_file(path)))
    return results

"""Architecture generators: the platforms of the evaluation section.

The paper's instances target heterogeneous multi-core platforms with
network-on-chip interconnects.  Three families are provided:

* :func:`mesh` — an N×M mesh NoC with bidirectional links between
  neighbours (the classic platform of the authors' benchmark set),
* :func:`bus` — processing elements around a single shared medium,
* :func:`ring` — a unidirectional ring.

Resource heterogeneity (cost classes: small/big/accelerator tiles) is
generated deterministically from a seed via
:func:`heterogeneous_resources`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.synthesis.model import Architecture, Link, Resource

__all__ = ["mesh", "bus", "ring", "heterogeneous_resources", "TILE_CLASSES"]

#: (class name, allocation cost, wcet factor %, energy factor %).
#: "big" tiles are fast but expensive and power-hungry; "small" tiles the
#: reverse; accelerators are extreme on both axes.
TILE_CLASSES: Tuple[Tuple[str, int, int, int], ...] = (
    ("small", 2, 150, 70),
    ("medium", 4, 100, 100),
    ("big", 8, 60, 160),
    ("accel", 12, 30, 220),
)


def heterogeneous_resources(
    count: int, seed: int = 0, prefix: str = "pe", homogeneity: float = 0.0
) -> List[Tuple[Resource, Tuple[str, int, int, int]]]:
    """``count`` tiles with deterministic pseudo-random classes.

    Returns ``(resource, tile_class)`` pairs; the class factors scale the
    application's nominal WCET/energy in the workload generators.

    ``homogeneity`` biases tiles toward the first-drawn class: each
    subsequent tile repeats it with that probability (1.0 = identical
    tiles, the platform-symmetry stress case).  ``homogeneity=0.0``
    consumes exactly the same random draws as before the knob existed,
    so existing seeded instances are unchanged.
    """
    rng = random.Random(seed)
    out: List[Tuple[Resource, Tuple[str, int, int, int]]] = []
    base: Optional[Tuple[str, int, int, int]] = None
    for index in range(count):
        if base is not None and homogeneity > 0.0 and rng.random() < homogeneity:
            tile = base
        else:
            tile = rng.choice(TILE_CLASSES)
        if base is None:
            base = tile
        out.append((Resource(f"{prefix}{index}", cost=tile[1]), tile))
    return out


def _link_pair(
    name: str, a: str, b: str, delay: int, energy: int
) -> List[Link]:
    return [
        Link(f"{name}_f", a, b, delay=delay, energy=energy),
        Link(f"{name}_b", b, a, delay=delay, energy=energy),
    ]


def mesh(
    columns: int,
    rows: int,
    seed: int = 0,
    link_delay: int = 1,
    link_energy: int = 1,
    homogeneity: float = 0.0,
) -> Architecture:
    """A ``columns x rows`` mesh NoC of heterogeneous tiles.

    Each grid position holds one processing element; neighbouring
    elements are connected by a pair of directed links (the router is
    folded into the tile, as in the paper's abstract platform model).
    """
    if columns < 1 or rows < 1:
        raise ValueError("mesh needs at least one column and row")
    tiles = heterogeneous_resources(
        columns * rows, seed=seed, homogeneity=homogeneity
    )
    resources = [resource for resource, _tile in tiles]
    links: List[Link] = []

    def index(x: int, y: int) -> int:
        return y * columns + x

    for y in range(rows):
        for x in range(columns):
            here = resources[index(x, y)].name
            if x + 1 < columns:
                right = resources[index(x + 1, y)].name
                links.extend(
                    _link_pair(f"lh{x}_{y}", here, right, link_delay, link_energy)
                )
            if y + 1 < rows:
                down = resources[index(x, y + 1)].name
                links.extend(
                    _link_pair(f"lv{x}_{y}", here, down, link_delay, link_energy)
                )
    return Architecture(tuple(resources), tuple(links))


def bus(
    count: int,
    seed: int = 0,
    link_delay: int = 1,
    link_energy: int = 1,
    homogeneity: float = 0.0,
) -> Architecture:
    """``count`` heterogeneous PEs attached to one shared bus resource."""
    if count < 1:
        raise ValueError("bus needs at least one processing element")
    tiles = heterogeneous_resources(count, seed=seed, homogeneity=homogeneity)
    resources = [resource for resource, _tile in tiles]
    hub = Resource("bus", cost=1)
    links: List[Link] = []
    for resource in resources:
        links.extend(
            _link_pair(f"lb_{resource.name}", resource.name, hub.name, link_delay, link_energy)
        )
    return Architecture(tuple(resources) + (hub,), tuple(links))


def ring(
    count: int,
    seed: int = 0,
    link_delay: int = 1,
    link_energy: int = 1,
    homogeneity: float = 0.0,
) -> Architecture:
    """A unidirectional ring of ``count`` heterogeneous PEs."""
    if count < 2:
        raise ValueError("ring needs at least two processing elements")
    tiles = heterogeneous_resources(count, seed=seed, homogeneity=homogeneity)
    resources = [resource for resource, _tile in tiles]
    links = [
        Link(
            f"lr{i}",
            resources[i].name,
            resources[(i + 1) % count].name,
            delay=link_delay,
            energy=link_energy,
        )
        for i in range(count)
    ]
    return Architecture(tuple(resources), tuple(links))

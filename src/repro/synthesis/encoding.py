"""The ASPmT encoding of system-level synthesis.

Boolean (ASP) part — binding, allocation, routing:

.. code-block:: text

    1 { bind(T, R) : map(T, R, _, _) } 1 :- task(T).
    alloc(R) :- bind(T, R).
    alloc(A) :- route(M, L), link(L, A, B).
    alloc(B) :- route(M, L), link(L, A, B).
    { route(M, L) : link(L, _, _) } :- message(M).
    reached(M, R) :- comm(M, S, _), bind(S, R).
    reached(M, B) :- reached(M, A), route(M, L), link(L, A, B).
    :- comm(M, _, T), bind(T, R), not reached(M, R).
    :- route(M, L), link(L, A, _), not reached(M, A).
    :- message(M), res(R), 2 <= #count { L : route(M, L), link(L, _, R) }.
    :- route(M, L), link(L, _, B), comm(M, S, _), bind(S, B).
    needed(M, B) :- comm(M, _, T), bind(T, B).
    needed(M, B) :- route(M, L), link(L, B, _).
    :- route(M, L), link(L, _, B), not needed(M, B).

Together the routing constraints force each message onto a *simple path*
from the sender's resource to the receiver's resource: the recursive
``reached`` predicate (non-tight — handled by the unfounded-set
propagator) rules out disconnected link sets, the in-degree bound rules
out joins/cycles through the path, and the dead-end constraint prunes
useless appendices.

Theory (ASPmT) part — scheduling and latency, evaluated on partial
assignments by :class:`repro.theory.linear.LinearPropagator`:

.. code-block:: text

    &dom { 0..H } = start(T) :- task(T).
    &dom { 0..H } = latency.
    &sum { start(T2) - start(T1)
         ; -W, T1, R : bind(T1, R), map(T1, R, W, _)
         ; -D, M, L : route(M, L), hopdelay(M, L, D) } >= 0 :- comm(M, T1, T2).
    &sum { latency - start(T)
         ; -W, T, R : bind(T, R), map(T, R, W, _) } >= 0 :- task(T).

Objectives are declared symbolically (:class:`ObjectiveSpec`) and
resolved into solver literals by the DSE explorer:

* latency — the theory variable ``latency``,
* energy — ``sum(map energy over bind) + sum(size*link energy over route)``,
* cost — ``sum(resource cost over alloc)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.asp.syntax import Function, Number, Symbol
from repro.synthesis.model import Specification, SpecificationError

__all__ = ["ObjectiveSpec", "EncodedInstance", "encode", "OBJECTIVES", "ALL_OBJECTIVES"]

#: The default objective names of :func:`encode`.
OBJECTIVES = ("latency", "energy", "cost")

#: All supported objectives; ``period`` is the pipelined initiation
#: interval (max accumulated execution demand on any resource).
ALL_OBJECTIVES = ("latency", "energy", "cost", "period")


@dataclass(frozen=True)
class ObjectiveSpec:
    """A minimization objective declared by the encoding.

    ``kind`` is ``"pb"`` (pseudo-Boolean: ``terms`` maps atoms to
    weights) or ``"var"`` (the lower bound of theory variable
    ``variable``).
    """

    name: str
    kind: str
    terms: Tuple[Tuple[int, Symbol], ...] = ()
    variable: Optional[Symbol] = None
    #: Inclusive upper bound of the objective value (for archives/plots).
    max_value: int = 0


@dataclass
class EncodedInstance:
    """The encoding of one specification."""

    specification: Specification
    program: str
    objectives: Tuple[ObjectiveSpec, ...]
    horizon: int
    serialize: bool = False
    link_contention: bool = False
    #: What ``encode(symmetry=...)`` did (a
    #: :class:`repro.analysis.symmetry.SymmetryInfo`); None when off.
    symmetry: Optional[object] = None
    #: What ``encode(domain_bounds=...)`` did (a
    #: :class:`repro.analysis.domains.DomainInfo`); None when off.
    domain: Optional[object] = None

    def objective(self, name: str) -> ObjectiveSpec:
        for spec in self.objectives:
            if spec.name == name:
                return spec
        raise KeyError(name)


_BINDING_RULES = """
% --- binding and allocation -------------------------------------------------
1 { bind(T, R) : map(T, R, _, _) } 1 :- task(T).
alloc(R) :- bind(T, R).
alloc(A) :- route(M, L), link(L, A, B).
alloc(B) :- route(M, L), link(L, A, B).
"""

_FREE_ROUTING_RULES = """
% --- routing as a degree of freedom: a simple path/tree per message -----------
{ route(M, L) : link(L, _, _) } :- message(M).
reached(M, R) :- comm(M, S, T), bind(S, R).
reached(M, B) :- reached(M, A), route(M, L), link(L, A, B).
:- comm(M, S, T), bind(T, R), not reached(M, R).
:- route(M, L), link(L, A, B), not reached(M, A).
:- message(M), res(R), 2 <= #count { L : route(M, L), link(L, X, R) }.
:- route(M, L), link(L, A, B), comm(M, S, T), bind(S, B).
needed(M, B) :- comm(M, S, T), bind(T, B).
needed(M, B) :- route(M, L), link(L, B, C).
:- route(M, L), link(L, A, B), not needed(M, B).
"""

_FIXED_ROUTING_RULES = """
% --- deterministic (fixed) routing: routes follow precomputed paths -----------
% fixedroute(A, B, L) facts enumerate the links of the canonical shortest
% path from resource A to resource B; a message bound to (A, B) uses
% exactly those links.  Routing is no longer a design decision.
route(M, L) :- comm(M, S, T), bind(S, A), bind(T, B), fixedroute(A, B, L).
:- comm(M, S, T), bind(S, A), bind(T, B), A != B, not routable(A, B).
"""

_SCHEDULING_RULES = """
% --- scheduling (background theory) ------------------------------------------
&dom { 0..h } = start(T) :- task(T).
&dom { 0..h } = latency.
&sum { start(T2) - start(T1)
     ; -W, T1, R : bind(T1, R), map(T1, R, W, E)
     ; -D, M, L : route(M, L), hopdelay(M, L, D) } >= 0 :- comm(M, T1, T2).
&sum { latency - start(T)
     ; -W, T, R : bind(T, R), map(T, R, W, E) } >= 0 :- task(T).
"""

_CONTENTION_RULES = """
% --- link contention (optional) -------------------------------------------------
% Each message becomes a scheduled transmission: it starts (mstart) after
% its producer finishes and delivers after its whole route's delay;
% transmissions sharing a link are serialized (store-and-forward TDMA).
&dom { 0..h } = mstart(M) :- message(M).
&sum { mstart(M) - start(T1)
     ; -W, T1, R : bind(T1, R), map(T1, R, W, E) } >= 0 :- comm(M, T1, T2).
&sum { start(T2) - mstart(M)
     ; -D, M, L : route(M, L), hopdelay(M, L, D) } >= 0 :- comm(M, T1, T2).
clash(M1, M2) :- route(M1, L), route(M2, L), M1 < M2.
1 { mbefore(M1, M2) ; mbefore(M2, M1) } 1 :- clash(M1, M2).
&sum { mstart(M2) - mstart(M1)
     ; -D, M1, L : route(M1, L), hopdelay(M1, L, D) } >= 0 :- mbefore(M1, M2).
"""

_DEADLINE_RULES = """
% --- per-task hard deadlines (background theory) --------------------------------
% A task with deadline(T, D) must *complete* by D under its chosen binding.
&sum { start(T) ; W, T, R : bind(T, R), map(T, R, W, E) } <= D :- deadline(T, D).
"""

_PERIOD_RULES = """
% --- pipelined throughput (background theory) ----------------------------------
% In steady state every resource must finish its accumulated work within
% one initiation interval: period >= sum of wcets of the tasks bound to it.
&dom { 0..h } = period.
&sum { period ; -W, T : bind(T, R), map(T, R, W, E) } >= 0 :- res(R).
"""

_SERIALIZE_RULES = """
% --- resource serialization (optional) ----------------------------------------
conflict(T1, T2) :- bind(T1, R), bind(T2, R), T1 < T2.
1 { seq(T1, T2); seq(T2, T1) } 1 :- conflict(T1, T2).
&sum { start(T2) - start(T1)
     ; -W, T1, R : bind(T1, R), map(T1, R, W, E) } >= 0 :- seq(T1, T2).
"""


def _facts(spec: Specification) -> List[str]:
    lines: List[str] = ["% --- instance facts ---"]
    for task in spec.application.tasks:
        lines.append(f"task({task.name}).")
    for message in spec.application.messages:
        lines.append(f"message({message.name}).")
        for target in message.targets:
            lines.append(f"comm({message.name}, {message.source}, {target}).")
    for resource in spec.architecture.resources:
        lines.append(f"res({resource.name}).")
    for link in spec.architecture.links:
        lines.append(f"link({link.name}, {link.source}, {link.target}).")
    for option in spec.mappings:
        lines.append(
            f"map({option.task}, {option.resource}, {option.wcet}, {option.energy})."
        )
    for message in spec.application.messages:
        for link in spec.architecture.links:
            delay = link.delay * max(message.size, 1)
            lines.append(f"hopdelay({message.name}, {link.name}, {delay}).")
    for task in spec.application.tasks:
        if task.deadline is not None:
            lines.append(f"deadline({task.name}, {task.deadline}).")
    return lines


def _fixed_route_facts(spec: Specification) -> List[str]:
    """``fixedroute/3`` and ``routable/2`` facts: canonical shortest paths.

    Deterministic dimension-free equivalent of XY routing: for every
    ordered resource pair the delay-shortest path (stable tie-break from
    the construction order) is precomputed; under ``routing="fixed"``
    messages must follow these paths, removing routing from the design
    space.
    """
    import networkx as nx

    graph = spec.architecture.graph()
    lines: List[str] = ["% --- fixed routing tables ---"]
    for source in graph.nodes:
        try:
            paths = nx.single_source_dijkstra_path(
                graph, source, weight=lambda u, v, d: d["link"].delay
            )
        except nx.NetworkXError:  # pragma: no cover - defensive
            paths = {source: [source]}
        for target, nodes in sorted(paths.items()):
            if target == source:
                continue
            lines.append(f"routable({source}, {target}).")
            for a, b in zip(nodes, nodes[1:]):
                link = graph.edges[a, b]["link"]
                lines.append(f"fixedroute({source}, {target}, {link.name}).")
    return lines


def _objective_specs(
    spec: Specification, names: Sequence[str]
) -> Tuple[ObjectiveSpec, ...]:
    out: List[ObjectiveSpec] = []
    for name in names:
        if name == "latency":
            out.append(
                ObjectiveSpec(
                    "latency",
                    "var",
                    variable=Function("latency"),
                    max_value=spec.horizon(),
                )
            )
        elif name == "energy":
            terms: List[Tuple[int, Symbol]] = []
            for option in spec.mappings:
                atom = Function(
                    "bind", (Function(option.task), Function(option.resource))
                )
                terms.append((option.energy, atom))
            for message in spec.application.messages:
                for link in spec.architecture.links:
                    atom = Function(
                        "route", (Function(message.name), Function(link.name))
                    )
                    terms.append((link.energy * max(message.size, 1), atom))
            out.append(
                ObjectiveSpec(
                    "energy", "pb", terms=tuple(terms), max_value=spec.max_energy()
                )
            )
        elif name == "period":
            out.append(
                ObjectiveSpec(
                    "period",
                    "var",
                    variable=Function("period"),
                    max_value=spec.horizon(),
                )
            )
        elif name == "cost":
            terms = [
                (resource.cost, Function("alloc", (Function(resource.name),)))
                for resource in spec.architecture.resources
                if resource.cost
            ]
            out.append(
                ObjectiveSpec("cost", "pb", terms=tuple(terms), max_value=spec.max_cost())
            )
        else:
            raise ValueError(f"unknown objective {name!r}")
    return tuple(out)


def encode(
    spec: Specification,
    objectives: Sequence[str] = OBJECTIVES,
    serialize: bool = False,
    horizon: Optional[int] = None,
    latency_bound: Optional[int] = None,
    routing: str = "free",
    link_contention: bool = False,
    lint: bool = False,
    symmetry: str = "off",
    domain_bounds: str = "off",
) -> EncodedInstance:
    """Encode ``spec`` as an ASPmT program plus objective declarations.

    ``serialize=True`` adds disjunctive resource serialization (tasks
    sharing a resource execute in some total order); the default models
    fully pipelined resources, as in the paper's base encoding.
    ``latency_bound`` adds a hard end-to-end deadline (a *design
    constraint*, pruning the space before any optimization).
    ``routing`` selects routing freedom: ``"free"`` (paths/trees are
    design decisions — the paper's model) or ``"fixed"`` (canonical
    shortest paths, as with dimension-ordered NoC routing).
    ``link_contention=True`` additionally serializes transmissions that
    share a link (store-and-forward TDMA-style arbitration).
    ``lint=True`` runs the spec validator (:mod:`repro.analysis.spec`)
    first and raises :class:`SpecificationError` on error-severity
    findings — catching unroutable communications or unsatisfiable
    deadlines before they surface as an inexplicably empty Pareto front.
    ``symmetry`` injects lex-leader symmetry-breaking constraints over
    the ``bind/2`` atoms for the platform's automorphism group
    (:mod:`repro.analysis.symmetry`): ``"on"`` requires free routing
    and raises otherwise, ``"auto"`` silently declines when the group
    is trivial or routing is fixed, ``"off"`` (the default) analyzes
    nothing.  The Pareto front *of objective vectors* is identical with
    breaking on or off (symmetric mappings share their vector); only
    the witness implementations and the search effort change.
    ``domain_bounds`` runs the abstract domain analysis
    (:mod:`repro.analysis.domains`) over the finished program and
    attaches sound initial intervals for the ``var`` objectives
    (``latency``/``period``) as :attr:`EncodedInstance.domain` — the
    explorer seeds its interval store with them.  ``"on"`` requires the
    analysis to succeed, ``"auto"`` declines gracefully, ``"off"``
    (the default) analyzes nothing.  The bounds are sound
    over-approximations, so the Pareto front is identical with the
    seeding on or off; only propagation effort changes.
    """
    if routing not in ("free", "fixed"):
        raise ValueError(f"unknown routing mode {routing!r}")
    if symmetry not in ("off", "on", "auto"):
        raise ValueError(
            f"unknown symmetry mode {symmetry!r}; have off, on, auto"
        )
    if domain_bounds not in ("off", "on", "auto"):
        raise ValueError(
            f"unknown domain_bounds mode {domain_bounds!r}; have off, on, auto"
        )
    if symmetry == "on" and routing == "fixed":
        raise ValueError(
            "symmetry='on' requires routing='free': fixed-route tables "
            "pick canonical paths whose energy/cost need not be invariant "
            "under platform automorphisms (use symmetry='auto' to decline "
            "gracefully)"
        )
    if lint:
        from repro.analysis import Severity, validate_specification

        findings = validate_specification(spec, objectives)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        if errors:
            raise SpecificationError(
                "; ".join(f"[{f.rule}] {f.message}" for f in errors)
            )
    h = horizon if horizon is not None else spec.horizon()
    parts = ["#const h = {}.".format(h)]
    parts.extend(_facts(spec))
    parts.append(_BINDING_RULES)
    if routing == "fixed":
        parts.extend(_fixed_route_facts(spec))
        parts.append(_FIXED_ROUTING_RULES)
    else:
        parts.append(_FREE_ROUTING_RULES)
    has_deadlines = any(t.deadline is not None for t in spec.application.tasks)
    if (
        "latency" in objectives
        or serialize
        or latency_bound is not None
        or has_deadlines
        or link_contention
    ):
        parts.append(_SCHEDULING_RULES)
    if link_contention:
        parts.append(_CONTENTION_RULES)
    if has_deadlines:
        parts.append(_DEADLINE_RULES)
    if "period" in objectives:
        parts.append(_PERIOD_RULES)
    if serialize:
        parts.append(_SERIALIZE_RULES)
    if latency_bound is not None:
        parts.append(f"&sum {{ latency }} <= {latency_bound}.")
    symmetry_info = None
    if symmetry != "off":
        symmetry_info = _apply_symmetry(spec, symmetry, routing, parts)
    program = "\n".join(parts)
    objective_specs = _objective_specs(spec, objectives)
    domain_info = None
    if domain_bounds != "off":
        domain_info = _apply_domain_bounds(
            spec, domain_bounds, program, objective_specs
        )
    return EncodedInstance(
        specification=spec,
        program=program,
        objectives=objective_specs,
        horizon=h,
        serialize=serialize,
        link_contention=link_contention,
        symmetry=symmetry_info,
        domain=domain_info,
    )


def _apply_symmetry(spec: Specification, mode: str, routing: str, parts: List[str]):
    """Analyze the platform and append lex-leader rules to ``parts``."""
    from time import perf_counter

    from repro.analysis.symmetry import (
        SymmetryInfo,
        analyze_specification,
        lex_leader_program,
    )

    started = perf_counter()
    platform = analyze_specification(spec)
    declined: Optional[str] = None
    if routing == "fixed":
        declined = "fixed routing tables are not automorphism-invariant"
    elif platform.trivial:
        declined = "trivial automorphism group"
    applied = False
    constraints = 0
    if declined is None:
        text, constraints = lex_leader_program(spec, platform)
        if constraints:
            parts.append("% --- lex-leader symmetry breaking ---")
            parts.append(text)
            applied = True
        else:
            declined = "no generator constrains any binding"
    return SymmetryInfo(
        mode=mode,
        applied=applied,
        generators=len(platform.generators),
        order=platform.order,
        orbits=len(platform.nontrivial_orbits),
        constraints=constraints,
        seconds=perf_counter() - started,
        declined=declined,
    )


def _apply_domain_bounds(
    spec: Specification,
    mode: str,
    program: str,
    objectives: Sequence[ObjectiveSpec],
):
    """Run the domain analysis over the finished program and collect
    sound initial intervals for the ``var`` objectives."""
    import dataclasses

    from repro.analysis.domains import DomainInfo, analyze_program
    from repro.asp.parser import parse_program

    try:
        analysis = analyze_program(parse_program(program))
    except Exception as error:
        if mode == "on":
            raise ValueError(
                f"domain_bounds='on': domain analysis failed: {error}"
            ) from error
        return DomainInfo(mode=mode, applied=False, declined=str(error))
    info = analysis.info(mode=mode, applied=False)
    # Scheduling floor: every task runs somewhere, so both latency and
    # the busiest-resource period are at least the largest per-task
    # minimum wcet over that task's mapping options.
    best_wcet: Dict[str, int] = {}
    for option in spec.mappings:
        current = best_wcet.get(option.task)
        if current is None or option.wcet < current:
            best_wcet[option.task] = option.wcet
    floor = max(best_wcet.values(), default=0)
    bounds: Dict[str, Tuple[int, int]] = {}
    for objective in objectives:
        if objective.kind != "var" or objective.variable is None:
            continue
        name = str(objective.variable)
        interval = info.bounds.get(name)
        if interval is None:
            continue
        lo, hi = interval
        lo = max(lo, floor)
        if objective.max_value:
            hi = min(hi, objective.max_value)
        if lo > hi:
            continue  # statically infeasible — leave it to the solver
        bounds[name] = (lo, hi)
    declined = None if bounds else "no var-objective intervals inferred"
    return dataclasses.replace(
        info, applied=bool(bounds), bounds=bounds, declined=declined
    )

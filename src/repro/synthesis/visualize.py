"""Visualization: Graphviz DOT export and ASCII summaries.

Specifications and implementations export to the standard DOT format so
users can render them with graphviz (``dot -Tpdf``) or any online
viewer; :func:`implementation_summary` produces a terminal-friendly
description used by the examples and the DSE CLI.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.synthesis.model import Specification
from repro.synthesis.solution import Implementation

__all__ = [
    "application_to_dot",
    "architecture_to_dot",
    "implementation_to_dot",
    "implementation_summary",
    "schedule_gantt",
]


def _quote(name: str) -> str:
    return f'"{name}"'


def application_to_dot(spec: Specification) -> str:
    """The task graph as a DOT digraph (tasks round, messages as edges)."""
    lines = [
        "digraph application {",
        "  rankdir=LR;",
        '  node [shape=ellipse, style=filled, fillcolor="#dbeafe"];',
    ]
    for task in spec.application.tasks:
        options = len(spec.options_of(task.name))
        lines.append(
            f"  {_quote(task.name)} [label=\"{task.name}\\n{options} options\"];"
        )
    for message in spec.application.messages:
        for target in message.targets:
            lines.append(
                f"  {_quote(message.source)} -> {_quote(target)} "
                f'[label="{message.name} (s={message.size})"];'
            )
    lines.append("}")
    return "\n".join(lines)


def architecture_to_dot(spec: Specification) -> str:
    """The platform graph (resources as boxes, links as edges)."""
    lines = [
        "digraph architecture {",
        '  node [shape=box, style=filled, fillcolor="#dcfce7"];',
    ]
    for resource in spec.architecture.resources:
        lines.append(
            f"  {_quote(resource.name)} "
            f'[label="{resource.name}\\ncost={resource.cost}"];'
        )
    for link in spec.architecture.links:
        lines.append(
            f"  {_quote(link.source)} -> {_quote(link.target)} "
            f'[label="{link.name} d={link.delay} e={link.energy}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def implementation_to_dot(
    spec: Specification, implementation: Implementation
) -> str:
    """One design point: platform with bound tasks and highlighted routes."""
    by_resource: Dict[str, List[str]] = {}
    for task, resource in implementation.binding.items():
        by_resource.setdefault(resource, []).append(task)
    used_links = {
        name for route in implementation.routes.values() for name in route
    }
    lines = [
        "digraph implementation {",
        '  node [shape=box, style=filled];',
    ]
    for resource in spec.architecture.resources:
        tasks = sorted(by_resource.get(resource.name, []))
        fill = "#fef9c3" if tasks else "#f3f4f6"
        label = resource.name
        if tasks:
            label += "\\n" + "\\n".join(tasks)
        lines.append(
            f"  {_quote(resource.name)} [label=\"{label}\", fillcolor=\"{fill}\"];"
        )
    for link in spec.architecture.links:
        style = (
            'color="#dc2626", penwidth=2' if link.name in used_links else 'color="#9ca3af"'
        )
        lines.append(
            f"  {_quote(link.source)} -> {_quote(link.target)} [{style}];"
        )
    lines.append("}")
    return "\n".join(lines)


def schedule_gantt(
    spec: Specification, implementation: Implementation, width: int = 60
) -> str:
    """An ASCII Gantt chart of the schedule, one row per resource.

    Tasks render as ``[name ]`` blocks scaled to their WCET; message
    transmissions (when scheduled under link contention) appear on a
    ``bus`` row per link group.
    """
    if not implementation.schedule:
        return "(no schedule)"

    def wcet(task: str) -> int:
        return spec.option(task, implementation.binding[task]).wcet

    makespan = max(
        implementation.schedule[t] + wcet(t) for t in implementation.schedule
    )
    makespan = max(makespan, 1)
    scale = max(1, -(-makespan // width))  # ceil division: time per column

    def bar(entries):
        """entries: list of (start, duration, label)."""
        columns = -(-makespan // scale)
        row = [" "] * columns
        for start, duration, label in sorted(entries):
            begin = start // scale
            end = max(begin + 1, -(-(start + duration) // scale))
            block = list("[" + label[: max(end - begin - 2, 0)].ljust(end - begin - 2, ".") + "]")
            if end - begin == 1:
                block = ["#"]
            for offset, char in enumerate(block):
                if begin + offset < columns:
                    row[begin + offset] = char
        return "".join(row)

    by_resource: Dict[str, list] = {}
    for task, start in implementation.schedule.items():
        resource = implementation.binding.get(task)
        if resource is None:
            continue
        by_resource.setdefault(resource, []).append((start, wcet(task), task))

    label_width = max(
        [len(name) for name in by_resource]
        + ([len("links")] if implementation.message_schedule else []),
        default=0,
    )
    lines = [f"t=0 .. {makespan} (one column = {scale} time unit(s))"]
    for resource in sorted(by_resource):
        lines.append(
            f"{resource.rjust(label_width)} |{bar(by_resource[resource])}"
        )
    if implementation.message_schedule:
        links_by_name = {l.name: l for l in spec.architecture.links}
        transmissions = []
        for message in spec.application.messages:
            start = implementation.message_schedule.get(message.name)
            if start is None:
                continue
            duration = sum(
                links_by_name[n].delay * max(message.size, 1)
                for n in implementation.routes.get(message.name, ())
            )
            if duration:
                transmissions.append((start, duration, message.name))
        if transmissions:
            lines.append(f"{'links'.rjust(label_width)} |{bar(transmissions)}")
    return "\n".join(lines)


def implementation_summary(
    spec: Specification, implementation: Implementation
) -> str:
    """A compact multi-line terminal description of one design point."""
    lines = []
    if implementation.objectives:
        objectives = ", ".join(
            f"{name}={value}" for name, value in sorted(implementation.objectives.items())
        )
        lines.append(f"objectives: {objectives}")
    by_resource: Dict[str, List[str]] = {}
    for task, resource in sorted(implementation.binding.items()):
        by_resource.setdefault(resource, []).append(task)
    for resource in spec.architecture.resources:
        tasks = by_resource.get(resource.name)
        if tasks:
            lines.append(f"  {resource.name}: {', '.join(tasks)}")
    for message in spec.application.messages:
        route = implementation.routes.get(message.name)
        if route:
            lines.append(f"  {message.name}: {' -> '.join(route)}")
    if implementation.schedule:
        order = sorted(implementation.schedule.items(), key=lambda kv: kv[1])
        lines.append(
            "  schedule: "
            + " ".join(f"{task}@{start}" for task, start in order)
        )
    return "\n".join(lines)

"""JSON (de)serialization of specifications and results.

Lets users keep instances in version control and feed externally
generated specifications (e.g. converted TGFF files) to the explorer:

.. code-block:: python

    from repro.synthesis.io import load_specification, save_specification

    save_specification(spec, "instance.json")
    spec = load_specification("instance.json")
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.synthesis.model import (
    Application,
    Architecture,
    Link,
    MappingOption,
    Message,
    Resource,
    Specification,
    Task,
)

__all__ = [
    "specification_to_dict",
    "specification_from_dict",
    "save_specification",
    "load_specification",
]

FORMAT_VERSION = 1


def specification_to_dict(spec: Specification) -> Dict:
    """A plain-JSON representation of ``spec``."""
    return {
        "format": FORMAT_VERSION,
        "application": {
            # Plain string for deadline-free tasks (the common case);
            # {"name", "deadline"} objects otherwise.
            "tasks": [
                task.name
                if task.deadline is None
                else {"name": task.name, "deadline": task.deadline}
                for task in spec.application.tasks
            ],
            "messages": [
                {
                    "name": message.name,
                    "source": message.source,
                    "target": message.target,
                    "size": message.size,
                    "extra_targets": list(message.extra_targets),
                }
                for message in spec.application.messages
            ],
        },
        "architecture": {
            "resources": [
                {"name": resource.name, "cost": resource.cost}
                for resource in spec.architecture.resources
            ],
            "links": [
                {
                    "name": link.name,
                    "source": link.source,
                    "target": link.target,
                    "delay": link.delay,
                    "energy": link.energy,
                }
                for link in spec.architecture.links
            ],
        },
        "mappings": [
            {
                "task": option.task,
                "resource": option.resource,
                "wcet": option.wcet,
                "energy": option.energy,
            }
            for option in spec.mappings
        ],
    }


def specification_from_dict(data: Dict) -> Specification:
    """Rebuild a :class:`Specification`; validation runs on construction."""
    version = data.get("format", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported specification format {version}")
    application = Application(
        tasks=tuple(
            Task(entry)
            if isinstance(entry, str)
            else Task(entry["name"], deadline=entry.get("deadline"))
            for entry in data["application"]["tasks"]
        ),
        messages=tuple(
            Message(
                message["name"],
                message["source"],
                message["target"],
                size=message.get("size", 1),
                extra_targets=tuple(message.get("extra_targets", ())),
            )
            for message in data["application"]["messages"]
        ),
    )
    architecture = Architecture(
        resources=tuple(
            Resource(resource["name"], cost=resource.get("cost", 0))
            for resource in data["architecture"]["resources"]
        ),
        links=tuple(
            Link(
                link["name"],
                link["source"],
                link["target"],
                delay=link.get("delay", 1),
                energy=link.get("energy", 1),
            )
            for link in data["architecture"]["links"]
        ),
    )
    mappings = tuple(
        MappingOption(
            option["task"],
            option["resource"],
            wcet=option["wcet"],
            energy=option.get("energy", 0),
        )
        for option in data["mappings"]
    )
    return Specification(application, architecture, mappings)


def save_specification(spec: Specification, path: Union[str, Path]) -> None:
    Path(path).write_text(
        json.dumps(specification_to_dict(spec), indent=2, sort_keys=True) + "\n"
    )


def load_specification(path: Union[str, Path]) -> Specification:
    return specification_from_dict(json.loads(Path(path).read_text()))

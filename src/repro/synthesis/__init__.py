"""System-level synthesis: the application domain of the paper.

The specification model follows the double-graph formulation used across
the authors' publication series (Andres et al. LPNMR'13; Biewer et al.
DATE'15; Neubauer et al. DATE'17/'18):

* an *application graph* — tasks connected by messages (data
  dependencies),
* an *architecture graph* — processing resources connected by directed
  links (a NoC mesh, a shared bus, ...),
* *mapping options* — for each task, the resources that can execute it,
  with per-option worst-case execution time and energy,
* per-resource allocation *costs*.

A feasible *implementation* binds every task to one of its mapping
options, routes every message over a path between the endpoint
resources, and schedules all tasks respecting data dependencies; the DSE
optimizes latency, energy and cost over all implementations.

Modules:

* :mod:`repro.synthesis.model` -- specification data model + validation,
* :mod:`repro.synthesis.platforms` -- architecture generators (mesh NoC,
  bus, rings) and heterogeneous tile profiles,
* :mod:`repro.synthesis.encoding` -- the ASPmT encoding (facts, rules,
  theory atoms, objective declarations),
* :mod:`repro.synthesis.solution` -- decoding of models into
  implementations and a solver-independent feasibility checker.
"""

from repro.synthesis.encoding import EncodedInstance, ObjectiveSpec, encode
from repro.synthesis.model import (
    Application,
    Architecture,
    Link,
    MappingOption,
    Message,
    Resource,
    Specification,
    Task,
)
from repro.synthesis.platforms import bus, heterogeneous_resources, mesh, ring
from repro.synthesis.solution import Implementation, decode_model, validate

__all__ = [
    "Application",
    "Architecture",
    "EncodedInstance",
    "Implementation",
    "Link",
    "MappingOption",
    "Message",
    "ObjectiveSpec",
    "Resource",
    "Specification",
    "Task",
    "bus",
    "decode_model",
    "encode",
    "heterogeneous_resources",
    "mesh",
    "ring",
    "validate",
]

"""Decoding and independent validation of synthesis solutions.

:func:`decode_model` turns an answer-set :class:`repro.asp.control.Model`
into an :class:`Implementation`; :func:`validate` re-checks feasibility
and recomputes the objective vector *without* any solver machinery, so
tests and the DSE can cross-validate the whole ASPmT stack against a
direct implementation of the problem semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.asp.control import Model
from repro.asp.syntax import Function
from repro.synthesis.model import Link, Specification

__all__ = ["Implementation", "decode_model", "validate", "recompute_objectives"]


@dataclass
class Implementation:
    """One fully decided design point."""

    binding: Dict[str, str]  # task -> resource
    routes: Dict[str, List[str]]  # message -> ordered link names
    schedule: Dict[str, int] = field(default_factory=dict)  # task -> start
    #: Transmission start times (populated under link contention).
    message_schedule: Dict[str, int] = field(default_factory=dict)
    objectives: Dict[str, int] = field(default_factory=dict)

    def key(self) -> Tuple:
        """Hashable identity of the Boolean design decisions."""
        return (
            tuple(sorted(self.binding.items())),
            tuple(sorted((m, tuple(r)) for m, r in self.routes.items())),
        )


def decode_model(spec: Specification, model: Model) -> Implementation:
    """Extract binding, routes and schedule from an answer set."""
    binding: Dict[str, str] = {}
    for atom in model.atoms_of("bind", 2):
        task, resource = atom.arguments
        binding[str(task)] = str(resource)

    links_by_name = {l.name: l for l in spec.architecture.links}
    used: Dict[str, List[Link]] = {m.name: [] for m in spec.application.messages}
    for atom in model.atoms_of("route", 2):
        message, link = atom.arguments
        used[str(message)].append(links_by_name[str(link)])

    routes: Dict[str, List[str]] = {}
    for message in spec.application.messages:
        if message.extra_targets:
            routes[message.name] = _order_tree(
                used[message.name], binding.get(message.source, "")
            )
        else:
            routes[message.name] = _order_path(
                used[message.name],
                binding.get(message.source, ""),
                binding.get(message.target, ""),
            )

    schedule: Dict[str, int] = {}
    message_schedule: Dict[str, int] = {}
    ints = model.theory.get("ints", {})
    for symbol, value in ints.items():
        if isinstance(symbol, Function) and symbol.signature == ("start", 1):
            schedule[str(symbol.arguments[0])] = value
        elif isinstance(symbol, Function) and symbol.signature == ("mstart", 1):
            message_schedule[str(symbol.arguments[0])] = value

    implementation = Implementation(
        binding=binding,
        routes=routes,
        schedule=schedule,
        message_schedule=message_schedule,
    )
    implementation.objectives = recompute_objectives(spec, implementation)
    return implementation


def _order_path(links: List[Link], source: str, target: str) -> List[str]:
    """Order a set of path links from ``source`` to ``target``."""
    if not links:
        return []
    by_source = {link.source: link for link in links}
    ordered: List[str] = []
    current = source
    for _ in range(len(links)):
        link = by_source.get(current)
        if link is None:
            break
        ordered.append(link.name)
        current = link.target
    if len(ordered) != len(links) or current != target:
        # Not a clean path; return raw names for the validator to reject.
        return [link.name for link in links]
    return ordered


def _validate_tree(
    message: str,
    route: List[str],
    source: str,
    target_resources: set,
    links_by_name: Dict[str, Link],
) -> List[str]:
    """Structural checks for a multicast route tree."""
    problems: List[str] = []
    links = []
    for name in route:
        link = links_by_name.get(name)
        if link is None:
            problems.append(f"message {message}: unknown link {name}")
            return problems
        links.append(link)
    indegree: Dict[str, int] = {}
    for link in links:
        indegree[link.target] = indegree.get(link.target, 0) + 1
    for node, count in indegree.items():
        if count > 1:
            problems.append(f"message {message}: node {node} has in-degree {count}")
    if indegree.get(source):
        problems.append(f"message {message}: tree re-enters the source {source}")
    # Reachability from the source over the used links.
    by_source: Dict[str, List[Link]] = {}
    for link in links:
        by_source.setdefault(link.source, []).append(link)
    reached = {source}
    frontier = [source]
    while frontier:
        node = frontier.pop()
        for link in by_source.get(node, ()):
            if link.target not in reached:
                reached.add(link.target)
                frontier.append(link.target)
    for link in links:
        if link.source not in reached:
            problems.append(
                f"message {message}: link {link.name} is disconnected from {source}"
            )
    for target in target_resources:
        if target not in reached:
            problems.append(f"message {message}: target {target} is not reached")
    # Dead-end elimination: every leaf must host a target.
    for link in links:
        if link.target not in by_source and link.target not in target_resources:
            problems.append(
                f"message {message}: dead-end branch at {link.target}"
            )
    return problems


def _order_tree(links: List[Link], source: str) -> List[str]:
    """Order a multicast tree's links in BFS order from ``source``."""
    if not links:
        return []
    by_source: Dict[str, List[Link]] = {}
    for link in links:
        by_source.setdefault(link.source, []).append(link)
    ordered: List[str] = []
    frontier = [source]
    visited = {source}
    while frontier:
        node = frontier.pop(0)
        for link in sorted(by_source.get(node, []), key=lambda l: l.name):
            if link.target not in visited:
                visited.add(link.target)
                ordered.append(link.name)
                frontier.append(link.target)
    if len(ordered) != len(links):
        return [link.name for link in links]  # not a tree; validator rejects
    return ordered


def recompute_objectives(
    spec: Specification, implementation: Implementation
) -> Dict[str, int]:
    """Objective vector from first principles (no solver state).

    * latency: the makespan of ``implementation.schedule`` when one is
      present (this covers serialized resources), otherwise the
      earliest-start longest path through the precedence structure,
    * energy: execution energy of the chosen bindings plus size-scaled
      energy of every routed link,
    * cost: cost of every allocated resource (bindings plus route
      endpoints).
    """
    links_by_name = {l.name: l for l in spec.architecture.links}

    def wcet(task: str) -> int:
        return spec.option(task, implementation.binding[task]).wcet

    if implementation.schedule:
        latency = max(
            (
                implementation.schedule[t.name] + wcet(t.name)
                for t in spec.application.tasks
                if t.name in implementation.schedule
            ),
            default=0,
        )
    else:
        # Earliest-start schedule via topological order of the task DAG.
        import networkx as nx

        incoming: Dict[str, List] = {}
        for message in spec.application.messages:
            for target in message.targets:
                incoming.setdefault(target, []).append(message)
        start: Dict[str, int] = {}
        for task in nx.topological_sort(spec.application.graph()):
            earliest = 0
            for message in incoming.get(task, ()):
                delay = sum(
                    links_by_name[name].delay * max(message.size, 1)
                    for name in implementation.routes.get(message.name, ())
                )
                earliest = max(
                    earliest, start[message.source] + wcet(message.source) + delay
                )
            start[task] = earliest
        latency = max(
            (start[t.name] + wcet(t.name) for t in spec.application.tasks), default=0
        )

    energy = sum(
        spec.option(task, resource).energy
        for task, resource in implementation.binding.items()
    )
    for message in spec.application.messages:
        for name in implementation.routes.get(message.name, ()):
            energy += links_by_name[name].energy * max(message.size, 1)

    allocated = set(implementation.binding.values())
    for route in implementation.routes.values():
        for name in route:
            link = links_by_name[name]
            allocated.add(link.source)
            allocated.add(link.target)
    cost = sum(
        resource.cost
        for resource in spec.architecture.resources
        if resource.name in allocated
    )

    # Pipelined initiation interval: the busiest resource's total demand.
    load: Dict[str, int] = {}
    for task, resource in implementation.binding.items():
        load[resource] = load.get(resource, 0) + spec.option(task, resource).wcet
    period = max(load.values(), default=0)

    return {"latency": latency, "energy": energy, "cost": cost, "period": period}


def validate(
    spec: Specification,
    implementation: Implementation,
    serialized: bool = False,
    link_contention: bool = False,
) -> List[str]:
    """Feasibility check; returns a list of violations (empty == valid).

    ``serialized=True`` additionally requires that tasks sharing a
    resource do not overlap in the schedule (the encoding's
    ``serialize`` option); ``link_contention=True`` requires that
    transmissions sharing a link do not overlap (``message_schedule``).
    """
    problems: List[str] = []
    links_by_name = {l.name: l for l in spec.architecture.links}

    # Binding: every task on one of its mapping options.
    for task in spec.application.tasks:
        resource = implementation.binding.get(task.name)
        if resource is None:
            problems.append(f"task {task.name} is unbound")
            continue
        try:
            spec.option(task.name, resource)
        except KeyError:
            problems.append(f"task {task.name} bound to invalid resource {resource}")

    # Routing: a simple path (unicast) or tree (multicast) between the
    # endpoint resources.
    for message in spec.application.messages:
        route = implementation.routes.get(message.name)
        if route is None:
            problems.append(f"message {message.name} has no route entry")
            continue
        src = implementation.binding.get(message.source)
        target_resources = [
            implementation.binding.get(t) for t in message.targets
        ]
        if src is None or any(r is None for r in target_resources):
            continue  # already reported
        if message.extra_targets:
            problems.extend(
                _validate_tree(
                    message.name, route, src, set(target_resources), links_by_name
                )
            )
            continue
        tgt = target_resources[0]
        current = src
        visited = {src}
        ok = True
        for name in route:
            link = links_by_name.get(name)
            if link is None or link.source != current:
                problems.append(f"message {message.name}: broken route at {name}")
                ok = False
                break
            current = link.target
            if current in visited:
                problems.append(f"message {message.name}: route revisits {current}")
                ok = False
                break
            visited.add(current)
        if ok and current != tgt:
            problems.append(
                f"message {message.name}: route ends at {current}, not {tgt}"
            )

    # Schedule: precedence constraints with communication delays.
    if implementation.schedule:
        for message in spec.application.messages:
            src = implementation.schedule.get(message.source)
            if src is None:
                problems.append(f"message {message.name}: source unscheduled")
                continue
            resource = implementation.binding.get(message.source)
            if resource is None:
                continue
            wcet = spec.option(message.source, resource).wcet
            delay = sum(
                links_by_name[name].delay * max(message.size, 1)
                for name in implementation.routes.get(message.name, ())
            )
            for target in message.targets:
                tgt = implementation.schedule.get(target)
                if tgt is None:
                    problems.append(f"message {message.name}: {target} unscheduled")
                    continue
                if tgt < src + wcet + delay:
                    problems.append(
                        f"message {message.name}: start({target})={tgt} < "
                        f"start({message.source})+wcet+delay={src + wcet + delay}"
                    )

    # Transmission schedule (present under link contention).
    if implementation.message_schedule:
        def route_delay(message) -> int:
            return sum(
                links_by_name[name].delay * max(message.size, 1)
                for name in implementation.routes.get(message.name, ())
            )

        for message in spec.application.messages:
            mstart = implementation.message_schedule.get(message.name)
            src = implementation.schedule.get(message.source)
            resource = implementation.binding.get(message.source)
            if mstart is None or src is None or resource is None:
                continue
            wcet = spec.option(message.source, resource).wcet
            if mstart < src + wcet:
                problems.append(
                    f"message {message.name}: transmitted at {mstart}, before "
                    f"its producer finishes at {src + wcet}"
                )
            for target in message.targets:
                tgt = implementation.schedule.get(target)
                if tgt is not None and tgt < mstart + route_delay(message):
                    problems.append(
                        f"message {message.name}: {target} starts before delivery"
                    )
        if link_contention:
            messages = list(spec.application.messages)
            for i, first in enumerate(messages):
                for second in messages[i + 1 :]:
                    shared = set(implementation.routes.get(first.name, ())) & set(
                        implementation.routes.get(second.name, ())
                    )
                    if not shared:
                        continue
                    s1 = implementation.message_schedule.get(first.name)
                    s2 = implementation.message_schedule.get(second.name)
                    if s1 is None or s2 is None:
                        continue
                    d1, d2 = route_delay(first), route_delay(second)
                    if not (s1 + d1 <= s2 or s2 + d2 <= s1):
                        problems.append(
                            f"messages {first.name} and {second.name} overlap "
                            f"on shared links {sorted(shared)}"
                        )

    # Per-task hard deadlines.
    if implementation.schedule:
        for task in spec.application.tasks:
            if task.deadline is None:
                continue
            start = implementation.schedule.get(task.name)
            resource = implementation.binding.get(task.name)
            if start is None or resource is None:
                continue
            finish = start + spec.option(task.name, resource).wcet
            if finish > task.deadline:
                problems.append(
                    f"task {task.name} finishes at {finish}, after its "
                    f"deadline {task.deadline}"
                )

    # Serialization: no overlap on shared resources.
    if serialized and implementation.schedule:
        tasks = [t.name for t in spec.application.tasks]
        for i, first in enumerate(tasks):
            for second in tasks[i + 1 :]:
                if implementation.binding.get(first) != implementation.binding.get(
                    second
                ):
                    continue
                s1 = implementation.schedule.get(first)
                s2 = implementation.schedule.get(second)
                if s1 is None or s2 is None:
                    continue
                w1 = spec.option(first, implementation.binding[first]).wcet
                w2 = spec.option(second, implementation.binding[second]).wcet
                if not (s1 + w1 <= s2 or s2 + w2 <= s1):
                    problems.append(
                        f"tasks {first} and {second} overlap on "
                        f"{implementation.binding[first]}"
                    )

    # Objectives: recomputation must match (when present).
    if implementation.objectives:
        expected = recompute_objectives(spec, implementation)
        for name, value in implementation.objectives.items():
            if name in expected and expected[name] != value:
                problems.append(
                    f"objective {name}: claimed {value}, recomputed {expected[name]}"
                )
    return problems

"""Specification data model for system-level synthesis.

All entities are immutable; the :class:`Specification` validates the
cross-references once at construction and exposes derived views (graphs,
option tables, design-space size) used by the encoding, the baselines and
the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

__all__ = [
    "Task",
    "Message",
    "Application",
    "Resource",
    "Link",
    "Architecture",
    "MappingOption",
    "Specification",
    "SpecificationError",
]


class SpecificationError(ValueError):
    """Raised for inconsistent specifications."""


@dataclass(frozen=True)
class Task:
    """A computational actor of the application graph.

    ``deadline`` (optional) is a hard bound on the task's *completion*
    time — a per-task design constraint (TGFF's HARD_DEADLINE).
    """

    name: str
    deadline: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SpecificationError(f"task name {self.name!r} is not an identifier")
        if self.deadline is not None and self.deadline <= 0:
            raise SpecificationError(f"task {self.name!r} has a non-positive deadline")


@dataclass(frozen=True)
class Message:
    """A data dependency: ``source`` produces data consumed by ``target``.

    ``size`` scales the per-hop communication delay/energy (abstract
    units).  ``extra_targets`` turns the message into a *multicast*: the
    data is routed as a tree reaching every reader (target plus
    extra_targets).
    """

    name: str
    source: str
    target: str
    size: int = 1
    extra_targets: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SpecificationError(f"message {self.name!r} has negative size")
        if self.target in self.extra_targets:
            raise SpecificationError(
                f"message {self.name!r} lists its target twice"
            )
        if len(set(self.extra_targets)) != len(self.extra_targets):
            raise SpecificationError(
                f"message {self.name!r} has duplicate extra targets"
            )

    @property
    def targets(self) -> Tuple[str, ...]:
        """All readers of the message."""
        return (self.target,) + self.extra_targets


@dataclass(frozen=True)
class Resource:
    """A processing element or router of the architecture graph.

    ``cost`` is the one-time allocation cost (area/price) paid when at
    least one task is bound to the resource or a message is routed
    through it.  Pure routers have no mapping options.
    """

    name: str
    cost: int = 0

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise SpecificationError(f"resource {self.name!r} has negative cost")


@dataclass(frozen=True)
class Link:
    """A directed communication link between two resources."""

    name: str
    source: str
    target: str
    delay: int = 1
    energy: int = 1

    def __post_init__(self) -> None:
        if self.delay < 0 or self.energy < 0:
            raise SpecificationError(f"link {self.name!r} has negative delay/energy")
        if self.source == self.target:
            raise SpecificationError(f"link {self.name!r} is a self-loop")


@dataclass(frozen=True)
class MappingOption:
    """Task ``task`` may run on ``resource`` with the given WCET/energy."""

    task: str
    resource: str
    wcet: int
    energy: int

    def __post_init__(self) -> None:
        if self.wcet <= 0:
            raise SpecificationError(
                f"mapping {self.task}->{self.resource} needs positive wcet"
            )
        if self.energy < 0:
            raise SpecificationError(
                f"mapping {self.task}->{self.resource} has negative energy"
            )


@dataclass(frozen=True)
class Application:
    """Tasks plus messages; must form a DAG over tasks."""

    tasks: Tuple[Task, ...]
    messages: Tuple[Message, ...]

    def __post_init__(self) -> None:
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            raise SpecificationError("duplicate task names")
        task_set = set(names)
        message_names = [m.name for m in self.messages]
        if len(set(message_names)) != len(message_names):
            raise SpecificationError("duplicate message names")
        for message in self.messages:
            endpoints = (message.source,) + message.targets
            if any(task not in task_set for task in endpoints):
                raise SpecificationError(
                    f"message {message.name!r} references unknown tasks"
                )
            if message.source in message.targets:
                raise SpecificationError(f"message {message.name!r} is a self-loop")
        if not nx.is_directed_acyclic_graph(self.graph()):
            raise SpecificationError("application graph has a dependency cycle")

    def graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        graph.add_nodes_from(t.name for t in self.tasks)
        for message in self.messages:
            for target in message.targets:
                graph.add_edge(message.source, target, message=message)
        return graph

    def task(self, name: str) -> Task:
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(name)


@dataclass(frozen=True)
class Architecture:
    """Resources plus directed links."""

    resources: Tuple[Resource, ...]
    links: Tuple[Link, ...]

    def __post_init__(self) -> None:
        names = [r.name for r in self.resources]
        if len(set(names)) != len(names):
            raise SpecificationError("duplicate resource names")
        resource_set = set(names)
        link_names = [l.name for l in self.links]
        if len(set(link_names)) != len(link_names):
            raise SpecificationError("duplicate link names")
        for link in self.links:
            if link.source not in resource_set or link.target not in resource_set:
                raise SpecificationError(f"link {link.name!r} references unknown resources")

    def graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        graph.add_nodes_from(r.name for r in self.resources)
        for link in self.links:
            graph.add_edge(link.source, link.target, link=link)
        return graph

    def resource(self, name: str) -> Resource:
        for resource in self.resources:
            if resource.name == name:
                return resource
        raise KeyError(name)


@dataclass(frozen=True)
class Specification:
    """A complete synthesis problem instance."""

    application: Application
    architecture: Architecture
    mappings: Tuple[MappingOption, ...]

    def __post_init__(self) -> None:
        tasks = {t.name for t in self.application.tasks}
        resources = {r.name for r in self.architecture.resources}
        seen = set()
        for option in self.mappings:
            if option.task not in tasks:
                raise SpecificationError(f"mapping references unknown task {option.task!r}")
            if option.resource not in resources:
                raise SpecificationError(
                    f"mapping references unknown resource {option.resource!r}"
                )
            key = (option.task, option.resource)
            if key in seen:
                raise SpecificationError(f"duplicate mapping option {key}")
            seen.add(key)
        for task in tasks:
            if not any(o.task == task for o in self.mappings):
                raise SpecificationError(f"task {task!r} has no mapping options")

    # -- derived views ------------------------------------------------------

    def options_of(self, task: str) -> List[MappingOption]:
        return [o for o in self.mappings if o.task == task]

    def option(self, task: str, resource: str) -> MappingOption:
        for o in self.mappings:
            if o.task == task and o.resource == resource:
                return o
        raise KeyError((task, resource))

    def binding_space_size(self) -> int:
        """Number of pure binding combinations (ignoring routing)."""
        size = 1
        for task in self.application.tasks:
            size *= len(self.options_of(task.name))
        return size

    def horizon(self) -> int:
        """A safe scheduling horizon: every task serialized with worst
        WCET plus every message on a worst-case-length route."""
        wcet_sum = sum(
            max(o.wcet for o in self.options_of(t.name))
            for t in self.application.tasks
        )
        max_delay = max((l.delay for l in self.architecture.links), default=0)
        max_hops = max(len(self.architecture.resources) - 1, 0)
        comm = sum(
            max_hops * max_delay * max(message.size, 1)
            for message in self.application.messages
        )
        return max(wcet_sum + comm, 1)

    def max_energy(self) -> int:
        """Upper bound on the energy objective (for &dom intervals)."""
        exec_energy = sum(
            max(o.energy for o in self.options_of(t.name))
            for t in self.application.tasks
        )
        link_energy = sum(
            m.size * sum(l.energy for l in self.architecture.links)
            for m in self.application.messages
        )
        return exec_energy + link_energy

    def max_cost(self) -> int:
        return sum(r.cost for r in self.architecture.resources)

    def lint(self, objectives: Optional[Sequence[str]] = None) -> list:
        """Static diagnostics for this spec (see :mod:`repro.analysis.spec`).

        Returns a list of :class:`repro.analysis.Diagnostic` — empty when
        the spec has no unroutable communications, isolated resources,
        unsatisfiable deadlines, or degenerate objectives.
        """
        from repro.analysis.spec import validate_specification

        return validate_specification(self, objectives)

    def summary(self) -> Dict[str, int]:
        """Instance characteristics (the Table I columns)."""
        return {
            "tasks": len(self.application.tasks),
            "messages": len(self.application.messages),
            "resources": len(self.architecture.resources),
            "links": len(self.architecture.links),
            "mapping_options": len(self.mappings),
            "binding_space": self.binding_space_size(),
        }

"""Benchmark harness: regenerates every table and figure of the paper.

Each experiment has a function returning structured rows/series plus an
ASCII rendering; ``python -m repro.bench <experiment>`` prints it.  The
``benchmarks/`` directory wraps the same functions in pytest-benchmark
fixtures.

Experiments (see DESIGN.md for the mapping to the paper):

* ``table1`` — benchmark instance characteristics,
* ``table2`` — exact multi-objective DSE: proposed vs. solution-level
  vs. epsilon-constraint,
* ``fig1``   — example Pareto front, exact vs. NSGA-II,
* ``fig2``   — scaling with task count,
* ``fig3``   — ablation: partial-assignment dominance propagation,
* ``fig4``   — ablation: list vs. quad-tree archive.
"""

from repro.bench.experiments import (
    fig1_front,
    fig2_scaling,
    fig3_pruning_ablation,
    fig4_archive_ablation,
    table1_instances,
    table2_dse,
)
from repro.bench.render import render_series, render_table

__all__ = [
    "fig1_front",
    "fig2_scaling",
    "fig3_pruning_ablation",
    "fig4_archive_ablation",
    "render_series",
    "render_table",
    "table1_instances",
    "table2_dse",
]

"""The experiments behind every table and figure (see DESIGN.md).

Every function is pure computation over the seeded workloads: it returns
``(columns, rows)`` or series dictionaries that the CLI renders and the
pytest benchmarks time.  Budgets (``conflict_limit``) substitute for the
paper's wall-clock timeouts so results are hardware-independent.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baselines import (
    epsilon_constraint_front,
    exhaustive_front,
    nsga2_front,
    solution_level_front,
)
from repro.dse.explorer import ExactParetoExplorer
from repro.dse.pareto import ListArchive
from repro.dse.quadtree import QuadTreeArchive
from repro.synthesis.encoding import encode
from repro.workloads import WorkloadConfig, generate_specification, suite

__all__ = [
    "table1_instances",
    "table2_dse",
    "table3_curated",
    "fig1_front",
    "fig2_scaling",
    "fig3_pruning_ablation",
    "fig4_archive_ablation",
    "fig5_approximation",
    "fig6_heuristics",
    "fig7_routing",
    "fig8_solver_ablation",
    "fig9_contention",
    "fig10_parallel",
]

Rows = List[Dict[str, object]]

#: Default per-run conflict budget (stands in for the paper's timeout).
DEFAULT_BUDGET = 20_000


def table1_instances(suites: Sequence[str] = ("small", "medium")) -> Tuple[List[str], Rows]:
    """Table I: benchmark instance characteristics."""
    columns = [
        "instance",
        "tasks",
        "messages",
        "resources",
        "links",
        "mapping_options",
        "binding_space",
        "horizon",
    ]
    rows: Rows = []
    for name in suites:
        for instance in suite(name):
            summary = instance.specification.summary()
            summary["instance"] = instance.name
            summary["horizon"] = instance.specification.horizon()
            rows.append(summary)
    return columns, rows


def table2_dse(
    suites: Sequence[str] = ("small",),
    conflict_limit: Optional[int] = DEFAULT_BUDGET,
    objectives: Sequence[str] = ("latency", "energy", "cost"),
    methods: Sequence[str] = ("aspmt-dse", "solution-level", "epsilon"),
) -> Tuple[List[str], Rows]:
    """Table II: exact multi-objective DSE, proposed vs. baselines."""
    columns = [
        "instance",
        "method",
        "pareto",
        "models",
        "solves",
        "conflicts",
        "time_s",
        "exact",
    ]
    rows: Rows = []
    for suite_name in suites:
        for instance in suite(suite_name):
            spec = instance.specification
            encoded = encode(spec, objectives=objectives)
            if "aspmt-dse" in methods:
                explorer = ExactParetoExplorer(
                    encoded, conflict_limit=conflict_limit, validate_models=False
                )
                result = explorer.run()
                rows.append(
                    {
                        "instance": instance.name,
                        "method": "aspmt-dse",
                        "pareto": result.statistics.pareto_points,
                        "models": result.statistics.models_enumerated,
                        "solves": 1,
                        "conflicts": result.statistics.conflicts,
                        "time_s": result.statistics.wall_time,
                        "exact": not result.statistics.interrupted,
                    }
                )
            if "solution-level" in methods:
                baseline = solution_level_front(encoded, conflict_limit=conflict_limit)
                rows.append(_baseline_row(instance.name, baseline))
            if "epsilon" in methods:
                baseline = epsilon_constraint_front(
                    encoded, conflict_limit=conflict_limit
                )
                rows.append(_baseline_row(instance.name, baseline))
            if "exhaustive" in methods:
                baseline = exhaustive_front(encoded, conflict_limit=conflict_limit)
                rows.append(_baseline_row(instance.name, baseline))
    return columns, rows


def _baseline_row(instance_name: str, baseline) -> Dict[str, object]:
    return {
        "instance": instance_name,
        "method": baseline.method,
        "pareto": len(baseline.front),
        "models": baseline.models_enumerated,
        "solves": baseline.solver_calls,
        "conflicts": baseline.conflicts,
        "time_s": baseline.wall_time,
        "exact": baseline.exact,
    }


def table3_curated(
    conflict_limit: Optional[int] = DEFAULT_BUDGET,
) -> Tuple[List[str], Rows]:
    """Table III (extension): curated E3S-style domain instances.

    Exact fronts over the three realistic application domains, per
    objective pair — the 'does it work on something that looks like a
    product' table.
    """
    from repro.workloads.curated import curated_instances

    columns = [
        "instance",
        "objectives",
        "pareto",
        "models",
        "conflicts",
        "time_s",
        "exact",
    ]
    rows: Rows = []
    for instance in curated_instances():
        for objectives in (("latency", "cost"), ("latency", "energy", "cost")):
            encoded = encode(instance.specification, objectives=objectives)
            result = ExactParetoExplorer(
                encoded, conflict_limit=conflict_limit, validate_models=False
            ).run()
            stats = result.statistics
            rows.append(
                {
                    "instance": instance.name,
                    "objectives": "/".join(o[:3] for o in objectives),
                    "pareto": stats.pareto_points,
                    "models": stats.models_enumerated,
                    "conflicts": stats.conflicts,
                    "time_s": stats.wall_time,
                    "exact": not stats.interrupted,
                }
            )
    return columns, rows


def fig1_front(
    tasks: int = 8,
    seed: int = 1,
    objectives: Sequence[str] = ("latency", "energy"),
    conflict_limit: Optional[int] = DEFAULT_BUDGET,
) -> Dict[str, List[Tuple[int, ...]]]:
    """Fig. 1: exact front vs. the NSGA-II approximation (2-D projection)."""
    spec = generate_specification(
        WorkloadConfig(tasks=tasks, seed=seed, platform_size=(3, 2))
    )
    encoded = encode(spec, objectives=objectives)
    exact = ExactParetoExplorer(
        encoded, conflict_limit=conflict_limit, validate_models=False
    ).run()
    heuristic = nsga2_front(spec, objectives=objectives, generations=25, seed=seed)
    return {
        "exact": [tuple(v) for v in exact.vectors()],
        "nsga2": [tuple(v) for v in heuristic.vectors()],
    }


def fig2_scaling(
    task_counts: Sequence[int] = (4, 5, 6, 7, 8),
    seed: int = 0,
    conflict_limit: Optional[int] = DEFAULT_BUDGET,
) -> Dict[str, List[Tuple[int, float]]]:
    """Fig. 2: search effort vs. instance size, proposed vs. solution-level."""
    conflicts_dse: List[Tuple[int, float]] = []
    conflicts_solution: List[Tuple[int, float]] = []
    time_dse: List[Tuple[int, float]] = []
    time_solution: List[Tuple[int, float]] = []
    for tasks in task_counts:
        platform = (2, 2) if tasks <= 6 else (3, 2)
        spec = generate_specification(
            WorkloadConfig(tasks=tasks, seed=seed, platform_size=platform)
        )
        encoded = encode(spec)
        result = ExactParetoExplorer(
            encoded, conflict_limit=conflict_limit, validate_models=False
        ).run()
        conflicts_dse.append((tasks, float(result.statistics.conflicts)))
        time_dse.append((tasks, result.statistics.wall_time))
        baseline = solution_level_front(encoded, conflict_limit=conflict_limit)
        conflicts_solution.append((tasks, float(baseline.conflicts)))
        time_solution.append((tasks, baseline.wall_time))
    return {
        "aspmt-dse conflicts": conflicts_dse,
        "solution-level conflicts": conflicts_solution,
        "aspmt-dse time_s": time_dse,
        "solution-level time_s": time_solution,
    }


def fig3_pruning_ablation(
    suites: Sequence[str] = ("small",),
    conflict_limit: Optional[int] = DEFAULT_BUDGET,
) -> Tuple[List[str], Rows]:
    """Fig. 3: effect of partial-assignment dominance propagation."""
    columns = [
        "instance",
        "partial_pruning",
        "pareto",
        "models",
        "conflicts",
        "pruned_partial",
        "pruned_total",
        "time_s",
    ]
    rows: Rows = []
    for suite_name in suites:
        for instance in suite(suite_name):
            encoded = encode(instance.specification)
            for partial in (True, False):
                result = ExactParetoExplorer(
                    encoded,
                    partial_pruning=partial,
                    conflict_limit=conflict_limit,
                    validate_models=False,
                ).run()
                stats = result.statistics
                rows.append(
                    {
                        "instance": instance.name,
                        "partial_pruning": partial,
                        "pareto": stats.pareto_points,
                        "models": stats.models_enumerated,
                        "conflicts": stats.conflicts,
                        "pruned_partial": stats.pruned_partial,
                        "pruned_total": stats.pruned_total,
                        "time_s": stats.wall_time,
                    }
                )
    return columns, rows


def fig4_archive_ablation(
    sizes: Sequence[int] = (100, 400, 1600),
    dimensions: int = 3,
    seed: int = 7,
    dse_tasks: int = 6,
) -> Tuple[List[str], Rows]:
    """Fig. 4: dominance-check effort, list vs. quad-tree archive.

    Two parts: synthetic insertion workloads of growing size, plus one
    real DSE run per archive.
    """
    columns = ["workload", "archive", "points_kept", "comparisons", "time_s"]
    rows: Rows = []
    rng = random.Random(seed)
    for size in sizes:
        # Well-spread random vectors: many mutually non-dominated points.
        points = [
            tuple(rng.randint(0, 1000) for _ in range(dimensions))
            for _ in range(size)
        ]
        for name, archive in (("list", ListArchive()), ("quadtree", QuadTreeArchive())):
            started = time.perf_counter()
            for point in points:
                archive.add(point, None)
                archive.find_weak_dominator(point)
            rows.append(
                {
                    "workload": f"synthetic_n{size}",
                    "archive": name,
                    "points_kept": len(archive),
                    "comparisons": archive.comparisons,
                    "time_s": time.perf_counter() - started,
                }
            )
    spec = generate_specification(WorkloadConfig(tasks=dse_tasks, seed=seed))
    encoded = encode(spec)
    for name in ("list", "quadtree"):
        result = ExactParetoExplorer(
            encoded, archive=name, validate_models=False
        ).run()
        rows.append(
            {
                "workload": f"dse_t{dse_tasks}",
                "archive": name,
                "points_kept": result.statistics.pareto_points,
                "comparisons": result.statistics.archive_comparisons,
                "time_s": result.statistics.wall_time,
            }
        )
    return columns, rows


def fig5_approximation(
    epsilons: Sequence[int] = (0, 1, 2, 4, 8),
    tasks: int = 8,
    seed: int = 0,
    conflict_limit: Optional[int] = DEFAULT_BUDGET,
) -> Tuple[List[str], Rows]:
    """Fig. 5 (extension): epsilon-dominance approximation trade-off.

    The CODES+ISSS'18 follow-up idea: relaxing the dominance check by an
    additive epsilon shrinks the archive and the search effort while
    guaranteeing every exact point is epsilon-covered.  The quality
    column reports the measured additive-epsilon indicator against the
    exact front (never exceeding the configured epsilon).
    """
    from repro.dse.indicators import additive_epsilon, front_coverage

    spec = generate_specification(
        WorkloadConfig(tasks=tasks, seed=seed, platform_size=(3, 2))
    )
    encoded = encode(spec)
    columns = [
        "epsilon",
        "front",
        "models",
        "conflicts",
        "time_s",
        "measured_eps",
        "coverage",
    ]
    rows: Rows = []
    exact_vectors: List[Tuple[int, ...]] = []
    for epsilon in sorted(set(epsilons)):
        result = ExactParetoExplorer(
            encoded,
            epsilon=epsilon,
            conflict_limit=conflict_limit,
            validate_models=False,
        ).run()
        vectors = result.vectors()
        if epsilon == 0:
            exact_vectors = vectors
        stats = result.statistics
        rows.append(
            {
                "epsilon": epsilon,
                "front": len(vectors),
                "models": stats.models_enumerated,
                "conflicts": stats.conflicts,
                "time_s": stats.wall_time,
                "measured_eps": (
                    additive_epsilon(vectors, exact_vectors) if exact_vectors else 0
                ),
                "coverage": (
                    front_coverage(vectors, exact_vectors) if exact_vectors else 1.0
                ),
            }
        )
    return columns, rows


def fig7_routing(
    suites: Sequence[str] = ("small",),
    conflict_limit: Optional[int] = DEFAULT_BUDGET,
) -> Tuple[List[str], Rows]:
    """Fig. 7 (extension): routing freedom vs. fixed shortest-path routing.

    Fixing the routes (dimension-ordered-style deterministic routing)
    shrinks the design space dramatically, but the exact front over the
    restricted space can lose Pareto points that need detour routes; the
    `front_coverage` column quantifies the loss.
    """
    from repro.dse.indicators import front_coverage

    columns = [
        "instance",
        "routing",
        "pareto",
        "coverage",
        "models",
        "conflicts",
        "time_s",
    ]
    rows: Rows = []
    cases = [
        (instance.name, instance.specification)
        for suite_name in suites
        for instance in suite(suite_name)
    ]
    cases.append(("detour_links", _detour_instance()))
    for name, spec in cases:
        results = {}
        for routing in ("free", "fixed"):
            encoded = encode(spec, routing=routing)
            results[routing] = ExactParetoExplorer(
                encoded, conflict_limit=conflict_limit, validate_models=False
            ).run()
        free_front = results["free"].vectors()
        for routing in ("free", "fixed"):
            result = results[routing]
            stats = result.statistics
            rows.append(
                {
                    "instance": name,
                    "routing": routing,
                    "pareto": stats.pareto_points,
                    "coverage": front_coverage(result.vectors(), free_front),
                    "models": stats.models_enumerated,
                    "conflicts": stats.conflicts,
                    "time_s": stats.wall_time,
                }
            )
    return columns, rows


def _detour_instance():
    """A platform with a fast/hungry and a slow/frugal route: fixed
    (shortest-delay) routing cannot express the energy-optimal detour."""
    from repro.synthesis.model import (
        Application,
        Architecture,
        Link,
        MappingOption,
        Message,
        Resource,
        Specification,
        Task,
    )

    application = Application(
        tasks=(Task("a"), Task("b")),
        messages=(Message("m", "a", "b", size=2),),
    )
    resources = tuple(Resource(f"r{i}", cost=1) for i in range(4))
    links = (
        Link("u1", "r0", "r1", delay=1, energy=6),
        Link("u2", "r1", "r3", delay=1, energy=6),
        Link("d1", "r0", "r2", delay=3, energy=1),
        Link("d2", "r2", "r3", delay=3, energy=1),
    )
    mappings = (
        MappingOption("a", "r0", wcet=1, energy=2),
        MappingOption("b", "r3", wcet=1, energy=2),
    )
    return Specification(application, Architecture(resources, links), mappings)


def fig8_solver_ablation(
    suites: Sequence[str] = ("small",),
    conflict_limit: Optional[int] = DEFAULT_BUDGET,
) -> Tuple[List[str], Rows]:
    """Fig. 8 (extension): CDNL solver knobs on the DSE workload.

    The two remaining ablation targets of DESIGN.md: Luby restarts and
    phase saving in the solver, plus the specialized difference-logic
    propagator stacked onto the generic linear theory.
    """
    variants = (
        ("default", {}),
        ("no-restarts", {"restart_base": None}),
        ("no-phase-saving", {"phase_saving": False}),
        ("with-dl", {"use_difference_logic": True}),
    )
    columns = [
        "instance",
        "variant",
        "pareto",
        "models",
        "conflicts",
        "restarts",
        "time_s",
    ]
    rows: Rows = []
    for suite_name in suites:
        for instance in suite(suite_name):
            encoded = encode(instance.specification)
            for name, options in variants:
                explorer_options = {
                    "conflict_limit": conflict_limit,
                    "validate_models": False,
                }
                if "use_difference_logic" in options:
                    explorer_options["use_difference_logic"] = True
                explorer = ExactParetoExplorer(encoded, **explorer_options)
                explorer.ground()
                if "restart_base" in options:
                    explorer.control.solver.restart_base = options["restart_base"]
                if "phase_saving" in options:
                    explorer.control.solver.phase_saving = options["phase_saving"]
                result = explorer.run()
                stats = result.statistics
                rows.append(
                    {
                        "instance": instance.name,
                        "variant": name,
                        "pareto": stats.pareto_points,
                        "models": stats.models_enumerated,
                        "conflicts": stats.conflicts,
                        "restarts": explorer.control.solver.stats.restarts,
                        "time_s": stats.wall_time,
                    }
                )
    return columns, rows


def fig9_contention(
    suites: Sequence[str] = ("small",),
    conflict_limit: Optional[int] = DEFAULT_BUDGET,
) -> Tuple[List[str], Rows]:
    """Fig. 9 (extension): interconnect contention model refinement.

    Serializing transmissions that share a link can only delay
    deliveries: the latency-optimal point never improves, and the extra
    ordering decisions increase the search effort.
    """
    columns = [
        "instance",
        "contention",
        "pareto",
        "best_latency",
        "models",
        "conflicts",
        "time_s",
    ]
    rows: Rows = []
    for suite_name in suites:
        for instance in suite(suite_name):
            for contention in (False, True):
                encoded = encode(
                    instance.specification, link_contention=contention
                )
                result = ExactParetoExplorer(
                    encoded, conflict_limit=conflict_limit, validate_models=False
                ).run()
                stats = result.statistics
                vectors = result.vectors()
                rows.append(
                    {
                        "instance": instance.name,
                        "contention": contention,
                        "pareto": stats.pareto_points,
                        "best_latency": min((v[0] for v in vectors), default=-1),
                        "models": stats.models_enumerated,
                        "conflicts": stats.conflicts,
                        "time_s": stats.wall_time,
                    }
                )
    return columns, rows


def fig6_heuristics(
    suites: Sequence[str] = ("small",),
    conflict_limit: Optional[int] = DEFAULT_BUDGET,
) -> Tuple[List[str], Rows]:
    """Fig. 6 (extension): objective-aware decision phases.

    Domain-specific heuristics in the spirit of Andres et al. (LPNMR'15):
    biasing phase saving toward objective-friendly polarities seeds the
    archive with good points early, which strengthens dominance pruning.
    """
    columns = [
        "instance",
        "phases",
        "pareto",
        "models",
        "decisions",
        "conflicts",
        "time_s",
    ]
    rows: Rows = []
    for suite_name in suites:
        for instance in suite(suite_name):
            encoded = encode(instance.specification)
            for phases in (False, True):
                result = ExactParetoExplorer(
                    encoded,
                    objective_phases=phases,
                    conflict_limit=conflict_limit,
                    validate_models=False,
                ).run()
                stats = result.statistics
                rows.append(
                    {
                        "instance": instance.name,
                        "phases": phases,
                        "pareto": stats.pareto_points,
                        "models": stats.models_enumerated,
                        "decisions": stats.decisions,
                        "conflicts": stats.conflicts,
                        "time_s": stats.wall_time,
                    }
                )
    return columns, rows


def fig10_parallel(
    instances: Sequence[str] = ("consumer_jpeg", "network_firewall"),
    jobs_list: Sequence[int] = (1, 2, 4),
    conflict_limit: Optional[int] = DEFAULT_BUDGET,
    backend: str = "inline",
    schedules: Sequence[str] = ("static", "stealing"),
) -> Tuple[List[str], Rows]:
    """Fig. 10 (extension): parallel subspace workers + shared archive.

    Wall times for 1/2/4 workers, both cube schedulers (fixed round-robin
    shares vs. elastic work-stealing), with cross-worker archive sharing
    on and off.  The suite may run on a single core, so the honest
    headlines are the ablations at equal worker count: ``share_x``
    (archive sharing turns the workers' pruning archives into one
    cooperative bound, cutting models, conflicts, and wall time) and
    ``sched_x`` (the elastic scheduler vs. static shares at the same
    jobs/share point — stealing keeps workers off exhausted shares and
    hypervolume ordering front-loads the pruning).  The front is
    identical to the sequential explorer in every configuration (each row
    carries it for the benchmark's shape checks); ``conflict_limit`` is
    per worker.
    """
    from repro.dse.parallel import ParallelParetoExplorer
    from repro.workloads.curated import curated

    columns = [
        "instance",
        "jobs",
        "schedule",
        "share",
        "pareto",
        "models",
        "conflicts",
        "steals",
        "resplits",
        "time_s",
        "share_x",
        "sched_x",
        "exact",
    ]
    rows: Rows = []
    for name in instances:
        spec = curated(name)
        reference = ExactParetoExplorer(
            encode(spec), conflict_limit=conflict_limit, validate_models=False
        ).run()
        stats = reference.statistics
        rows.append(
            {
                "instance": name,
                "jobs": 1,
                "schedule": "-",
                "share": "-",
                "pareto": stats.pareto_points,
                "models": stats.models_enumerated,
                "conflicts": stats.conflicts,
                "steals": 0,
                "resplits": 0,
                "time_s": stats.wall_time,
                "share_x": "-",
                "sched_x": "-",
                "exact": not stats.interrupted,
                "front": reference.vectors(),
                "per_worker": [],
            }
        )
        for jobs in (j for j in jobs_list if j > 1):
            static_times: dict = {}
            for schedule in schedules:
                isolated_time = None
                for share in (False, True):
                    result = ParallelParetoExplorer(
                        encode(spec),
                        jobs=jobs,
                        backend=backend,
                        schedule=schedule,
                        share_archive=share,
                        conflict_limit=conflict_limit,
                        validate_models=False,
                    ).run()
                    pstats = result.statistics
                    if not share:
                        isolated_time = pstats.wall_time
                    if schedule == "static":
                        static_times[share] = pstats.wall_time
                    baseline = static_times.get(share)
                    rows.append(
                        {
                            "instance": name,
                            "jobs": jobs,
                            "schedule": schedule,
                            "share": "yes" if share else "no",
                            "pareto": pstats.pareto_points,
                            "models": pstats.models_enumerated,
                            "conflicts": pstats.conflicts,
                            "steals": pstats.steals,
                            "resplits": pstats.resplits,
                            "time_s": pstats.wall_time,
                            "share_x": (
                                round(isolated_time / pstats.wall_time, 2)
                                if share
                                else "-"
                            ),
                            "sched_x": (
                                round(baseline / pstats.wall_time, 2)
                                if schedule != "static" and baseline
                                else "-"
                            ),
                            "exact": not pstats.interrupted,
                            "front": result.vectors(),
                            "per_worker": pstats.per_worker,
                        }
                    )
    return columns, rows

"""Plain-text rendering of benchmark tables and series."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = ["render_table", "render_series", "render_scatter"]


def render_table(
    title: str, columns: Sequence[str], rows: Sequence[Mapping[str, object]]
) -> str:
    """Fixed-width ASCII table with a title rule."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    widths = {c: len(c) for c in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(fmt(row.get(column, ""))))
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    rule = "-+-".join("-" * widths[c] for c in columns)
    lines = [title, "=" * len(title), header, rule]
    for row in rows:
        lines.append(
            " | ".join(fmt(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def render_series(
    title: str, series: Mapping[str, Sequence[Tuple[object, object]]]
) -> str:
    """Numeric (x, y) series as aligned columns, one block per series."""
    lines = [title, "=" * len(title)]
    for name, points in series.items():
        lines.append(f"[{name}]")
        for x, y in points:
            y_text = f"{y:.2f}" if isinstance(y, float) else str(y)
            lines.append(f"  {x}\t{y_text}")
    return "\n".join(lines)


def render_scatter(
    title: str,
    series: Mapping[str, Sequence[Tuple[int, int]]],
    width: int = 60,
    height: int = 20,
) -> str:
    """A coarse ASCII scatter plot (used for the Fig. 1 fronts)."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(empty)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = max(x_hi - x_lo, 1)
    y_span = max(y_hi - y_lo, 1)
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#"
    # Draw in reverse order so the first series wins overlapping cells.
    for index, (name, pts) in reversed(list(enumerate(series.items()))):
        marker = markers[index % len(markers)]
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines = [title, "=" * len(title)]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_lo}..{x_hi}   y: {y_lo}..{y_hi}   {legend}")
    return "\n".join(lines)

"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench table1
    python -m repro.bench table2 --suites small
    python -m repro.bench fig1 fig2 fig3 fig4
    python -m repro.bench all --quick

``--quick`` shrinks workloads/budgets so everything completes in a couple
of minutes; the defaults match EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.bench.experiments import (
    fig1_front,
    fig2_scaling,
    fig3_pruning_ablation,
    fig4_archive_ablation,
    fig5_approximation,
    fig6_heuristics,
    fig7_routing,
    fig8_solver_ablation,
    fig9_contention,
    fig10_parallel,
    table1_instances,
    table2_dse,
    table3_curated,
)
from repro.bench.render import render_scatter, render_series, render_table

EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench", description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=EXPERIMENTS + ("all", "report"),
        help="which tables/figures to regenerate ('report' writes markdown)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="for 'report': write the markdown report to this file",
    )
    parser.add_argument(
        "--suites",
        nargs="+",
        default=None,
        help="workload suites (default depends on the experiment)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=20_000,
        help="conflict budget per solver run (paper-timeout substitute)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small workloads, small budgets"
    )
    args = parser.parse_args(argv)

    if "report" in args.experiments:
        from repro.bench.report import generate_report

        text = generate_report(quick=args.quick, budget=args.budget if not args.quick else None)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
            print(f"report written to {args.output}")
        else:
            print(text)
        return 0

    experiments = list(args.experiments)
    if "all" in experiments:
        experiments = list(EXPERIMENTS)
    budget = 2_000 if args.quick else args.budget
    table_suites = args.suites or (["tiny", "small"] if args.quick else ["small", "medium"])
    dse_suites = args.suites or (["tiny"] if args.quick else ["small"])

    for experiment in experiments:
        if experiment == "table1":
            columns, rows = table1_instances(table_suites)
            print(render_table("Table I: benchmark instances", columns, rows))
        elif experiment == "table2":
            columns, rows = table2_dse(dse_suites, conflict_limit=budget)
            print(
                render_table(
                    "Table II: exact multi-objective DSE (proposed vs. baselines)",
                    columns,
                    rows,
                )
            )
        elif experiment == "table3":
            columns, rows = table3_curated(conflict_limit=budget)
            print(
                render_table(
                    "Table III (ext.): curated domain instances", columns, rows
                )
            )
        elif experiment == "fig1":
            tasks = 5 if args.quick else 8
            fronts = fig1_front(tasks=tasks, conflict_limit=budget)
            print(
                render_scatter(
                    "Fig. 1: Pareto front, exact vs. NSGA-II (latency/energy)",
                    fronts,
                )
            )
            print(render_series("Fig. 1 data", fronts))
        elif experiment == "fig2":
            counts = (3, 4, 5) if args.quick else (4, 5, 6, 7, 8)
            series = fig2_scaling(task_counts=counts, conflict_limit=budget)
            print(render_series("Fig. 2: scaling with task count", series))
        elif experiment == "fig3":
            columns, rows = fig3_pruning_ablation(dse_suites, conflict_limit=budget)
            print(
                render_table(
                    "Fig. 3: partial-assignment dominance propagation ablation",
                    columns,
                    rows,
                )
            )
        elif experiment == "fig4":
            sizes = (50, 100) if args.quick else (100, 400, 1600)
            columns, rows = fig4_archive_ablation(sizes=sizes)
            print(
                render_table(
                    "Fig. 4: archive data structure ablation", columns, rows
                )
            )
        elif experiment == "fig5":
            tasks = 5 if args.quick else 8
            columns, rows = fig5_approximation(tasks=tasks, conflict_limit=budget)
            print(
                render_table(
                    "Fig. 5 (ext.): epsilon-dominance approximation",
                    columns,
                    rows,
                )
            )
        elif experiment == "fig6":
            columns, rows = fig6_heuristics(dse_suites, conflict_limit=budget)
            print(
                render_table(
                    "Fig. 6 (ext.): objective-aware decision phases",
                    columns,
                    rows,
                )
            )
        elif experiment == "fig8":
            columns, rows = fig8_solver_ablation(dse_suites, conflict_limit=budget)
            print(
                render_table(
                    "Fig. 8 (ext.): CDNL solver knob ablation", columns, rows
                )
            )
        elif experiment == "fig9":
            columns, rows = fig9_contention(dse_suites, conflict_limit=budget)
            print(
                render_table(
                    "Fig. 9 (ext.): link-contention model refinement",
                    columns,
                    rows,
                )
            )
        elif experiment == "fig7":
            columns, rows = fig7_routing(dse_suites, conflict_limit=budget)
            print(
                render_table(
                    "Fig. 7 (ext.): routing freedom vs. fixed routing",
                    columns,
                    rows,
                )
            )
        elif experiment == "fig10":
            instances = (
                ("consumer_jpeg",)
                if args.quick
                else ("consumer_jpeg", "network_firewall")
            )
            columns, rows = fig10_parallel(
                instances=instances, conflict_limit=budget
            )
            print(
                render_table(
                    "Fig. 10 (ext.): parallel workers + shared archive",
                    columns,
                    rows,
                )
            )
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CLI entry point: ``python -m repro.serve``.

Runs the DSE server until interrupted.  ``--selftest`` instead starts
an ephemeral server, drives a curated spec through a loopback client
(twice, to exercise the cache), checks the streamed front against a
direct in-process exploration, prints a summary and exits — the CI
smoke test for the whole serving stack.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.serve.server import DseServer, ServerConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve exact design space exploration over TCP "
        "(JSON-lines protocol + HTTP probes; see docs/SERVING.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8950)
    parser.add_argument(
        "--solve-workers",
        type=int,
        default=2,
        help="concurrent solves draining the priority queue",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="explorer parallelism per solve (1 = sequential exact path)",
    )
    parser.add_argument("--cache-size", type=int, default=128)
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default wall-clock ceiling per solve in seconds",
    )
    parser.add_argument(
        "--conflict-budget",
        type=int,
        default=None,
        help="total solver conflicts allowed per job",
    )
    parser.add_argument(
        "--chunk-conflicts",
        type=int,
        default=200,
        help="conflicts per solver chunk (cancellation latency; 0 disables)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run a loopback smoke test and exit",
    )
    return parser


def _config(args: argparse.Namespace) -> ServerConfig:
    return ServerConfig(
        host=args.host,
        port=args.port,
        solve_workers=args.solve_workers,
        solve_jobs=args.jobs,
        cache_size=args.cache_size,
        default_timeout=args.timeout,
        conflict_budget=args.conflict_budget,
        chunk_conflicts=args.chunk_conflicts or None,
    )


async def _serve(config: ServerConfig) -> None:
    server = DseServer(config)
    host, port = await server.start()
    print(f"repro.serve listening on {host}:{port}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.shutdown(drain=False)


async def _selftest(config: ServerConfig) -> int:
    from repro.dse.explorer import explore
    from repro.serve.client import ServeClient
    from repro.synthesis.io import specification_to_dict
    from repro.synthesis.model import (
        Application,
        Architecture,
        Link,
        MappingOption,
        Message,
        Resource,
        Specification,
        Task,
    )

    config.port = 0  # ephemeral; never collide with a real deployment
    config.chunk_conflicts = None  # maximally faithful sequential path
    server = DseServer(config)
    host, port = await server.start()
    spec = Specification(
        Application(
            tasks=(Task("a"), Task("b")),
            messages=(Message("m", "a", "b", size=2),),
        ),
        Architecture(
            resources=(Resource("fast", cost=8), Resource("slow", cost=2)),
            links=(Link("f2s", "fast", "slow"), Link("s2f", "slow", "fast")),
        ),
        (
            MappingOption("a", "fast", wcet=2, energy=4),
            MappingOption("a", "slow", wcet=5, energy=1),
            MappingOption("b", "fast", wcet=3, energy=6),
            MappingOption("b", "slow", wcet=7, energy=2),
        ),
    )
    payload = specification_to_dict(spec)
    direct = explore(spec).to_dict()

    client = await ServeClient.connect(host, port)
    try:
        first = await client.solve(payload)
        second = await client.solve(payload)
    finally:
        await client.close()
    await server.shutdown(drain=True)

    failures = []
    if first.result is None or first.result["front"] != direct["front"]:
        failures.append("streamed front differs from direct explore()")
    if not second.cached:
        failures.append("second identical request missed the cache")
    if second.result != first.result:
        failures.append("cached result differs from the solved one")
    summary = {
        "front_size": len(direct["front"]),
        "snapshots": len(first.snapshots),
        "counters": server.counters,
        "cache": server.cache.info(),
        "ok": not failures,
        "failures": failures,
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if not failures else 1


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    config = _config(args)
    if args.selftest:
        return asyncio.run(_selftest(config))
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())

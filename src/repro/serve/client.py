"""Asyncio client for the DSE server (JSON-lines transport).

One :class:`ServeClient` holds one connection and runs one request at a
time (concurrency = many clients, as in the load driver).  The solve
call collects every anytime snapshot and returns the terminal event::

    client = await ServeClient.connect(host, port)
    outcome = await client.solve(specification_to_dict(spec))
    outcome.result["front"], outcome.snapshots
    await client.close()

:func:`solve_once` wraps connect/solve/close for synchronous callers.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.protocol import (
    ProtocolError,
    decode_message,
    decode_snapshot,
    encode_message,
)

__all__ = ["SolveOutcome", "ServeClient", "solve_once"]


@dataclass
class SolveOutcome:
    """Everything one solve request produced."""

    accepted: Dict[str, object]
    snapshots: List[List[Tuple[int, ...]]] = field(default_factory=list)
    result: Optional[Dict[str, object]] = None
    cancelled: Optional[Dict[str, object]] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def cached(self) -> bool:
        return bool(self.accepted.get("cached"))

    @property
    def coalesced(self) -> bool:
        return bool(self.accepted.get("coalesced"))


class ServeClient:
    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _request(self, message: Dict[str, object]) -> int:
        self._next_id += 1
        message["id"] = self._next_id
        self._writer.write(encode_message(message))
        await self._writer.drain()
        return self._next_id

    async def _read_event(self) -> Dict[str, object]:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_message(line.strip())

    async def solve(
        self,
        spec: Dict[str, object],
        objectives: Optional[Sequence[str]] = None,
        options: Optional[Dict[str, object]] = None,
        subscribe: bool = True,
        timeout: Optional[float] = None,
    ) -> SolveOutcome:
        """Submit a spec; block until the terminal event.

        Raises :class:`ProtocolError` on rejection (admission errors) or
        malformed requests; returns a :class:`SolveOutcome` otherwise
        (``cancelled`` runs return with ``result=None``).
        """
        request: Dict[str, object] = {
            "action": "solve",
            "spec": spec,
            "subscribe": subscribe,
        }
        if objectives is not None:
            request["objectives"] = list(objectives)
        if options:
            request["options"] = dict(options)
        if timeout is not None:
            request["timeout"] = timeout
        request_id = await self._request(request)

        accepted: Optional[Dict[str, object]] = None
        outcome: Optional[SolveOutcome] = None
        while True:
            event = await self._read_event()
            if event.get("id") != request_id:
                continue  # stale frames from a previous, abandoned job
            kind = event.get("event")
            if kind == "accepted":
                accepted = event
                outcome = SolveOutcome(accepted=event)
            elif kind == "rejected":
                raise ProtocolError(
                    f"rejected by admission: {event.get('diagnostics')}"
                )
            elif kind == "error":
                if accepted is None:
                    raise ProtocolError(str(event.get("message")))
                outcome.error = str(event.get("message"))
                return outcome
            elif kind == "snapshot":
                if outcome is not None:
                    outcome.snapshots.append(
                        decode_snapshot(str(event["delta"]))
                    )
            elif kind == "result":
                if outcome is None:
                    outcome = SolveOutcome(accepted={})
                outcome.result = event["result"]
                return outcome
            elif kind == "cancelled":
                if outcome is None:
                    outcome = SolveOutcome(accepted={})
                outcome.cancelled = event
                return outcome

    async def stats(self) -> Dict[str, object]:
        request_id = await self._request({"action": "stats"})
        while True:
            event = await self._read_event()
            if event.get("id") == request_id and event.get("event") == "stats":
                return event["stats"]

    async def ping(self) -> Dict[str, object]:
        request_id = await self._request({"action": "ping"})
        while True:
            event = await self._read_event()
            if event.get("id") == request_id and event.get("event") == "pong":
                return event

    async def cancel(self, job: int) -> None:
        await self._request({"action": "cancel", "job": job})


def solve_once(
    host: str,
    port: int,
    spec: Dict[str, object],
    objectives: Optional[Sequence[str]] = None,
    options: Optional[Dict[str, object]] = None,
    timeout: Optional[float] = None,
) -> SolveOutcome:
    """Synchronous one-shot helper: connect, solve, close."""

    async def run() -> SolveOutcome:
        client = await ServeClient.connect(host, port)
        try:
            return await client.solve(
                spec, objectives=objectives, options=options, timeout=timeout
            )
        finally:
            await client.close()

    return asyncio.run(run())

"""The asyncio DSE server.

One :class:`DseServer` owns a TCP listener speaking the JSON-lines
protocol (with an HTTP facade for probes), a bounded LRU result cache
keyed by canonical spec digests, an admission gate, a priority solve
queue (shortest estimated work first) and a pool of solve workers that
run the exact explorers in a thread executor.  See ``docs/SERVING.md``
for the protocol walkthrough and the cache/exactness guarantees.

Life of a request::

    line -> decode -> spec -> lint triage -> canonicalize
         -> cache hit?      -> remap witnesses -> result
         -> in flight?      -> attach subscriber (coalesce)
         -> else            -> encode + estimate -> priority queue
    worker: dequeue -> solve (thread) -> snapshots stream back
         -> exact?  cache (canonical namespace) + result to subscribers
         -> else    cancelled/timeout event (never cached)

Every mutation of the job tables happens on the event loop (the solver
thread reaches back only via ``call_soon_threadsafe``), so the
check-then-register sequences below are race-free without locks.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from threading import Event as ThreadEvent
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.canonical import (
    CanonicalSpec,
    canonicalize_specification,
    invert_name_map,
    remap_front_entry,
)
from repro.serve.admission import admit, estimate_work
from repro.serve.cache import ResultCache, make_cache_key
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    encode_snapshot,
)
from repro.synthesis.io import specification_from_dict
from repro.synthesis.model import Specification, SpecificationError

__all__ = ["ServerConfig", "DseServer", "DEFAULT_OBJECTIVES"]

DEFAULT_OBJECTIVES: Tuple[str, ...] = ("latency", "energy", "cost")

#: Request options forwarded to :func:`repro.synthesis.encoding.encode`.
#: Anything else in the ``options`` object is rejected, so typos cannot
#: silently solve a different problem than the client asked for.
ENCODE_OPTIONS = (
    "serialize",
    "routing",
    "link_contention",
    "latency_bound",
    "symmetry",
    "domain_bounds",
)


@dataclass
class ServerConfig:
    """Deployment knobs (see ``python -m repro.serve --help``)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is in server.address
    #: Concurrent solves (threads draining the priority queue).
    solve_workers: int = 2
    #: Explorer parallelism per solve: 1 = sequential exact explorer
    #: (bit-identical fronts *and witnesses* vs. a direct ``explore()``),
    #: >1 = :class:`ParallelParetoExplorer` (identical vectors).
    solve_jobs: int = 1
    #: Backend for ``solve_jobs > 1``.
    parallel_backend: str = "process"
    cache_size: int = 128
    #: Wall-clock ceiling per solve (seconds); None = unlimited.  A
    #: request may *lower* it, never raise it.
    default_timeout: Optional[float] = None
    #: Total conflict budget per job; None = unlimited.
    conflict_budget: Optional[int] = None
    #: Conflicts per solver chunk — the cancellation/timeout latency
    #: knob.  None disables chunking (maximally faithful to a direct
    #: ``explore()`` run, but a job only notices cancellation between
    #: enumerated models).
    chunk_conflicts: Optional[int] = 200


@dataclass
class _Subscriber:
    writer: Optional[asyncio.StreamWriter]
    request_id: object
    subscribe: bool
    #: canonical -> this client's names (four maps).
    inverse_maps: Tuple[Dict[str, str], Dict[str, str], Dict[str, str], Dict[str, str]]
    #: Set for HTTP waiters instead of streaming events.
    future: Optional[asyncio.Future] = None


@dataclass
class _Job:
    job_id: int
    key: Tuple
    spec: Specification
    canonical: CanonicalSpec
    objectives: Tuple[str, ...]
    options: Dict[str, object]
    timeout: Optional[float]
    subscribers: List[_Subscriber] = field(default_factory=list)
    cancel_event: ThreadEvent = field(default_factory=ThreadEvent)
    finished: asyncio.Event = field(default_factory=asyncio.Event)
    instance: object = None
    estimate: float = 0.0
    timed_out: bool = False
    budget_exhausted: bool = False
    cancel_reason: str = "cancelled"


def _forward_maps(canonical: CanonicalSpec):
    return (
        canonical.task_map,
        canonical.resource_map,
        canonical.message_map,
        canonical.link_map,
    )


def _inverse_maps(canonical: CanonicalSpec):
    return (
        invert_name_map(canonical.task_map),
        invert_name_map(canonical.resource_map),
        invert_name_map(canonical.message_map),
        invert_name_map(canonical.link_map),
    )


def _remap_result(payload: Dict[str, object], maps) -> Dict[str, object]:
    """Rename every front witness of a serialized result through maps."""
    remapped = dict(payload)
    remapped["front"] = [
        remap_front_entry(entry, *maps) for entry in payload.get("front", [])
    ]
    return remapped


class DseServer:
    """Serve exact design space exploration over TCP."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self.cache = ResultCache(self.config.cache_size)
        self.counters: Dict[str, int] = {
            "requests": 0,
            "admitted": 0,
            "rejected": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "solves_started": 0,
            "solves_completed": 0,
            "solves_cancelled": 0,
            "solves_timeout": 0,
            "errors": 0,
            "protocol_errors": 0,
        }
        self._inflight: Dict[Tuple, _Job] = {}
        self._queue: "asyncio.PriorityQueue" = None  # created in start()
        self._workers: List[asyncio.Task] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor = None
        self._accepting = False
        self._sequence = 0
        self._next_job = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        sockets = self._server.sockets if self._server else ()
        if not sockets:
            raise RuntimeError("server is not listening")
        host, port = sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.PriorityQueue()
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, self.config.solve_workers + 1),
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self._accepting = True
        self._workers = [
            asyncio.ensure_future(self._worker_loop())
            for _ in range(max(1, self.config.solve_workers))
        ]
        return self.address

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, then drain (default) or cancel open jobs.

        ``drain=True`` lets every queued and running job finish and
        deliver its result before the server closes — the graceful
        path.  ``drain=False`` cancels everything cooperatively first.
        """
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        jobs = list(self._inflight.values())
        if not drain:
            for job in jobs:
                job.cancel_reason = "shutdown"
                job.cancel_event.set()
        for job in jobs:
            await job.finished.wait()
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        subscriptions: List[Tuple[_Job, _Subscriber]] = []
        try:
            first = await reader.readline()
            if not first:
                return
            if first.split(b" ", 1)[0] in (b"GET", b"POST", b"HEAD"):
                await self._handle_http(first, reader, writer)
                return
            line: Optional[bytes] = first
            while line:
                stripped = line.strip()
                if stripped:
                    await self._dispatch(stripped, writer, subscriptions)
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    self.counters["protocol_errors"] += 1
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._detach(subscriptions)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _detach(self, subscriptions: List[Tuple[_Job, _Subscriber]]) -> None:
        """Drop a closed connection's subscribers; cancel orphaned jobs."""
        for job, subscriber in subscriptions:
            if subscriber in job.subscribers:
                job.subscribers.remove(subscriber)
            if not job.subscribers and not job.finished.is_set():
                job.cancel_reason = "abandoned"
                job.cancel_event.set()
        subscriptions.clear()

    async def _dispatch(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        subscriptions: List[Tuple[_Job, _Subscriber]],
    ) -> None:
        try:
            message = decode_message(line)
        except ProtocolError as error:
            self.counters["protocol_errors"] += 1
            await self._send(writer, {"event": "error", "message": str(error)})
            return
        request_id = message.get("id")
        action = message.get("action")
        try:
            if action == "solve":
                await self._handle_solve(message, writer, subscriptions)
            elif action == "cancel":
                self._handle_cancel(message, subscriptions)
                await self._send(
                    writer, {"id": request_id, "event": "cancel-requested"}
                )
            elif action == "stats":
                await self._send(
                    writer,
                    {"id": request_id, "event": "stats", "stats": self.stats()},
                )
            elif action == "ping":
                await self._send(
                    writer,
                    {
                        "id": request_id,
                        "event": "pong",
                        "protocol": PROTOCOL_VERSION,
                    },
                )
            else:
                self.counters["protocol_errors"] += 1
                await self._send(
                    writer,
                    {
                        "id": request_id,
                        "event": "error",
                        "message": f"unknown action {action!r}",
                    },
                )
        except ConnectionError:
            raise
        except Exception as error:  # defensive: one bad request, one error
            self.counters["errors"] += 1
            await self._send(
                writer,
                {"id": request_id, "event": "error", "message": str(error)},
            )

    # -- the solve path ----------------------------------------------------

    async def _handle_solve(
        self,
        message: Dict[str, object],
        writer: Optional[asyncio.StreamWriter],
        subscriptions: List[Tuple[_Job, _Subscriber]],
        future: Optional[asyncio.Future] = None,
    ) -> None:
        self.counters["requests"] += 1
        request_id = message.get("id")

        async def reply(payload: Dict[str, object]) -> None:
            payload["id"] = request_id
            if writer is not None:
                await self._send(writer, payload)

        spec_data = message.get("spec")
        if not isinstance(spec_data, dict):
            self.counters["errors"] += 1
            await reply({"event": "error", "message": "missing spec object"})
            self._fail_future(future, "missing spec object")
            return
        objectives = tuple(message.get("objectives") or DEFAULT_OBJECTIVES)
        options = message.get("options") or {}
        unknown = sorted(set(options) - set(ENCODE_OPTIONS))
        if unknown:
            self.counters["errors"] += 1
            await reply(
                {"event": "error", "message": f"unknown options: {unknown}"}
            )
            self._fail_future(future, f"unknown options: {unknown}")
            return
        try:
            spec = specification_from_dict(spec_data)
        except (SpecificationError, KeyError, TypeError, ValueError) as error:
            self.counters["errors"] += 1
            await reply({"event": "error", "message": f"bad spec: {error}"})
            self._fail_future(future, f"bad spec: {error}")
            return

        # Admission: lint triage before anything touches the queue.
        decision = admit(spec, objectives)
        diagnostics = [d.to_dict() for d in decision.diagnostics]
        if not decision.admitted:
            self.counters["rejected"] += 1
            await reply({"event": "rejected", "diagnostics": diagnostics})
            self._fail_future(future, "rejected by admission")
            return
        self.counters["admitted"] += 1

        # Canonicalize off the loop (pure CPU), then check cache and
        # in-flight tables back on the loop — atomically, no awaits.
        canonical = await self._loop.run_in_executor(
            self._executor, canonicalize_specification, spec
        )
        key = make_cache_key(canonical.digest, objectives, options)
        subscribe = bool(message.get("subscribe", True))
        inverse = _inverse_maps(canonical)

        cached = self.cache.get(key)
        if cached is not None:
            self.counters["cache_hits"] += 1
            payload = _remap_result(cached, inverse)
            await reply(
                {
                    "event": "accepted",
                    "cached": True,
                    "coalesced": False,
                    "diagnostics": diagnostics,
                }
            )
            await reply({"event": "result", "cached": True, "result": payload})
            if future is not None and not future.done():
                future.set_result(payload)
            return

        subscriber = _Subscriber(
            writer=writer,
            request_id=request_id,
            subscribe=subscribe,
            inverse_maps=inverse,
            future=future,
        )
        existing = self._inflight.get(key)
        if existing is not None:
            self.counters["coalesced"] += 1
            existing.subscribers.append(subscriber)
            subscriptions.append((existing, subscriber))
            await reply(
                {
                    "event": "accepted",
                    "cached": False,
                    "coalesced": True,
                    "job": existing.job_id,
                    "diagnostics": diagnostics,
                }
            )
            return

        if not self._accepting:
            self.counters["errors"] += 1
            await reply({"event": "error", "message": "server is shutting down"})
            self._fail_future(future, "server is shutting down")
            return

        timeout = self.config.default_timeout
        requested = message.get("timeout")
        if requested is not None:
            requested = float(requested)
            timeout = (
                requested if timeout is None else min(timeout, requested)
            )
        self._next_job += 1
        job = _Job(
            job_id=self._next_job,
            key=key,
            spec=spec,
            canonical=canonical,
            objectives=objectives,
            options=dict(options),
            timeout=timeout,
        )
        job.subscribers.append(subscriber)
        subscriptions.append((job, subscriber))
        self._inflight[key] = job
        await reply(
            {
                "event": "accepted",
                "cached": False,
                "coalesced": False,
                "job": job.job_id,
                "diagnostics": diagnostics,
            }
        )
        try:
            job.instance, job.estimate = await self._loop.run_in_executor(
                self._executor, self._encode_blocking, job
            )
        except Exception as error:
            self.counters["errors"] += 1
            self._inflight.pop(key, None)
            job.finished.set()
            await self._notify(
                job, {"event": "error", "message": f"encode failed: {error}"}
            )
            return
        self._sequence += 1
        self._queue.put_nowait((job.estimate, self._sequence, job))

    def _encode_blocking(self, job: _Job):
        from repro.synthesis.encoding import encode

        instance = encode(job.spec, objectives=job.objectives, **job.options)
        return instance, estimate_work(job.spec, instance.program)

    def _handle_cancel(
        self,
        message: Dict[str, object],
        subscriptions: List[Tuple[_Job, _Subscriber]],
    ) -> None:
        """Cancel by job id — only jobs this connection subscribed to."""
        target = message.get("job")
        for job, _subscriber in subscriptions:
            if job.job_id == target and not job.finished.is_set():
                job.cancel_reason = "cancelled"
                job.cancel_event.set()

    # -- solve workers -----------------------------------------------------

    async def _worker_loop(self) -> None:
        while True:
            _estimate, _seq, job = await self._queue.get()
            if job.cancel_event.is_set():
                await self._finalize_cancelled(job, None)
                continue
            self.counters["solves_started"] += 1
            try:
                result = await self._loop.run_in_executor(
                    self._executor, self._solve_blocking, job
                )
            except Exception as error:
                self.counters["errors"] += 1
                self._inflight.pop(job.key, None)
                job.finished.set()
                await self._notify(
                    job, {"event": "error", "message": f"solve failed: {error}"}
                )
                continue
            payload = result.to_dict()
            if payload["statistics"]["interrupted"]:
                await self._finalize_cancelled(job, payload)
            else:
                await self._finalize_exact(job, payload)

    def _solve_blocking(self, job: _Job):
        """Run one exact exploration (executor thread).

        ``should_stop`` is polled once per solver chunk (and per model),
        so cancellation, timeouts and the conflict budget all take
        effect within ``chunk_conflicts`` conflicts.
        """
        deadline = (
            None if job.timeout is None else time.monotonic() + job.timeout
        )
        chunk = self.config.chunk_conflicts
        budget = self.config.conflict_budget
        budget_chunks = (
            None
            if budget is None or not chunk
            else max(1, -(-budget // chunk))
        )
        state = {"chunks": 0}

        def should_stop() -> bool:
            state["chunks"] += 1
            if job.cancel_event.is_set():
                return True
            if deadline is not None and time.monotonic() > deadline:
                job.timed_out = True
                return True
            if budget_chunks is not None and state["chunks"] > budget_chunks:
                job.budget_exhausted = True
                return True
            return False

        def publish(vectors: Sequence[Tuple[int, ...]]) -> None:
            self._loop.call_soon_threadsafe(
                self._broadcast_snapshot, job, list(vectors)
            )

        if self.config.solve_jobs > 1:
            from repro.dse.parallel import ParallelParetoExplorer

            explorer = ParallelParetoExplorer(
                job.instance,
                jobs=self.config.solve_jobs,
                backend=self.config.parallel_backend,
                chunk_conflicts=chunk,
                conflict_limit=budget,
            )
            return explorer.run(on_points=publish, should_stop=should_stop)
        from repro.dse.explorer import ExactParetoExplorer

        explorer = ExactParetoExplorer(job.instance, conflict_limit=chunk)
        return explorer.run(
            on_point=lambda point: publish([point.vector]),
            should_stop=should_stop,
            resume_on_interrupt=True,
        )

    # -- delivery ----------------------------------------------------------

    def _broadcast_snapshot(
        self, job: _Job, vectors: List[Tuple[int, ...]]
    ) -> None:
        """Stream an anytime archive delta (loop thread, sync)."""
        if not vectors or job.finished.is_set():
            return
        blob = encode_snapshot(vectors)
        frame = {"event": "snapshot", "job": job.job_id, "delta": blob}
        for subscriber in list(job.subscribers):
            if not subscriber.subscribe or subscriber.writer is None:
                continue
            if subscriber.writer.is_closing():
                continue
            frame["id"] = subscriber.request_id
            subscriber.writer.write(encode_message(frame))

    async def _finalize_exact(self, job: _Job, payload: Dict) -> None:
        self.counters["solves_completed"] += 1
        canonical_payload = _remap_result(payload, _forward_maps(job.canonical))
        self.cache.put(job.key, canonical_payload)
        self._inflight.pop(job.key, None)
        job.finished.set()
        for subscriber in list(job.subscribers):
            client_payload = _remap_result(
                canonical_payload, subscriber.inverse_maps
            )
            if subscriber.future is not None and not subscriber.future.done():
                subscriber.future.set_result(client_payload)
            if subscriber.writer is not None:
                await self._send(
                    subscriber.writer,
                    {
                        "id": subscriber.request_id,
                        "event": "result",
                        "job": job.job_id,
                        "cached": False,
                        "result": client_payload,
                    },
                )

    async def _finalize_cancelled(
        self, job: _Job, payload: Optional[Dict]
    ) -> None:
        """Terminal path for cancelled / timed-out / over-budget jobs.

        The partial front still ships to subscribers (it is a valid
        lower archive) but is **never cached**.
        """
        if job.timed_out:
            reason = "timeout"
            self.counters["solves_timeout"] += 1
        elif job.budget_exhausted:
            reason = "conflict-budget"
            self.counters["solves_cancelled"] += 1
        else:
            reason = job.cancel_reason
            self.counters["solves_cancelled"] += 1
        canonical_payload = (
            None
            if payload is None
            else _remap_result(payload, _forward_maps(job.canonical))
        )
        self._inflight.pop(job.key, None)
        job.finished.set()
        for subscriber in list(job.subscribers):
            partial = (
                None
                if canonical_payload is None
                else _remap_result(canonical_payload, subscriber.inverse_maps)
            )
            self._fail_future(subscriber.future, f"job {reason}")
            if subscriber.writer is not None:
                await self._send(
                    subscriber.writer,
                    {
                        "id": subscriber.request_id,
                        "event": "cancelled",
                        "job": job.job_id,
                        "reason": reason,
                        "partial": partial,
                    },
                )

    async def _notify(self, job: _Job, frame: Dict[str, object]) -> None:
        for subscriber in list(job.subscribers):
            self._fail_future(
                subscriber.future, str(frame.get("message", "failed"))
            )
            if subscriber.writer is not None:
                frame["id"] = subscriber.request_id
                await self._send(subscriber.writer, dict(frame))

    @staticmethod
    def _fail_future(future: Optional[asyncio.Future], message: str) -> None:
        if future is not None and not future.done():
            future.set_exception(RuntimeError(message))

    async def _send(
        self, writer: asyncio.StreamWriter, message: Dict[str, object]
    ) -> None:
        if writer.is_closing():
            return
        writer.write(encode_message(message))
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    # -- observability -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "protocol": PROTOCOL_VERSION,
            "counters": dict(self.counters),
            "cache": self.cache.info(),
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "inflight": len(self._inflight),
            "config": {
                "solve_workers": self.config.solve_workers,
                "solve_jobs": self.config.solve_jobs,
                "cache_size": self.config.cache_size,
                "default_timeout": self.config.default_timeout,
                "conflict_budget": self.config.conflict_budget,
                "chunk_conflicts": self.config.chunk_conflicts,
            },
        }

    # -- HTTP facade -------------------------------------------------------

    async def _handle_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            method, path, _version = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            await self._http_response(writer, 400, {"error": "bad request"})
            return
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if method == "GET" and path in ("/healthz", "/health"):
            await self._http_response(writer, 200, {"status": "ok"})
        elif method == "GET" and path == "/stats":
            await self._http_response(writer, 200, self.stats())
        elif method == "POST" and path == "/solve":
            length = int(headers.get("content-length", "0"))
            if length <= 0 or length > MAX_LINE_BYTES:
                await self._http_response(
                    writer, 400, {"error": "missing or oversized body"}
                )
                return
            body = await reader.readexactly(length)
            try:
                request = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                self.counters["protocol_errors"] += 1
                await self._http_response(
                    writer, 400, {"error": f"bad JSON body: {error}"}
                )
                return
            if not isinstance(request, dict):
                request = {}
            request.setdefault("action", "solve")
            request.setdefault("subscribe", False)
            future = self._loop.create_future()
            subscriptions: List[Tuple[_Job, _Subscriber]] = []
            await self._handle_solve(request, None, subscriptions, future)
            try:
                result = await future
                await self._http_response(writer, 200, {"result": result})
            except RuntimeError as error:
                await self._http_response(writer, 422, {"error": str(error)})
            finally:
                self._detach(subscriptions)
        else:
            await self._http_response(
                writer, 404, {"error": f"no route {method} {path}"}
            )

    async def _http_response(
        self, writer: asyncio.StreamWriter, status: int, payload: Dict
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 422: "Unprocessable Entity"}.get(
            status, "Error"
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        if not writer.is_closing():
            writer.write(head + body)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass

"""Admission control: lint triage and work estimation.

Every request runs through the spec validator
(:func:`repro.analysis.spec.validate_specification`) *before* it can
touch the solve queue — a spec with an unmappable task or an
unsatisfiable deadline would only ever produce an empty or misleading
front after burning a worker slot, so error-severity findings are
rejected up front with their diagnostics attached.

Admitted jobs are ordered **shortest-estimated-work-first**: the
estimate combines the binding-space size (the paper's Table I column)
with the abstract domain analysis' relation-size bounds
(:meth:`repro.analysis.domains.DomainAnalysis.signature_estimate`) over
the actual encoding, so a large platform with tightly constrained
domains can still jump the queue ahead of a small but unconstrained
one.  The estimate orders the queue; it carries no exactness weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.spec import validate_specification
from repro.synthesis.model import Specification

__all__ = ["AdmissionDecision", "admit", "estimate_work"]


@dataclass
class AdmissionDecision:
    """Outcome of lint triage for one request."""

    admitted: bool
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def to_dict(self) -> Dict[str, object]:
        return {
            "admitted": self.admitted,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def admit(
    spec: Specification, objectives: Optional[Sequence[str]] = None
) -> AdmissionDecision:
    """Validate ``spec``; reject on any error-severity finding.

    Warnings and infos ride along in the decision (clients see them in
    the ``accepted`` response) but do not block admission.
    """
    diagnostics = validate_specification(spec, objectives)
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    return AdmissionDecision(admitted=not errors, diagnostics=diagnostics)


def estimate_work(
    spec: Specification, program: Optional[str] = None
) -> float:
    """Heuristic solve-effort estimate used as the queue priority.

    The base is the binding-space size scaled by the communication load
    (messages route through the platform, so each adds search depth).
    When the encoded ``program`` text is available, the abstract domain
    analysis refines it with the summed relation-size bounds of the
    encoding's derived predicates — a measure of how much grounding and
    propagation the instance actually generates.  Unbounded signatures
    fall back to the base term so the estimate is always finite.
    """
    base = float(spec.binding_space_size())
    base *= 1.0 + len(spec.application.messages)
    if program is None:
        return base
    try:
        from repro.analysis.domains import analyze_program
        from repro.asp.parser import parse_program

        analysis = analyze_program(parse_program(program))
        refined = 0.0
        for signature in analysis.domains:
            estimate = analysis.signature_estimate(signature)
            if estimate is None:
                return base
            refined += estimate
        if refined > 0.0:
            return base + refined
    except Exception:
        # The estimate is advisory; an analysis hiccup must never turn
        # into a rejected or mis-ordered request beyond FIFO fallback.
        pass
    return base

"""Bounded LRU cache of finished DSE results.

This lifts the ground-program LRU of :mod:`repro.asp.control` (PR 2) to
whole solve results.  Keys are *semantic*: the renaming-invariant
canonical digest of the specification (:mod:`repro.analysis.canonical`)
plus everything that changes the Pareto front — the ordered objective
tuple and the encoding semantics (``serialize`` / ``routing`` /
``link_contention`` / ``latency_bound``).  Execution knobs (worker
count, conflict budgets, timeouts) are deliberately *excluded*: they
never change the exact front, only the effort and the witness
implementations, so runs that differ only in them share one entry.

Entries store the serialized result **in the canonical namespace**
(entity names remapped through the spec's canonical maps), so two
clients submitting isomorphic specs under different names hit the same
slot; the server translates witnesses back into each client's own names
on the way out.  Only *exact* results are admitted — interrupted,
timed-out or cancelled runs must never populate the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from threading import Lock
from typing import Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["DEFAULT_CACHE_SIZE", "CacheStats", "ResultCache", "make_cache_key"]

DEFAULT_CACHE_SIZE = 128

#: Encoding options that are part of the cache key because they change
#: the design space (and with it the front).  Everything else is an
#: execution knob and must stay out of the key.
SEMANTIC_OPTIONS = ("serialize", "routing", "link_contention", "latency_bound")

_OPTION_DEFAULTS = {
    "serialize": False,
    "routing": "free",
    "link_contention": False,
    "latency_bound": None,
}


def make_cache_key(
    digest: str,
    objectives: Sequence[str],
    options: Optional[Mapping[str, object]] = None,
) -> Tuple:
    """Semantic identity of a solve request.

    ``digest`` is the canonical spec digest; ``objectives`` keep their
    order (the front's vector layout depends on it); ``options`` may
    carry any mix of knobs — only the semantic ones participate.
    """
    options = options or {}
    semantics = tuple(
        (name, options.get(name, _OPTION_DEFAULTS[name]))
        for name in SEMANTIC_OPTIONS
    )
    return (digest, tuple(objectives), semantics)


@dataclass
class CacheStats:
    """Observable counters (exposed by the server's ``stats`` action)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected_inexact: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejected_inexact": self.rejected_inexact,
        }


class ResultCache:
    """A bounded, thread-safe LRU mapping cache keys to result dicts.

    The stored value is opaque to the cache (the server keeps
    ``DseResult.to_dict()`` payloads in canonical namespace).  ``put``
    refuses results flagged as interrupted — a timed-out or cancelled
    run has an *incomplete* front and caching it would poison every
    future hit.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, Dict[str, object]]" = OrderedDict()
        self._lock = Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Tuple) -> Optional[Dict[str, object]]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: Tuple, result: Dict[str, object]) -> bool:
        """Insert an exact result; returns False (and skips) otherwise."""
        statistics = result.get("statistics") or {}
        if statistics.get("interrupted"):
            with self._lock:
                self.stats.rejected_inexact += 1
            return False
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            self.stats.insertions += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def info(self) -> Dict[str, object]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                **self.stats.to_dict(),
            }

"""Wire protocol of the serving layer.

Native transport: **newline-delimited JSON** (one UTF-8 JSON object per
line) over a plain TCP stream.  Requests carry a client-chosen ``id``
echoed on every response so one connection can multiplex jobs.

Requests::

    {"id": 1, "action": "solve", "spec": {...}, "objectives": [...],
     "options": {...}, "subscribe": true, "timeout": 30.0}
    {"id": 1, "action": "cancel", "job": 1}
    {"id": 2, "action": "stats"}
    {"id": 3, "action": "ping"}

Response events (all carry the request ``id``):

``accepted``
    The job passed admission; ``job`` is the server-side job id,
    ``cached`` tells whether the answer came straight from the result
    cache, ``coalesced`` whether the request piggybacks on an in-flight
    identical solve.
``rejected``
    Admission failed; ``diagnostics`` holds the validator findings.
``snapshot``
    Anytime archive update for subscribed jobs: ``delta`` is a base64
    :class:`repro.dse.scheduler.ArchiveDelta` blob of newly published
    objective vectors (decode with :func:`decode_snapshot`).
``result``
    Terminal success; ``result`` is the full
    :meth:`repro.dse.explorer.DseResult.to_dict` payload.
``cancelled``
    Terminal: the job was cancelled (client request, disconnect) or
    timed out (``reason`` distinguishes the two).
``error``
    Terminal: malformed request or internal failure; ``message``
    explains.

The HTTP facade (sniffed on the first request bytes) supports
``POST /solve`` (JSON spec body, blocks until the final result),
``GET /stats`` and ``GET /healthz`` — enough for curl and load
balancer probes; streaming clients use the JSON-lines transport.
"""

from __future__ import annotations

import base64
import json
from typing import Dict, List, Sequence, Tuple

from repro.dse.scheduler import ArchiveDelta

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "encode_message",
    "decode_message",
    "encode_snapshot",
    "decode_snapshot",
    "ProtocolError",
]

PROTOCOL_VERSION = 1

#: Upper bound on one protocol line; longer lines are a protocol error
#: (guards the server against unbounded buffering on hostile input).
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """Raised for malformed frames."""


def encode_message(message: Dict[str, object]) -> bytes:
    """Serialize one protocol message to a JSON line (bytes)."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, object]:
    """Parse one JSON line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed JSON line: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    return message


def encode_snapshot(vectors: Sequence[Sequence[int]]) -> str:
    """Pack objective vectors into a base64 ``ArchiveDelta`` blob."""
    delta = ArchiveDelta(tuple(tuple(vector) for vector in vectors))
    return base64.b64encode(delta.to_bytes()).decode("ascii")


def decode_snapshot(blob: str) -> List[Tuple[int, ...]]:
    """Unpack a base64 ``ArchiveDelta`` blob into objective vectors."""
    try:
        raw = base64.b64decode(blob.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as error:
        raise ProtocolError(f"malformed snapshot blob: {error}") from error
    return [tuple(vector) for vector in ArchiveDelta.from_bytes(raw).vectors]

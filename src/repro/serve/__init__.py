"""DSE-as-a-service: asyncio serving layer for the exact explorer.

``repro.serve`` turns the library into a long-running service (see
``docs/SERVING.md``):

* **Protocol** — newline-delimited JSON over TCP, plus a minimal HTTP
  facade for curl-style probes (:mod:`repro.serve.protocol`).
* **Admission** — the spec validator triages every request before it
  can reach the solve queue; error-severity findings are rejected with
  their diagnostics (:mod:`repro.serve.admission`).
* **Dedup** — requests are canonicalized
  (:mod:`repro.analysis.canonical`) so renamed/reordered twins share
  one bounded-LRU cache slot, and in-flight coalescing makes N
  identical concurrent solves cost one (:mod:`repro.serve.cache`).
* **Anytime streaming** — subscribed clients receive archive snapshots
  (:class:`repro.dse.scheduler.ArchiveDelta` blobs) while workers
  refine the front; the final message carries the exact front and full
  statistics (:mod:`repro.serve.server`).

Run it with ``python -m repro.serve``; talk to it with
:class:`repro.serve.client.ServeClient`.
"""

from repro.serve.admission import AdmissionDecision, admit, estimate_work
from repro.serve.cache import CacheStats, ResultCache, make_cache_key
from repro.serve.client import ServeClient, solve_once
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    decode_message,
    decode_snapshot,
    encode_message,
    encode_snapshot,
)
from repro.serve.server import DseServer, ServerConfig

__all__ = [
    "PROTOCOL_VERSION",
    "AdmissionDecision",
    "CacheStats",
    "DseServer",
    "ResultCache",
    "ServeClient",
    "ServerConfig",
    "admit",
    "decode_message",
    "decode_snapshot",
    "encode_message",
    "encode_snapshot",
    "estimate_work",
    "make_cache_key",
    "solve_once",
]

"""Static analysis for ASP programs and synthesis specifications.

The package provides a rule-based linter that runs over the parsed AST
*before* grounding (``repro.analysis.linter``), an abstract domain
analyzer inferring per-argument constant sets/intervals/shapes that
also prunes the grounder and seeds theory bounds
(``repro.analysis.domains``, see ``docs/DOMAINS.md``), a
grounder-equivalent variable-safety analysis
(``repro.analysis.safety``), a
specification/objective validator for the synthesis layer
(``repro.analysis.spec``), and a platform symmetry analyzer — a
colored-graph automorphism engine (``repro.analysis.graph``) plus
lex-leader constraint synthesis over ``bind/2`` atoms
(``repro.analysis.symmetry``, see ``docs/SYMMETRY.md``), and a
renaming-invariant specification canonicalizer powering the serving
layer's result cache (``repro.analysis.canonical``, see
``docs/SERVING.md``).  Findings are
structured
:class:`~repro.analysis.diagnostics.Diagnostic` values suitable for
text or JSON output and CI gating; see ``docs/LINT.md`` for the rule
catalogue and suppression syntax.

Entry points::

    python -m repro.asp lint file.lp --format=json
    python -m repro.dse --lint

    from repro.analysis import lint_text
    report = lint_text(open("encoding.lp").read())
    assert report.errors == 0
"""

from repro.analysis.canonical import (
    CanonicalSpec,
    canonical_digest,
    canonicalize_specification,
    invert_name_map,
    remap_front_entry,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
    SourceSpan,
)
from repro.analysis.domains import (
    Dom,
    DomainAnalysis,
    DomainInfo,
    analyze_program,
    analyze_rules,
    canonical_rule,
)
from repro.analysis.graph import AutomorphismGroup, ColoredGraph, automorphism_group
from repro.analysis.linter import RULES, LintConfig, Linter, lint_files, lint_text
from repro.analysis.safety import SafetyViolation, rule_safety_violations
from repro.analysis.spec import SPEC_RULES, lint_instance, validate_specification
from repro.analysis.symmetry import (
    PlatformSymmetry,
    SymmetryInfo,
    analyze_specification,
    lex_leader_program,
)

__all__ = [
    "Diagnostic",
    "LintError",
    "LintReport",
    "Severity",
    "SourceSpan",
    "RULES",
    "SPEC_RULES",
    "LintConfig",
    "Linter",
    "lint_files",
    "lint_text",
    "SafetyViolation",
    "rule_safety_violations",
    "lint_instance",
    "validate_specification",
    "AutomorphismGroup",
    "ColoredGraph",
    "automorphism_group",
    "PlatformSymmetry",
    "SymmetryInfo",
    "analyze_specification",
    "lex_leader_program",
    "Dom",
    "DomainAnalysis",
    "DomainInfo",
    "analyze_program",
    "analyze_rules",
    "canonical_rule",
    "CanonicalSpec",
    "canonical_digest",
    "canonicalize_specification",
    "invert_name_map",
    "remap_front_entry",
]

"""``python -m repro.asp lint`` — the linter's command-line front-end.

Exit codes are CI-friendly: 0 when no error-severity diagnostic was
found, 1 otherwise (warnings and infos never fail the run; gate on the
JSON output if you want stricter policies).

Examples::

    python -m repro.asp lint encoding.lp tests/corpus --format=json
    python -m repro.asp lint --curated --encoding
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
from typing import List, Optional

from repro.analysis.diagnostics import LintReport
from repro.analysis.linter import LintConfig, Linter
from repro.analysis.spec import lint_instance

__all__ = ["lint_main"]


def _expand(paths: List[str]) -> List[str]:
    """Files stay files; directories expand to every ``*.lp`` below them."""
    expanded: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            expanded.extend(
                sorted(glob.glob(os.path.join(path, "**", "*.lp"), recursive=True))
            )
        else:
            expanded.append(path)
    return expanded


def lint_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.asp lint", description=__doc__
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="program files or directories (directories lint every *.lp)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="diagnostic output format",
    )
    parser.add_argument(
        "--curated",
        action="store_true",
        help="also lint every curated workload's spec and encoding",
    )
    parser.add_argument(
        "--encoding",
        action="store_true",
        help="also lint a generated default synthesis encoding",
    )
    parser.add_argument(
        "--blowup-threshold",
        type=float,
        default=LintConfig.blowup_threshold,
        help="grounding-blowup warning threshold (estimated instances)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE-ID",
        help="disable a rule id (repeatable)",
    )
    args = parser.parse_args(argv)
    if not args.paths and not args.curated and not args.encoding:
        parser.error("nothing to lint: give paths, --curated, or --encoding")

    config = LintConfig(
        blowup_threshold=args.blowup_threshold,
        disable=frozenset(args.disable),
    )
    linter = Linter(config)
    report = LintReport()

    for path in _expand(args.paths):
        text = sys.stdin.read() if path == "-" else open(path).read()
        part = linter.lint_text(text, filename=path)
        report.diagnostics.extend(part.diagnostics)
        report.files.append(path)
        report.seconds += part.seconds
        report.suppressed += part.suppressed

    if args.curated:
        from repro.synthesis.encoding import encode
        from repro.workloads.curated import CURATED_NAMES, curated

        for name in CURATED_NAMES:
            spec = curated(name)
            instance = encode(spec)
            part = lint_instance(instance, config)
            for diagnostic in part.diagnostics:
                report.diagnostics.append(diagnostic)
            report.files.append(f"<curated:{name}>")
            report.seconds += part.seconds
            report.suppressed += part.suppressed

    if args.encoding:
        from repro.synthesis.encoding import encode
        from repro.workloads import WorkloadConfig, generate_specification

        spec = generate_specification(WorkloadConfig())
        part = lint_instance(encode(spec), config)
        report.diagnostics.extend(part.diagnostics)
        report.files.append("<generated-encoding>")
        report.seconds += part.seconds
        report.suppressed += part.suppressed

    report.sort()
    print(report.render(args.format))
    return 1 if report.errors else 0

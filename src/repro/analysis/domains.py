"""Abstract interpretation of predicate argument domains.

The analyzer runs *before* grounding and infers, for every predicate
argument position, a sound over-approximation of the ground symbols
that can ever occupy it.  The abstract value (:class:`Dom`) tracks
three layers of precision:

* a **finite constant set** — exact, up to :data:`FINITE_CAP` symbols;
* once widened, an **integer interval** covering all numeric members
  (with saturation to ±infinity under widening);
* plus a **constructor-shape set** covering all non-numeric members by
  their top-level ``(name, arity)`` key (strings use a reserved key;
  ``None`` means "any non-number").

Inference is a bottom-up fixpoint over the predicate dependency
condensation (the same SCC decomposition the grounder's batch
scheduler uses): non-recursive components converge in one pass,
recursive components iterate with widening after
:data:`WIDEN_AFTER` rounds, followed by a verified narrowing step that
recovers precision lost to widening whenever the narrowed state is
still a post-fixpoint.

The soundness contract — every atom the grounder can derive lies in
the inferred domains — is what makes the three consumers safe:

* the **linter** turns empty meets into ``type-conflict`` /
  ``empty-domain`` / ``comparison-out-of-range`` /
  ``constraint-vacuous`` diagnostics and sharpens the
  ``grounding-blowup`` estimate (see ``docs/DOMAINS.md``);
* the **grounder** (``Grounder(domain_prune=True)``) skips rules whose
  body provably never matches and uses per-rule variable domains plus
  eagerly evaluated comparison guards as join pre-filters;
* the **theory layer** seeds objective variables with the inferred
  ``&dom`` guard intervals (``encode(spec, domain_bounds="on")``).

The contract is enforced by ``tests/test_domains.py`` and the
``domain-soundness`` fuzz oracle (``repro.fuzz.oracles``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.asp import ast
from repro.asp.grounder import _int_div, _int_mod, evaluate_comparison
from repro.asp.syntax import Function, Number, String, Symbol

__all__ = [
    "Dom",
    "DomainAnalysis",
    "DomainInfo",
    "DeadRule",
    "TOP",
    "EMPTY",
    "FINITE_CAP",
    "WIDEN_AFTER",
    "analyze_program",
    "analyze_rules",
    "canonical_rule",
]

Signature = Tuple[str, int]

#: Finite constant sets are kept exact up to this many symbols; beyond
#: the cap the value is summarized into interval + shapes.
FINITE_CAP = 64

#: Cartesian products (function-term argument combos, pairwise
#: comparison evaluation) are enumerated exactly up to this size.
PRODUCT_CAP = 256

#: Number of fixpoint rounds on a recursive SCC before the widening
#: operator replaces the plain join.
WIDEN_AFTER = 3

#: Saturating infinities for interval arithmetic.  Any computed bound
#: beyond ±SAT is clamped; the sentinels themselves are absorbing.
NINF = -(1 << 63)
PINF = 1 << 63
_SAT = 1 << 62

#: Shape key reserved for string symbols (no valid predicate has
#: arity -1, so it can never collide with a function key).
STRING_SHAPE: Signature = ("<string>", -1)


def _clamp(value: int) -> int:
    if value >= _SAT:
        return PINF
    if value <= -_SAT:
        return NINF
    return value


def _shape_key(symbol: Symbol) -> Signature:
    if isinstance(symbol, String):
        return STRING_SHAPE
    return symbol.signature  # Function


class Dom:
    """One abstract value: a set of ground symbols.

    ``values`` is a frozenset in finite mode and ``None`` once widened.
    In widened mode the numeric members are covered by ``[lo, hi]``
    (``lo > hi`` means "no numbers") and the non-numeric members by
    ``shapes`` — a frozenset of constructor keys, or ``None`` for "any
    non-number symbol".
    """

    __slots__ = ("values", "lo", "hi", "shapes")

    def __init__(
        self,
        values: Optional[FrozenSet[Symbol]] = None,
        lo: int = 1,
        hi: int = 0,
        shapes: Optional[FrozenSet[Signature]] = frozenset(),
    ):
        self.values = values
        self.lo = lo
        self.hi = hi
        self.shapes = shapes

    # -- constructors -------------------------------------------------------

    @staticmethod
    def finite(symbols) -> "Dom":
        values = frozenset(symbols)
        if len(values) > FINITE_CAP:
            return Dom._summarize(values)
        return Dom(values=values)

    @staticmethod
    def interval(lo: int, hi: int) -> "Dom":
        if lo > hi:
            return EMPTY
        if lo > NINF and hi < PINF and hi - lo + 1 <= FINITE_CAP:
            return Dom(values=frozenset(Number(v) for v in range(lo, hi + 1)))
        return Dom(values=None, lo=lo, hi=hi, shapes=frozenset())

    @staticmethod
    def _summarize(values: FrozenSet[Symbol]) -> "Dom":
        numbers = [s.value for s in values if isinstance(s, Number)]
        shapes = frozenset(_shape_key(s) for s in values if not isinstance(s, Number))
        if numbers:
            return Dom(values=None, lo=min(numbers), hi=max(numbers), shapes=shapes)
        return Dom(values=None, lo=1, hi=0, shapes=shapes)

    def widened(self) -> "Dom":
        """This value with the finite layer summarized away."""
        if self.values is None:
            return self
        return Dom._summarize(self.values)

    # -- predicates ---------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        if self.values is not None:
            return not self.values
        return self.lo > self.hi and self.shapes is not None and not self.shapes

    @property
    def is_top(self) -> bool:
        return (
            self.values is None
            and self.lo <= NINF
            and self.hi >= PINF
            and self.shapes is None
        )

    def numbers_only(self) -> bool:
        """True when every member is a :class:`Number` (empty counts)."""
        if self.values is not None:
            return all(isinstance(s, Number) for s in self.values)
        return self.shapes is not None and not self.shapes

    def nonnumbers_only(self) -> bool:
        if self.values is not None:
            return not any(isinstance(s, Number) for s in self.values)
        return self.lo > self.hi

    def numeric_range(self) -> Tuple[int, int]:
        """``(lo, hi)`` covering the numeric members; ``lo > hi`` if none."""
        if self.values is None:
            return (self.lo, self.hi)
        numbers = [s.value for s in self.values if isinstance(s, Number)]
        if not numbers:
            return (1, 0)
        return (min(numbers), max(numbers))

    def contains(self, symbol: Symbol) -> bool:
        if self.values is not None:
            return symbol in self.values
        if isinstance(symbol, Number):
            return self.lo <= symbol.value <= self.hi
        return self.shapes is None or _shape_key(symbol) in self.shapes

    def size(self) -> Optional[int]:
        """Exact or counted cardinality; ``None`` when unbounded/unknown."""
        if self.values is not None:
            return len(self.values)
        total = 0
        if self.lo <= self.hi:
            if self.lo <= NINF or self.hi >= PINF:
                return None
            total += self.hi - self.lo + 1
        if self.shapes is None:
            return None
        if self.shapes:
            return None  # shape members are not counted
        return total

    # -- lattice operations -------------------------------------------------

    def join(self, other: "Dom") -> "Dom":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        if self.values is not None and other.values is not None:
            return Dom.finite(self.values | other.values)
        a, b = self.widened(), other.widened()
        if a.lo > a.hi:
            lo, hi = b.lo, b.hi
        elif b.lo > b.hi:
            lo, hi = a.lo, a.hi
        else:
            lo, hi = min(a.lo, b.lo), max(a.hi, b.hi)
        if a.shapes is None or b.shapes is None:
            shapes: Optional[FrozenSet[Signature]] = None
        else:
            shapes = a.shapes | b.shapes
        return Dom(values=None, lo=lo, hi=hi, shapes=shapes)

    def meet(self, other: "Dom") -> "Dom":
        if self.values is not None:
            return Dom.finite(v for v in self.values if other.contains(v))
        if other.values is not None:
            return Dom.finite(v for v in other.values if self.contains(v))
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if self.shapes is None:
            shapes = other.shapes
        elif other.shapes is None:
            shapes = self.shapes
        else:
            shapes = self.shapes & other.shapes
        return Dom(values=None, lo=lo, hi=hi, shapes=shapes)

    def subsumes(self, other: "Dom") -> bool:
        """True when ``other`` ⊆ ``self`` (sound, may say False spuriously
        only for widened-vs-widened shape tops, where it is exact too)."""
        if other.is_empty:
            return True
        if other.values is not None:
            return all(self.contains(v) for v in other.values)
        if self.values is not None:
            return False  # widened other cannot fit a finite self
        if other.lo <= other.hi and not (self.lo <= other.lo and other.hi <= self.hi):
            return False
        if self.shapes is None:
            return True
        if other.shapes is None:
            return False
        return other.shapes <= self.shapes

    def widen(self, new: "Dom") -> "Dom":
        """Widening: accelerate ``self -> join(self, new)`` so that any
        strictly increasing chain stabilizes in a bounded number of
        steps (finite layer collapses; unstable bounds jump to ±inf)."""
        joined = self.join(new)
        if joined == self:
            return self
        if self.is_empty:
            return joined
        old, now = self.widened(), joined.widened()
        lo, hi = now.lo, now.hi
        if old.lo <= old.hi and now.lo <= now.hi:
            if now.lo < old.lo:
                lo = NINF
            if now.hi > old.hi:
                hi = PINF
        return Dom(values=None, lo=lo, hi=hi, shapes=now.shapes)

    # -- plumbing -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Dom)
            and self.values == other.values
            and (
                self.values is not None
                or (
                    self.lo == other.lo
                    and self.hi == other.hi
                    and self.shapes == other.shapes
                )
            )
        )

    def __hash__(self) -> int:
        if self.values is not None:
            return hash(("Dom", self.values))
        return hash(("Dom", self.lo, self.hi, self.shapes))

    def __repr__(self) -> str:
        if self.values is not None:
            inner = ",".join(sorted(str(v) for v in self.values))
            return f"Dom{{{inner}}}"
        parts = []
        if self.lo <= self.hi:
            lo = "-inf" if self.lo <= NINF else str(self.lo)
            hi = "+inf" if self.hi >= PINF else str(self.hi)
            parts.append(f"[{lo},{hi}]")
        if self.shapes is None:
            parts.append("any-shape")
        elif self.shapes:
            parts.append("|".join(f"{n}/{a}" for n, a in sorted(self.shapes)))
        return "Dom<" + (" ".join(parts) or "empty") + ">"


#: The full abstract universe (any symbol) and the empty set.
TOP = Dom(values=None, lo=NINF, hi=PINF, shapes=None)
EMPTY = Dom(values=frozenset())


# ---------------------------------------------------------------------------
# Abstract term evaluation
# ---------------------------------------------------------------------------


def _eval_binary(op: str, a: Dom, b: Dom) -> Dom:
    """Abstract arithmetic.  Non-numeric operand members are projected
    away: the concrete grounder yields no value for them, so the
    result only ever contains numbers."""
    if a.values is not None and b.values is not None:
        if len(a.values) * len(b.values) <= PRODUCT_CAP:
            out: Set[Symbol] = set()
            for x, y in itertools.product(a.values, b.values):
                if not isinstance(x, Number) or not isinstance(y, Number):
                    continue
                try:
                    if op == "+":
                        out.add(Number(x.value + y.value))
                    elif op == "-":
                        out.add(Number(x.value - y.value))
                    elif op == "*":
                        out.add(Number(x.value * y.value))
                    elif op == "/":
                        out.add(Number(_int_div(x.value, y.value)))
                    elif op == "\\":
                        out.add(Number(_int_mod(x.value, y.value)))
                    elif op == "**":
                        out.add(Number(x.value**y.value))
                    else:
                        return Dom.interval(NINF, PINF)
                except (ZeroDivisionError, ValueError, OverflowError):
                    continue
            return Dom.finite(out)
    alo, ahi = a.numeric_range()
    blo, bhi = b.numeric_range()
    if alo > ahi or blo > bhi:
        return EMPTY
    if op == "+":
        return Dom.interval(_clamp(alo + blo), _clamp(ahi + bhi))
    if op == "-":
        return Dom.interval(_clamp(alo - bhi), _clamp(ahi - blo))
    if op == "*":
        if NINF in (alo, blo) or PINF in (ahi, bhi):
            return Dom.interval(NINF, PINF)
        corners = [alo * blo, alo * bhi, ahi * blo, ahi * bhi]
        return Dom.interval(_clamp(min(corners)), _clamp(max(corners)))
    if op == "/":
        if NINF in (alo, blo) or PINF in (ahi, bhi) or blo <= 0 <= bhi:
            return Dom.interval(NINF, PINF)
        corners = [_int_div(x, y) for x in (alo, ahi) for y in (blo, bhi)]
        return Dom.interval(_clamp(min(corners)), _clamp(max(corners)))
    if op == "\\":
        if blo > bhi or NINF in (blo,) or PINF in (bhi,) or blo <= 0 <= bhi:
            return Dom.interval(NINF, PINF)
        bound = max(abs(blo), abs(bhi)) - 1
        return Dom.interval(_clamp(-bound), _clamp(bound))
    # "**" and anything exotic: any integer.
    return Dom.interval(NINF, PINF)


def eval_term(term: ast.Term, env: Dict[str, Dom]) -> Dom:
    """Abstract evaluation of ``term`` under variable environment ``env``.

    Sound w.r.t. both :func:`~repro.asp.grounder.evaluate_term` and
    :func:`~repro.asp.grounder.evaluate_term_all`: every ground symbol
    either can produce, for any substitution drawn from ``env``, is a
    member of the returned :class:`Dom`.
    """
    if isinstance(term, ast.SymbolTerm):
        return Dom.finite((term.symbol,))
    if isinstance(term, ast.Variable):
        if term.name == "_":
            return TOP
        return env.get(term.name, TOP)
    if isinstance(term, ast.FunctionTerm):
        if not term.arguments:
            return Dom.finite((Function(term.name),))
        args = [eval_term(a, env) for a in term.arguments]
        if any(a.is_empty for a in args):
            return EMPTY
        if all(a.values is not None for a in args):
            product = 1
            for a in args:
                product *= len(a.values)  # type: ignore[arg-type]
            if product <= PRODUCT_CAP:
                return Dom.finite(
                    Function(term.name, combo)
                    for combo in itertools.product(*(a.values for a in args))
                )
        return Dom(
            values=None,
            lo=1,
            hi=0,
            shapes=frozenset({(term.name, len(term.arguments))}),
        )
    if isinstance(term, ast.BinaryTerm):
        return _eval_binary(term.op, eval_term(term.lhs, env), eval_term(term.rhs, env))
    if isinstance(term, ast.UnaryTerm):
        inner = eval_term(term.argument, env)
        if inner.values is not None:
            out: Set[Symbol] = set()
            for x in inner.values:
                if not isinstance(x, Number):
                    continue
                out.add(Number(-x.value if term.op == "-" else abs(x.value)))
            return Dom.finite(out)
        lo, hi = inner.numeric_range()
        if lo > hi:
            return EMPTY
        if term.op == "-":
            return Dom.interval(_clamp(-hi), _clamp(-lo))
        if lo >= 0:
            return Dom.interval(lo, hi)
        if hi <= 0:
            return Dom.interval(_clamp(-hi), _clamp(-lo))
        return Dom.interval(0, _clamp(max(-lo, hi)))
    if isinstance(term, ast.IntervalTerm):
        llo, lhi = eval_term(term.lower, env).numeric_range()
        ulo, uhi = eval_term(term.upper, env).numeric_range()
        if llo > lhi or ulo > uhi:
            return EMPTY
        return Dom.interval(llo, uhi)
    if isinstance(term, ast.PoolTerm):
        out_dom = EMPTY
        for option in term.options:
            out_dom = out_dom.join(eval_term(option, env))
        return out_dom
    return TOP


def _term_is_ground(term: ast.Term) -> bool:
    if isinstance(term, ast.Variable):
        return False
    if isinstance(term, ast.SymbolTerm):
        return True
    if isinstance(term, ast.FunctionTerm):
        return all(_term_is_ground(a) for a in term.arguments)
    if isinstance(term, ast.BinaryTerm):
        return _term_is_ground(term.lhs) and _term_is_ground(term.rhs)
    if isinstance(term, ast.UnaryTerm):
        return _term_is_ground(term.argument)
    if isinstance(term, ast.IntervalTerm):
        return _term_is_ground(term.lower) and _term_is_ground(term.upper)
    if isinstance(term, ast.PoolTerm):
        return all(_term_is_ground(o) for o in term.options)
    return True


_NEGATED_OP = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_MIRROR_OP = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def cmp_status(op: str, a: Dom, b: Dom) -> Optional[bool]:
    """Decide a comparison over abstract operands.

    ``True``/``False`` mean the comparison holds/fails for *every* pair
    of concrete members; ``None`` means it depends on the instance.
    """
    if a.is_empty or b.is_empty:
        return None
    if (
        a.values is not None
        and b.values is not None
        and len(a.values) * len(b.values) <= PRODUCT_CAP
    ):
        results = {
            evaluate_comparison(op, x, y)
            for x, y in itertools.product(a.values, b.values)
        }
        if len(results) == 1:
            return results.pop()
        return None
    if not (a.numbers_only() and b.numbers_only()):
        return None
    alo, ahi = a.numeric_range()
    blo, bhi = b.numeric_range()
    if op == "<":
        if ahi < blo:
            return True
        if alo >= bhi:
            return False
    elif op == "<=":
        if ahi <= blo:
            return True
        if alo > bhi:
            return False
    elif op == ">":
        if alo > bhi:
            return True
        if ahi <= blo:
            return False
    elif op == ">=":
        if alo >= bhi:
            return True
        if ahi < blo:
            return False
    elif op == "=":
        if alo == ahi == blo == bhi:
            return True
        if ahi < blo or alo > bhi:
            return False
    elif op == "!=":
        if ahi < blo or alo > bhi:
            return True
        if alo == ahi == blo == bhi:
            return False
    return None


def _refine_comparison(op: str, variable: str, other: Dom, env: Dict[str, Dom]) -> bool:
    """Shrink ``env[variable]`` using ``variable op other``.  Returns
    True when the environment changed.  Numeric refinements are only
    applied when both sides are numbers-only (the cross-type symbol
    order would make interval reasoning unsound otherwise)."""
    current = env.get(variable, TOP)
    if op == "=":
        refined = current.meet(other)
    elif op == "!=":
        if other.values is not None and len(other.values) == 1 and current.values is not None:
            refined = Dom.finite(current.values - other.values)
        else:
            return False
    else:
        if not (current.numbers_only() and other.numbers_only()):
            return False
        olo, ohi = other.numeric_range()
        if olo > ohi:
            return False
        if op == "<":
            refined = current.meet(Dom.interval(NINF, _clamp(ohi - 1)))
        elif op == "<=":
            refined = current.meet(Dom.interval(NINF, ohi))
        elif op == ">":
            refined = current.meet(Dom.interval(_clamp(olo + 1), PINF))
        elif op == ">=":
            refined = current.meet(Dom.interval(olo, PINF))
        else:
            return False
    if refined != current:
        env[variable] = refined
        return True
    return False


# ---------------------------------------------------------------------------
# Rule views
# ---------------------------------------------------------------------------


@dataclass
class DeadRule:
    """Why a rule can never fire.

    ``cause`` is one of ``"comparison"`` (a builtin is statically
    false), ``"type"`` (a shared variable's positions are type
    disjoint), or ``"empty"`` (a body literal's argument domain is
    empty / a constant argument is outside its position's domain).
    """

    cause: str
    detail: str
    location: Optional[ast.Location] = None


class _RuleView:
    """Pre-split rule: positive function literals, comparisons, heads."""

    __slots__ = ("rule", "index", "positives", "comparisons", "heads", "body_sigs")

    def __init__(self, rule: ast.Rule, index: int):
        self.rule = rule
        self.index = index
        self.positives: List[ast.Literal] = []
        #: ``(effective_op, lhs, rhs, body_index, location)`` — the op
        #: already accounts for default negation.
        self.comparisons: List[Tuple[str, ast.Term, ast.Term, int, object]] = []
        self.body_sigs: Set[Signature] = set()
        for position, item in enumerate(rule.body):
            if isinstance(item, ast.Literal):
                if isinstance(item.atom, ast.FunctionTerm):
                    self.body_sigs.add((item.atom.name, len(item.atom.arguments)))
                    if item.sign == 0:
                        self.positives.append(item)
                elif isinstance(item.atom, ast.Comparison):
                    op = item.atom.op
                    if item.sign == 1:
                        op = _NEGATED_OP[op]
                    self.comparisons.append(
                        (op, item.atom.lhs, item.atom.rhs, position, item.location)
                    )
            elif isinstance(item, ast.Aggregate):
                for element in item.elements:
                    for lit in element.condition:
                        if isinstance(lit.atom, ast.FunctionTerm):
                            self.body_sigs.add(
                                (lit.atom.name, len(lit.atom.arguments))
                            )
        #: ``(atom, condition)`` pairs the rule can derive.
        self.heads: List[Tuple[ast.FunctionTerm, Tuple[ast.Literal, ...]]] = []
        head = rule.head
        if isinstance(head, ast.FunctionTerm):
            self.heads.append((head, ()))
        elif isinstance(head, ast.ChoiceHead):
            for element in head.elements:
                self.heads.append((element.atom, element.condition))
                for lit in element.condition:
                    if isinstance(lit.atom, ast.FunctionTerm):
                        self.body_sigs.add((lit.atom.name, len(lit.atom.arguments)))

    @property
    def head_sigs(self) -> Set[Signature]:
        return {(atom.name, len(atom.arguments)) for atom, _ in self.heads}


# ---------------------------------------------------------------------------
# The analysis
# ---------------------------------------------------------------------------


@dataclass
class DomainInfo:
    """Summary of one domain-analysis run (mirrors ``SymmetryInfo``)."""

    mode: str = "off"
    applied: bool = False
    predicates: int = 0
    positions: int = 0
    widenings: int = 0
    dead_rules: int = 0
    seconds: float = 0.0
    #: Inferred sound bounds per theory/objective variable name.
    bounds: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    declined: Optional[str] = None


class DomainAnalysis:
    """Result of :func:`analyze_rules`.

    ``domains`` maps each derivable predicate signature to one
    :class:`Dom` per argument position.  ``dead`` maps rule indices
    (into the analyzed rule list) to :class:`DeadRule` verdicts;
    ``envs`` holds the final per-rule variable environments;
    ``true_comparisons`` the body indices of builtins that are
    statically true; ``dom_intervals`` the joined ``&dom`` guard
    interval per guard-variable signature.
    """

    def __init__(self, rules: Sequence[ast.Rule], externals=()):  # noqa: C901
        started = perf_counter()
        self.rules: List[ast.Rule] = list(rules)
        self.widenings = 0
        self.narrowings = 0
        self.domains: Dict[Signature, Tuple[Dom, ...]] = {}
        self.dead: Dict[int, DeadRule] = {}
        self.envs: Dict[int, Dict[str, Dom]] = {}
        self.true_comparisons: Dict[int, Set[int]] = {}
        self.dom_intervals: Dict[Signature, Tuple[int, int]] = {}
        self._externals = frozenset(externals)
        for name, arity in self._externals:
            self.domains[(name, arity)] = tuple(TOP for _ in range(arity))
        views = [_RuleView(rule, index) for index, rule in enumerate(self.rules)]
        self._run_fixpoint(views)
        self._final_pass(views)
        self.seconds = perf_counter() - started

    # -- fixpoint -----------------------------------------------------------

    def _run_fixpoint(self, views: List[_RuleView]) -> None:
        graph = nx.DiGraph()
        for view in views:
            for head_sig in view.head_sigs:
                graph.add_node(head_sig)
                for body_sig in view.body_sigs:
                    graph.add_edge(body_sig, head_sig)
        for sig in self._externals:
            graph.add_node(sig)
        condensation = nx.condensation(graph)
        for component_id in nx.topological_sort(condensation):
            members: Set[Signature] = set(
                condensation.nodes[component_id]["members"]
            )
            component_views = [v for v in views if v.head_sigs & members]
            if not component_views:
                continue
            recursive = len(members) > 1 or any(
                v.body_sigs & members for v in component_views
            )
            self._solve_component(component_views, members, recursive)

    def _solve_component(
        self,
        views: List[_RuleView],
        members: Set[Signature],
        recursive: bool,
    ) -> None:
        iteration = 0
        while True:
            changed = False
            for view in views:
                for sig, position, contribution in self._contributions(view, members):
                    current = self._position(sig, position)
                    if recursive and iteration >= WIDEN_AFTER:
                        updated = current.widen(contribution)
                        if updated != current.join(contribution):
                            self.widenings += 1
                    else:
                        updated = current.join(contribution)
                    if updated != current:
                        self._set_position(sig, position, updated)
                        changed = True
            iteration += 1
            if not changed:
                break
            if iteration > 4 * FINITE_CAP:  # widening makes this unreachable
                for sig in members:
                    if sig in self.domains:
                        self.domains[sig] = tuple(TOP for _ in self.domains[sig])
                break
        if recursive and iteration > WIDEN_AFTER:
            self._narrow_component(views, members)

    def _narrow_component(self, views: List[_RuleView], members: Set[Signature]) -> None:
        """Verified narrowing: recompute the component's domains from its
        rules alone, and adopt a candidate only after re-checking that it
        is still a post-fixpoint (every contribution subsumed).  Recovers
        precision lost to widening without ever weakening soundness."""
        covered = [sig for sig in members if sig in self.domains]

        def recompute() -> Dict[Signature, Tuple[Dom, ...]]:
            fresh: Dict[Signature, List[Dom]] = {}
            for sig in covered:
                arity = len(self.domains[sig])
                if sig in self._externals:
                    fresh[sig] = [TOP] * arity
                else:
                    fresh[sig] = [EMPTY] * arity
            for view in views:
                for sig, position, contribution in self._contributions(view, members):
                    fresh[sig][position] = fresh[sig][position].join(contribution)
            return {sig: tuple(doms) for sig, doms in fresh.items()}

        def subsumed(
            big: Dict[Signature, Tuple[Dom, ...]],
            small: Dict[Signature, Tuple[Dom, ...]],
        ) -> bool:
            return all(
                old.subsumes(new)
                for sig in covered
                for old, new in zip(big[sig], small[sig])
            )

        for _ in range(2):
            before = {sig: self.domains[sig] for sig in covered}
            candidate = recompute()
            self.domains.update(candidate)
            if not subsumed(candidate, recompute()):
                # Not a post-fixpoint: revert to the verified state.
                self.domains.update(before)
                return
            if candidate == before:
                return
            self.narrowings += 1

    def _position(self, sig: Signature, position: int) -> Dom:
        doms = self.domains.get(sig)
        if doms is None:
            return EMPTY
        return doms[position]

    def _set_position(self, sig: Signature, position: int, dom: Dom) -> None:
        doms = self.domains.get(sig)
        if doms is None:
            doms = tuple(EMPTY for _ in range(sig[1]))
        updated = list(doms)
        updated[position] = dom
        self.domains[sig] = tuple(updated)

    def _contributions(self, view: _RuleView, members: Set[Signature]):
        """Yield ``(sig, position, Dom)`` head contributions restricted to
        ``members`` (other head signatures are handled by their own
        component, later in topological order)."""
        env = self._rule_env(view)
        if env is None:
            return
        for atom, condition in view.heads:
            sig = (atom.name, len(atom.arguments))
            if sig not in members:
                continue
            if sig not in self.domains:
                self.domains[sig] = tuple(EMPTY for _ in range(sig[1]))
            local = env
            if condition:
                local = dict(env)
                if self._refine_condition(local, condition) is not None:
                    continue  # the element's guard can never hold
            for position, argument in enumerate(atom.arguments):
                yield sig, position, eval_term(argument, local)

    # -- rule environments --------------------------------------------------

    def _rule_env(
        self,
        view: _RuleView,
        record: bool = False,
    ) -> Optional[Dict[str, Dom]]:
        """Compute the per-rule variable environment, or ``None`` when the
        rule is dead under the current domains.  With ``record=True``
        the dead verdict and statically-true comparisons are stored."""
        env: Dict[str, Dom] = {}
        true_comparisons: Set[int] = set()
        for _ in range(3):
            changed = False
            for literal in view.positives:
                atom = literal.atom
                sig = (atom.name, len(atom.arguments))
                for position, argument in enumerate(atom.arguments):
                    dom = self._position(sig, position)
                    if isinstance(argument, ast.Variable):
                        if argument.name == "_":
                            if dom.is_empty:
                                if record:
                                    self.dead[view.index] = DeadRule(
                                        "empty",
                                        f"{atom.name}/{len(atom.arguments)} "
                                        f"argument {position + 1} has an empty domain",
                                        literal.location,
                                    )
                                return None
                            continue
                        current = env.get(argument.name, TOP)
                        refined = current.meet(dom)
                        if refined.is_empty:
                            if record:
                                if (
                                    current.numbers_only()
                                    and dom.nonnumbers_only()
                                    and not dom.is_empty
                                    and not current.is_empty
                                ) or (
                                    current.nonnumbers_only()
                                    and dom.numbers_only()
                                    and not dom.is_empty
                                    and not current.is_empty
                                ):
                                    cause, what = "type", (
                                        f"variable {argument.name} mixes "
                                        f"incompatible types at "
                                        f"{atom.name}/{len(atom.arguments)} "
                                        f"argument {position + 1}"
                                    )
                                else:
                                    cause, what = "empty", (
                                        f"variable {argument.name} has no possible "
                                        f"value at {atom.name}/{len(atom.arguments)} "
                                        f"argument {position + 1}"
                                    )
                                self.dead[view.index] = DeadRule(
                                    cause, what, literal.location
                                )
                            return None
                        if refined != current:
                            env[argument.name] = refined
                            changed = True
                    elif _term_is_ground(argument):
                        value = eval_term(argument, {})
                        if value.meet(dom).is_empty:
                            if record:
                                if (
                                    value.numbers_only() != dom.numbers_only()
                                    and not dom.is_empty
                                ):
                                    cause = "type"
                                    what = (
                                        f"constant argument {argument} can never "
                                        f"match {atom.name}/{len(atom.arguments)} "
                                        f"argument {position + 1} (incompatible type)"
                                    )
                                else:
                                    cause = "empty"
                                    what = (
                                        f"constant argument {argument} is outside "
                                        f"the domain of "
                                        f"{atom.name}/{len(atom.arguments)} "
                                        f"argument {position + 1}"
                                    )
                                self.dead[view.index] = DeadRule(
                                    cause, what, literal.location
                                )
                            return None
            for op, lhs, rhs, body_index, location in view.comparisons:
                status = cmp_status(op, eval_term(lhs, env), eval_term(rhs, env))
                if status is False:
                    if record:
                        self.dead[view.index] = DeadRule(
                            "comparison",
                            f"comparison {lhs}{op}{rhs} is statically false",
                            location if isinstance(location, ast.Location) else None,
                        )
                    return None
                if status is True:
                    true_comparisons.add(body_index)
                    continue
                if isinstance(lhs, ast.Variable) and lhs.name != "_":
                    if _refine_comparison(op, lhs.name, eval_term(rhs, env), env):
                        changed = True
                if isinstance(rhs, ast.Variable) and rhs.name != "_":
                    if _refine_comparison(
                        _MIRROR_OP[op], rhs.name, eval_term(lhs, env), env
                    ):
                        changed = True
            if not changed:
                break
        if record:
            self.envs[view.index] = env
            if true_comparisons:
                self.true_comparisons[view.index] = true_comparisons
        return env

    def _refine_condition(
        self, env: Dict[str, Dom], condition: Tuple[ast.Literal, ...]
    ) -> Optional[str]:
        """Refine ``env`` in place with a choice-element condition.
        Returns a dead cause when the condition can never hold."""
        for literal in condition:
            if literal.sign != 0:
                continue
            if isinstance(literal.atom, ast.FunctionTerm):
                atom = literal.atom
                sig = (atom.name, len(atom.arguments))
                for position, argument in enumerate(atom.arguments):
                    dom = self._position(sig, position)
                    if isinstance(argument, ast.Variable) and argument.name != "_":
                        refined = env.get(argument.name, TOP).meet(dom)
                        if refined.is_empty:
                            return "empty"
                        env[argument.name] = refined
                    elif dom.is_empty:
                        return "empty"
            elif isinstance(literal.atom, ast.Comparison):
                atom = literal.atom
                status = cmp_status(
                    atom.op, eval_term(atom.lhs, env), eval_term(atom.rhs, env)
                )
                if status is False:
                    return "comparison"
        return None

    # -- final pass ---------------------------------------------------------

    def _final_pass(self, views: List[_RuleView]) -> None:
        """Re-evaluate every rule against the converged domains: record
        dead verdicts, final environments, statically-true comparisons,
        and the joined ``&dom`` guard intervals."""
        for view in views:
            env = self._rule_env(view, record=True)
            if env is None:
                continue
            head = view.rule.head
            if isinstance(head, ast.TheoryAtom) and head.name == "dom":
                self._record_dom_interval(head, env)

    def _record_dom_interval(self, atom: ast.TheoryAtom, env: Dict[str, Dom]) -> None:
        if atom.guard is None or atom.guard[0] != "=" or not atom.elements:
            return
        guard_term = atom.guard[1]
        if not isinstance(guard_term, ast.FunctionTerm):
            return
        sig = (guard_term.name, len(guard_term.arguments))
        for element in atom.elements:
            if not element.terms:
                continue
            lo, hi = eval_term(element.terms[0], env).numeric_range()
            if lo > hi or lo <= NINF or hi >= PINF:
                continue
            if sig in self.dom_intervals:
                old_lo, old_hi = self.dom_intervals[sig]
                self.dom_intervals[sig] = (min(old_lo, lo), max(old_hi, hi))
            else:
                self.dom_intervals[sig] = (lo, hi)

    # -- public queries -----------------------------------------------------

    def domain(self, sig: Signature) -> Optional[Tuple[Dom, ...]]:
        """Per-position domains of ``sig``; ``None`` when underivable."""
        return self.domains.get(sig)

    def contains_atom(self, atom: Function) -> bool:
        """Soundness check: is the ground ``atom`` inside the inferred
        domains?  Must hold for every atom the grounder derives."""
        doms = self.domains.get(atom.signature)
        if doms is None:
            return False
        return all(dom.contains(arg) for dom, arg in zip(doms, atom.arguments))

    def violations(self, atoms) -> List[Function]:
        """Ground atoms (from a grounder run) outside the domains."""
        return [atom for atom in atoms if not self.contains_atom(atom)]

    def signature_estimate(self, sig: Signature) -> Optional[float]:
        """Domain-aware upper bound on ``|sig|``; ``None`` when unknown."""
        doms = self.domains.get(sig)
        if doms is None:
            return 0.0
        estimate = 1.0
        for dom in doms:
            size = dom.size()
            if size is None:
                return None
            estimate *= max(size, 1)
        return estimate

    def rule_estimate(self, rule: ast.Rule) -> Optional[float]:
        """Domain-aware join-size upper bound for one rule: the product
        of its positive body relations' domain estimates, discounted for
        shared variables exactly like the linter's greedy estimate."""
        estimates: List[Tuple[float, Set[str]]] = []
        for item in rule.body:
            if not isinstance(item, ast.Literal) or item.sign != 0:
                continue
            if not isinstance(item.atom, ast.FunctionTerm):
                continue
            sig = (item.atom.name, len(item.atom.arguments))
            size = self.signature_estimate(sig)
            if size is None:
                return None
            variables: Set[str] = set()
            for argument in item.atom.arguments:
                _collect_variables(argument, variables)
            estimates.append((max(size, 1.0), variables))
        if not estimates:
            return 1.0
        estimates.sort(key=lambda pair: pair[0])
        total = 1.0
        bound: Set[str] = set()
        for size, variables in estimates:
            fresh = variables - bound
            if variables and not fresh:
                continue  # fully bound: acts as a filter
            if variables:
                total *= size ** (len(fresh) / len(variables))
            else:
                total *= 1.0
            bound |= variables
        return total

    def info(self, mode: str = "on", applied: bool = True) -> DomainInfo:
        return DomainInfo(
            mode=mode,
            applied=applied,
            predicates=len(self.domains),
            positions=sum(len(doms) for doms in self.domains.values()),
            widenings=self.widenings,
            dead_rules=len(self.dead),
            seconds=self.seconds,
            bounds={
                name: interval
                for (name, arity), interval in sorted(self.dom_intervals.items())
                if arity == 0
            },
        )


def _collect_variables(term: ast.Term, out: Set[str]) -> None:
    if isinstance(term, ast.Variable):
        if term.name != "_":
            out.add(term.name)
    elif isinstance(term, ast.FunctionTerm):
        for argument in term.arguments:
            _collect_variables(argument, out)
    elif isinstance(term, ast.BinaryTerm):
        _collect_variables(term.lhs, out)
        _collect_variables(term.rhs, out)
    elif isinstance(term, ast.UnaryTerm):
        _collect_variables(term.argument, out)
    elif isinstance(term, ast.IntervalTerm):
        _collect_variables(term.lower, out)
        _collect_variables(term.upper, out)
    elif isinstance(term, ast.PoolTerm):
        for option in term.options:
            _collect_variables(option, out)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def analyze_rules(rules: Sequence[ast.Rule], externals=()) -> DomainAnalysis:
    """Analyze rules that already had ``#const`` definitions substituted
    (the grounder's internal rule list is in this form)."""
    return DomainAnalysis(rules, externals)


def analyze_program(program: ast.Program) -> DomainAnalysis:
    """Analyze a parsed program (applies ``#const`` substitution first,
    mirroring the grounder)."""
    from repro.asp.grounder import Grounder

    rules = [
        Grounder._substitute_constants(rule, program.constants)
        for rule in program.rules
    ]
    return DomainAnalysis(rules, program.externals)


# ---------------------------------------------------------------------------
# Rule canonicalization (duplicate-rule lint)
# ---------------------------------------------------------------------------


def _rename_term(term: ast.Term, mapping: Dict[str, str]) -> ast.Term:
    if isinstance(term, ast.Variable):
        if term.name == "_":
            return term
        if term.name not in mapping:
            mapping[term.name] = f"V{len(mapping)}"
        return ast.Variable(mapping[term.name])
    if isinstance(term, ast.FunctionTerm):
        return ast.FunctionTerm(
            term.name, tuple(_rename_term(a, mapping) for a in term.arguments)
        )
    if isinstance(term, ast.BinaryTerm):
        return ast.BinaryTerm(
            term.op, _rename_term(term.lhs, mapping), _rename_term(term.rhs, mapping)
        )
    if isinstance(term, ast.UnaryTerm):
        return ast.UnaryTerm(term.op, _rename_term(term.argument, mapping))
    if isinstance(term, ast.IntervalTerm):
        return ast.IntervalTerm(
            _rename_term(term.lower, mapping), _rename_term(term.upper, mapping)
        )
    if isinstance(term, ast.PoolTerm):
        return ast.PoolTerm(tuple(_rename_term(o, mapping) for o in term.options))
    return term


def _rename_literal(literal: ast.Literal, mapping: Dict[str, str]) -> ast.Literal:
    atom = literal.atom
    if isinstance(atom, ast.FunctionTerm):
        renamed = _rename_term(atom, mapping)
    else:
        renamed = ast.Comparison(
            atom.op, _rename_term(atom.lhs, mapping), _rename_term(atom.rhs, mapping)
        )
    return ast.Literal(literal.sign, renamed)


def _rename_body_item(item: ast.BodyItem, mapping: Dict[str, str]) -> ast.BodyItem:
    if isinstance(item, ast.Literal):
        return _rename_literal(item, mapping)
    guards = []
    for guard in (item.left_guard, item.right_guard):
        guards.append(
            None if guard is None else (guard[0], _rename_term(guard[1], mapping))
        )
    return ast.Aggregate(
        item.sign,
        item.function,
        tuple(
            ast.AggregateElement(
                tuple(_rename_term(t, mapping) for t in element.terms),
                tuple(_rename_literal(c, mapping) for c in element.condition),
            )
            for element in item.elements
        ),
        guards[0],
        guards[1],
    )


def _rename_head(head: ast.Head, mapping: Dict[str, str]) -> ast.Head:
    if head is None:
        return None
    if isinstance(head, ast.FunctionTerm):
        return _rename_term(head, mapping)
    if isinstance(head, ast.ChoiceHead):
        return ast.ChoiceHead(
            tuple(
                ast.ChoiceElement(
                    _rename_term(element.atom, mapping),
                    tuple(_rename_literal(c, mapping) for c in element.condition),
                )
                for element in head.elements
            ),
            None if head.lower is None else _rename_term(head.lower, mapping),
            None if head.upper is None else _rename_term(head.upper, mapping),
        )
    if isinstance(head, ast.TheoryAtom):
        return ast.TheoryAtom(
            head.name,
            tuple(_rename_term(a, mapping) for a in head.arguments),
            tuple(
                ast.TheoryElement(
                    tuple(_rename_term(t, mapping) for t in element.terms),
                    tuple(_rename_literal(c, mapping) for c in element.condition),
                )
                for element in head.elements
            ),
            None
            if head.guard is None
            else (head.guard[0], _rename_term(head.guard[1], mapping)),
        )
    return head


def canonical_rule(rule: ast.Rule) -> str:
    """A canonical string for ``rule`` with variables renamed to
    ``V0, V1, ...`` in order of first occurrence (head first, then
    body, left to right).  Two rules are syntactic duplicates iff their
    canonical strings are equal."""
    mapping: Dict[str, str] = {}
    renamed = ast.Rule(
        _rename_head(rule.head, mapping),
        tuple(_rename_body_item(item, mapping) for item in rule.body),
    )
    return str(renamed)

"""Renaming-invariant canonical forms for specifications.

The serving layer dedups solve requests by *structure*: two
specifications that differ only in how their tasks, messages, resources
and links are named (or in the order the fields were listed) describe
the same design space and have the same Pareto front, so they should
share one cache entry.  This module computes a canonical certificate of
the specification's colored graph — vertices for tasks/resources/
messages/links carrying their numeric attributes, edges for data flow,
topology and mapping options — via color refinement plus an
individualize-and-refine search for the lexicographically minimal leaf,
the textbook canonical-labeling scheme (nauty's skeleton, without the
automorphism pruning we do not need at specification sizes).

Equal digests therefore imply isomorphic specifications, which implies
equal Pareto fronts (up to the renaming captured by the returned name
maps) — the cache can never conflate two specs with different fronts.
The search is capped at :data:`MAX_LEAVES` leaves; pathological
instances past the cap fall back to a name-dependent certificate that
is still collision-free but no longer renaming-invariant
(``exact=False``), trading cache hits for bounded work, never
correctness.

Digests use SHA-256 over the certificate text — never Python's
``hash()``, which is randomized per process.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.synthesis.model import Specification

__all__ = [
    "MAX_LEAVES",
    "CanonicalSpec",
    "canonicalize_specification",
    "canonical_digest",
    "invert_name_map",
    "remap_front_entry",
]

#: Leaf budget for the individualize-and-refine search.  Specifications
#: need highly regular structure (every task/resource interchangeable)
#: to come anywhere near it; past the cap we keep the refined coloring
#: but break ties by name instead of searching.
MAX_LEAVES = 4096

# Edge colors of the specification graph.  Tuples so that attributed
# edges (mapping options) and plain edges sort side by side.
_E_SRC = ("src",)  # producing task  -> message
_E_TGT = ("tgt",)  # message         -> primary target task
_E_XTGT = ("xtgt",)  # message       -> extra (multicast) target task
_E_LSRC = ("lsrc",)  # source resource -> link
_E_LTGT = ("ltgt",)  # link            -> target resource


@dataclass(frozen=True)
class CanonicalSpec:
    """A specification's canonical certificate plus renaming maps.

    ``digest`` is the SHA-256 of ``certificate``.  The four maps send
    *original* names to *canonical* names (``t0``/``r1``/``m2``/``l3``
    style); invert them with :func:`invert_name_map` to translate
    cached (canonical-namespace) witnesses back into a client's own
    names.  ``exact`` is False only when the leaf budget was exhausted
    and the certificate had to fall back to name-dependent tie-breaks.
    """

    digest: str
    certificate: str
    exact: bool
    task_map: Mapping[str, str]
    resource_map: Mapping[str, str]
    message_map: Mapping[str, str]
    link_map: Mapping[str, str]


class _LeafBudgetExceeded(Exception):
    pass


class _Graph:
    """The colored digraph view of a specification."""

    def __init__(self, spec: Specification) -> None:
        self.names: List[str] = []
        self.kinds: List[str] = []  # "T" / "R" / "M" / "L", listing order
        self.attrs: List[Tuple] = []
        index: Dict[Tuple[str, str], int] = {}

        def add(kind: str, name: str, attr: Tuple) -> int:
            vid = len(self.names)
            self.names.append(name)
            self.kinds.append(kind)
            self.attrs.append(attr)
            index[(kind, name)] = vid
            return vid

        for task in spec.application.tasks:
            deadline = -1 if task.deadline is None else task.deadline
            add("T", task.name, ("T", deadline))
        for resource in spec.architecture.resources:
            add("R", resource.name, ("R", resource.cost))
        for message in spec.application.messages:
            add("M", message.name, ("M", message.size))
        for link in spec.architecture.links:
            add("L", link.name, ("L", link.delay, link.energy))

        n = len(self.names)
        self.out_edges: List[List[Tuple[Tuple, int]]] = [[] for _ in range(n)]
        self.in_edges: List[List[Tuple[Tuple, int]]] = [[] for _ in range(n)]

        def edge(src: int, dst: int, color: Tuple) -> None:
            self.out_edges[src].append((color, dst))
            self.in_edges[dst].append((color, src))

        for message in spec.application.messages:
            mid = index[("M", message.name)]
            edge(index[("T", message.source)], mid, _E_SRC)
            edge(mid, index[("T", message.target)], _E_TGT)
            for extra in message.extra_targets:
                edge(mid, index[("T", extra)], _E_XTGT)
        for link in spec.architecture.links:
            lid = index[("L", link.name)]
            edge(index[("R", link.source)], lid, _E_LSRC)
            edge(lid, index[("R", link.target)], _E_LTGT)
        for option in spec.mappings:
            edge(
                index[("T", option.task)],
                index[("R", option.resource)],
                ("map", option.wcet, option.energy),
            )

    # -- color refinement --------------------------------------------------

    def initial_colors(self) -> List[int]:
        ordered = sorted(set(self.attrs))
        color_of = {attr: i for i, attr in enumerate(ordered)}
        return [color_of[attr] for attr in self.attrs]

    def refine(self, colors: Sequence[int]) -> List[int]:
        """1-WL refinement to a stable (equitable) coloring.

        The signature of a vertex embeds its previous color, so each
        round refines the partition; a round that keeps the cell count
        is therefore the fixed point.
        """
        colors = list(colors)
        n = len(colors)
        while True:
            signatures = []
            for v in range(n):
                out_sig = tuple(
                    sorted((color, colors[u]) for color, u in self.out_edges[v])
                )
                in_sig = tuple(
                    sorted((color, colors[u]) for color, u in self.in_edges[v])
                )
                signatures.append((colors[v], out_sig, in_sig))
            ordered = sorted(set(signatures))
            relabel = {sig: i for i, sig in enumerate(ordered)}
            refined = [relabel[sig] for sig in signatures]
            if len(ordered) == len(set(colors)):
                return refined
            colors = refined

    # -- certificates ------------------------------------------------------

    def certificate_for(self, order: Sequence[int]) -> str:
        """Serialize the graph with vertices renumbered by ``order``."""
        position = {v: i for i, v in enumerate(order)}
        rows = []
        for v in order:
            out_sig = sorted(
                (color, position[u]) for color, u in self.out_edges[v]
            )
            rows.append((self.attrs[v], tuple(out_sig)))
        return repr(tuple(rows))

    def canonical_order(
        self, max_leaves: int
    ) -> Tuple[List[int], bool]:
        """Search for the ordering with the minimal certificate.

        Returns ``(order, exact)``; ``exact=False`` means the leaf
        budget ran out and the order breaks remaining ties by original
        name (deterministic but not renaming-invariant).
        """
        n = len(self.names)
        stable = self.refine(self.initial_colors())
        best: List[Optional[str]] = [None]
        best_order: List[Optional[List[int]]] = [None]
        leaves = [0]

        def cells_of(colors: Sequence[int]) -> Dict[int, List[int]]:
            cells: Dict[int, List[int]] = {}
            for v, color in enumerate(colors):
                cells.setdefault(color, []).append(v)
            return cells

        def descend(colors: List[int]) -> None:
            cells = cells_of(colors)
            target = None
            for color in sorted(cells):
                if len(cells[color]) > 1:
                    if target is None or len(cells[color]) < len(cells[target]):
                        target = color
            if target is None:
                leaves[0] += 1
                if leaves[0] > max_leaves:
                    raise _LeafBudgetExceeded
                order = sorted(range(n), key=lambda v: colors[v])
                certificate = self.certificate_for(order)
                if best[0] is None or certificate < best[0]:
                    best[0] = certificate
                    best_order[0] = order
                return
            fresh = n  # larger than any refined label (labels < n)
            for v in cells[target]:
                branched = list(colors)
                branched[v] = fresh
                descend(self.refine(branched))

        try:
            descend(stable)
            assert best_order[0] is not None
            return best_order[0], True
        except _LeafBudgetExceeded:
            order = sorted(
                range(n), key=lambda v: (stable[v], self.attrs[v], self.names[v])
            )
            return order, False


_CANON_PREFIX = {"T": "t", "R": "r", "M": "m", "L": "l"}


def canonicalize_specification(
    spec: Specification, max_leaves: int = MAX_LEAVES
) -> CanonicalSpec:
    """Canonical certificate + digest + name maps for ``spec``.

    Two specifications receive the same digest iff their colored graphs
    are isomorphic (modulo the :data:`MAX_LEAVES` fallback, which only
    ever *misses* equivalences, never invents them) — identical design
    spaces under renaming of tasks, messages, resources and links and
    reordering of any listing.
    """
    graph = _Graph(spec)
    order, exact = graph.canonical_order(max_leaves)
    certificate = graph.certificate_for(order)
    digest = hashlib.sha256(certificate.encode("utf-8")).hexdigest()
    maps: Dict[str, Dict[str, str]] = {"T": {}, "R": {}, "M": {}, "L": {}}
    counters: Dict[str, int] = {"T": 0, "R": 0, "M": 0, "L": 0}
    for v in order:
        kind = graph.kinds[v]
        maps[kind][graph.names[v]] = f"{_CANON_PREFIX[kind]}{counters[kind]}"
        counters[kind] += 1
    return CanonicalSpec(
        digest=digest,
        certificate=certificate,
        exact=exact,
        task_map=maps["T"],
        resource_map=maps["R"],
        message_map=maps["M"],
        link_map=maps["L"],
    )


def canonical_digest(spec: Specification, max_leaves: int = MAX_LEAVES) -> str:
    """Shorthand for ``canonicalize_specification(spec).digest``."""
    return canonicalize_specification(spec, max_leaves).digest


def invert_name_map(mapping: Mapping[str, str]) -> Dict[str, str]:
    """Invert an (injective) original->canonical name map."""
    inverted = {value: key for key, value in mapping.items()}
    if len(inverted) != len(mapping):
        raise ValueError("name map is not injective")
    return inverted


def remap_front_entry(
    entry: Mapping[str, object],
    task_map: Mapping[str, str],
    resource_map: Mapping[str, str],
    message_map: Mapping[str, str],
    link_map: Mapping[str, str],
) -> Dict[str, object]:
    """Rename one serialized front entry through the given name maps.

    ``entry`` uses the :meth:`repro.dse.explorer.DseResult.to_dict`
    shape (``vector`` / ``binding`` / ``routes`` / ``schedule`` /
    ``objective_values``).  Objective vectors and values are
    renaming-invariant and pass through untouched; dictionaries come
    back sorted so remapped entries stay byte-stable under JSON
    serialization.
    """
    remapped = dict(entry)
    binding = entry.get("binding") or {}
    remapped["binding"] = dict(
        sorted(
            (task_map[task], resource_map[resource])
            for task, resource in binding.items()
        )
    )
    routes = entry.get("routes") or {}
    remapped["routes"] = dict(
        sorted(
            (message_map[message], [link_map[link] for link in route])
            for message, route in routes.items()
        )
    )
    schedule = entry.get("schedule") or {}
    remapped["schedule"] = dict(
        sorted((task_map[task], start) for task, start in schedule.items())
    )
    if "message_schedule" in entry:
        remapped["message_schedule"] = dict(
            sorted(
                (message_map[message], start)
                for message, start in (entry["message_schedule"] or {}).items()
            )
        )
    return remapped

"""Platform symmetry analysis and lex-leader constraint synthesis.

:func:`analyze_specification` models a
:class:`~repro.synthesis.model.Specification`'s platform as a colored
digraph — one vertex per resource, colored by everything the objectives
can observe about it (allocation cost plus the exact multiset of
``(task, wcet, energy)`` mapping options targeting it), one edge color
per ordered resource pair carrying the multiset of ``(delay, energy)``
attributes of the parallel links — and hands it to the
:mod:`repro.analysis.graph` automorphism engine.  Two resources end up
in one orbit only when they are *observationally interchangeable*: a
platform automorphism ``pi`` maps any feasible implementation to a
feasible implementation with the *identical* objective vector (latency,
energy, cost and period all read only colors ``pi`` preserves).

:func:`lex_leader_program` turns the generator set into ground ASP
rules over the encoding's ``bind/2`` atoms.  For each generator ``pi``
the binding vector ``B = (idx(B(t_1)), ..., idx(B(t_n)))`` (tasks in
declaration order, resources by declaration index) is constrained to be
lexicographically no greater than its image ``pi(B)``.  Because
``bind(t, r)`` statically fixes both ``idx(r)`` and ``idx(pi(r))``,
each position is one of three static cases — ``eq`` (``pi`` fixes
``r``), ``lt`` (``idx(pi(r)) > idx(r)``: the prefix turns strictly
smaller, nothing further is constrained) or ``gt`` (``idx(pi(r)) <
idx(r)``: forbidden while the prefix is all-equal) — so the whole
constraint compiles to a prefix-equality chain::

    sym_eq(g, j)  :- bind(t_j, r).          % for eq options r
    sym_pre(g, 1) :- sym_eq(g, 1).
    sym_pre(g, j) :- sym_pre(g, j-1), sym_eq(g, j).
    :- sym_pre(g, j-1), bind(t_j, r).       % for gt options r

**Exactness argument** (docs/SYMMETRY.md has the full version): every
automorphism preserves feasibility and the objective vector, so the
lex-minimal element of each solution orbit satisfies ``B <= pi(B)`` for
*every* group element — in particular for each generator — and
survives the constraints.  Every objective vector of the unbroken front
is therefore still witnessed, and no infeasible or new vector can
appear: the Pareto front *of vectors* is bit-identical with breaking on
or off.  The guarantee needs ``routing="free"`` (fixed-route tables
pick one canonical path per pair whose energy/cost need not be
``pi``-invariant) and no pinned bindings (a pin can exclude the orbit's
lex-minimal representative); callers gate both.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.analysis.graph import AutomorphismGroup, ColoredGraph

__all__ = [
    "PlatformSymmetry",
    "SymmetryInfo",
    "analyze_specification",
    "lex_leader_program",
]


@dataclass(frozen=True)
class PlatformSymmetry:
    """The automorphism structure of one platform."""

    #: Resource names in declaration order (the index space of generators).
    resources: Tuple[str, ...]
    #: Strong generating set; each entry maps resource index -> image index.
    generators: Tuple[Tuple[int, ...], ...]
    #: Exact order of the automorphism group.
    order: int
    #: Resource-name orbits under the full group, sorted.
    orbits: Tuple[Tuple[str, ...], ...]
    #: Wall seconds spent detecting the group.
    seconds: float

    @property
    def trivial(self) -> bool:
        return self.order <= 1

    @property
    def nontrivial_orbits(self) -> Tuple[Tuple[str, ...], ...]:
        return tuple(orbit for orbit in self.orbits if len(orbit) > 1)


@dataclass(frozen=True)
class SymmetryInfo:
    """What ``encode(symmetry=...)`` did, recorded on the instance.

    Shipped to parallel workers inside the pickled instance, so it stays
    a small summary rather than the full :class:`PlatformSymmetry`.
    """

    #: The requested mode ("on" or "auto").
    mode: str
    #: Whether lex-leader constraints were injected into the program.
    applied: bool
    #: Number of generators of the automorphism group.
    generators: int
    #: Exact group order (1 = only the identity).
    order: int
    #: Number of non-trivial resource orbits.
    orbits: int
    #: Ground integrity constraints synthesized (0 when not applied).
    constraints: int
    #: Wall seconds of analysis + synthesis.
    seconds: float
    #: Why breaking was declined (``auto`` mode), or None.
    declined: Optional[str] = None


def _platform_graph(spec) -> ColoredGraph:
    """The platform as a colored digraph (see module docstring)."""
    resources = [resource.name for resource in spec.architecture.resources]
    index = {name: i for i, name in enumerate(resources)}
    options_by_resource: Dict[str, List[Tuple[str, int, int]]] = {
        name: [] for name in resources
    }
    for option in spec.mappings:
        options_by_resource[option.resource].append(
            (option.task, option.wcet, option.energy)
        )
    colors = [
        (
            resource.cost,
            tuple(sorted(options_by_resource[resource.name])),
        )
        for resource in spec.architecture.resources
    ]
    edge_attrs: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for link in spec.architecture.links:
        pair = (index[link.source], index[link.target])
        edge_attrs.setdefault(pair, []).append((link.delay, link.energy))
    edges = {pair: tuple(sorted(attrs)) for pair, attrs in edge_attrs.items()}
    return ColoredGraph(len(resources), colors, edges)


def analyze_specification(spec) -> PlatformSymmetry:
    """Detect the platform automorphism group of ``spec``."""
    started = perf_counter()
    resources = tuple(resource.name for resource in spec.architecture.resources)
    group: AutomorphismGroup = _platform_graph(spec).automorphism_group()
    orbits = tuple(
        tuple(resources[v] for v in orbit) for orbit in group.orbits
    )
    return PlatformSymmetry(
        resources=resources,
        generators=group.generators,
        order=group.order,
        orbits=orbits,
        seconds=perf_counter() - started,
    )


def lex_leader_program(spec, symmetry: PlatformSymmetry) -> Tuple[str, int]:
    """Ground lex-leader rules for ``spec`` under ``symmetry``.

    Returns ``(program_text, constraint_count)`` where the count is the
    number of integrity constraints (the ``gt`` cases); ``("", 0)`` when
    no generator constrains any binding (e.g. symmetries moving only
    routers, which no ``bind/2`` atom observes).
    """
    index = {name: i for i, name in enumerate(symmetry.resources)}
    options_by_task: Dict[str, List[str]] = {}
    for option in spec.mappings:
        options_by_task.setdefault(option.task, []).append(option.resource)
    task_order = [task.name for task in spec.application.tasks]

    lines: List[str] = []
    count = 0
    for gen_id, perm in enumerate(symmetry.generators, 1):
        moved = {i for i, image in enumerate(perm) if image != i}
        # Positions: tasks (in declaration order) with an option on a
        # moved resource; per position the static eq/lt/gt option split.
        positions: List[Tuple[str, List[str], List[str]]] = []
        for task in task_order:
            options = options_by_task.get(task, [])
            if not any(index[r] in moved for r in options):
                continue  # statically always-equal; skip the position
            eq = [r for r in options if perm[index[r]] == index[r]]
            gt = [r for r in options if perm[index[r]] < index[r]]
            positions.append((task, eq, gt))
        # The prefix-equality chain dies at the first position with no eq
        # option; constraints beyond the last reachable gt position are
        # unreachable and would only leave dead rules behind.
        horizon = len(positions)
        for j, (_task, eq, _gt) in enumerate(positions, 1):
            if not eq:
                horizon = j
                break
        last_gt = max(
            (j for j, (_t, _e, gt) in enumerate(positions, 1) if gt and j <= horizon),
            default=0,
        )
        if last_gt == 0:
            continue
        lines.append(f"% lex-leader for platform generator {gen_id}")
        prefix = ""
        for j, (task, eq, gt) in enumerate(positions[:last_gt], 1):
            for resource in gt:
                lines.append(f":- {prefix}bind({task}, {resource}).")
                count += 1
            if j == last_gt:
                break
            for resource in eq:
                lines.append(f"sym_eq({gen_id}, {j}) :- bind({task}, {resource}).")
            body = f"{prefix}sym_eq({gen_id}, {j})."
            lines.append(f"sym_pre({gen_id}, {j}) :- {body}")
            prefix = f"sym_pre({gen_id}, {j}), "
    return "\n".join(lines), count

"""Structured diagnostics for the static analyzer.

A :class:`Diagnostic` is one finding: a stable kebab-case rule id, a
severity, a human-readable message and (when the finding is anchored in
source text) a :class:`SourceSpan`.  A :class:`LintReport` aggregates the
findings of one lint run together with timing, and renders them as
``file:line:col: severity[rule-id]: message`` text, as JSON for CI, or
as SARIF 2.1.0 (``render("sarif")``) for code-annotation uploads.

Suppression: ``% lint: disable=<id>[,<id>...]`` in the linted source
disables the listed rule ids (or ``all``) — for the statement(s) starting
on that line when the comment trails code, for the whole file when the
comment stands alone on its line.
"""

from __future__ import annotations

import enum
import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Severity",
    "SourceSpan",
    "Diagnostic",
    "LintReport",
    "LintError",
    "suppressions",
    "filter_suppressed",
]


#: SARIF result levels for each severity (SARIF has no "info" level —
#: the spec maps informational findings to "note").
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


class Severity(enum.Enum):
    """Diagnostic severity, ordered from most to least severe."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class SourceSpan:
    """A 1-based source position; ``end_column`` is exclusive when set."""

    file: str
    line: int
    column: int
    end_line: Optional[int] = None
    end_column: Optional[int] = None

    def __str__(self) -> str:
        return f"{self.file}:{self.line}:{self.column}"

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "file": self.file,
            "line": self.line,
            "column": self.column,
        }
        if self.end_line is not None:
            data["end_line"] = self.end_line
        if self.end_column is not None:
            data["end_column"] = self.end_column
        return data


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    rule: str
    severity: Severity
    message: str
    span: Optional[SourceSpan] = None

    def __str__(self) -> str:
        prefix = f"{self.span}: " if self.span is not None else ""
        return f"{prefix}{self.severity}[{self.rule}]: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.span is not None:
            data["span"] = self.span.to_dict()
        return data

    def sort_key(self) -> Tuple:
        span = self.span
        return (
            span.file if span else "",
            span.line if span else 0,
            span.column if span else 0,
            self.severity.rank,
            self.rule,
            self.message,
        )


@dataclass
class LintReport:
    """All diagnostics of one lint run, plus timing."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    seconds: float = 0.0
    files: List[str] = field(default_factory=list)
    #: Diagnostics dropped by ``% lint: disable=...`` comments.
    suppressed: int = 0

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def sort(self) -> None:
        self.diagnostics.sort(key=Diagnostic.sort_key)

    @property
    def errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def infos(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.INFO)

    def counts(self) -> Dict[str, int]:
        return {"errors": self.errors, "warnings": self.warnings, "infos": self.infos}

    def to_dict(self) -> Dict[str, object]:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
            "suppressed": self.suppressed,
            "seconds": self.seconds,
            "files": list(self.files),
        }

    def to_sarif(self) -> Dict[str, object]:
        """The report as a SARIF 2.1.0 log (one run, one result per
        diagnostic) — the schema GitHub code scanning ingests."""
        from repro import __version__ as version
        from repro.analysis.linter import RULES

        used = sorted({d.rule for d in self.diagnostics})
        rules = [
            {
                "id": rule_id,
                "shortDescription": {"text": RULES[rule_id][1]},
                "defaultConfiguration": {
                    "level": _SARIF_LEVELS[RULES[rule_id][0].value]
                },
            }
            for rule_id in used
            if rule_id in RULES
        ]
        rule_index = {entry["id"]: index for index, entry in enumerate(rules)}
        results = []
        for diagnostic in self.diagnostics:
            result: Dict[str, object] = {
                "ruleId": diagnostic.rule,
                "level": _SARIF_LEVELS[diagnostic.severity.value],
                "message": {"text": diagnostic.message},
            }
            if diagnostic.rule in rule_index:
                result["ruleIndex"] = rule_index[diagnostic.rule]
            if diagnostic.span is not None:
                span = diagnostic.span
                region: Dict[str, object] = {
                    "startLine": span.line,
                    "startColumn": span.column,
                }
                if span.end_line is not None:
                    region["endLine"] = span.end_line
                if span.end_column is not None:
                    region["endColumn"] = span.end_column
                result["locations"] = [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": span.file},
                            "region": region,
                        }
                    }
                ]
            results.append(result)
        return {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "version": version,
                            "rules": rules,
                        }
                    },
                    "artifacts": [
                        {"location": {"uri": path}} for path in self.files
                    ],
                    "results": results,
                }
            ],
        }

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            return json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if fmt == "sarif":
            return json.dumps(self.to_sarif(), indent=2, sort_keys=True)
        if fmt != "text":
            raise ValueError(f"unknown lint output format {fmt!r}")
        lines = [str(d) for d in self.diagnostics]
        suppressed = (
            f", {self.suppressed} suppressed" if self.suppressed else ""
        )
        lines.append(
            f"{len(self.files)} file(s): {self.errors} error(s), "
            f"{self.warnings} warning(s), {self.infos} info(s)"
            f"{suppressed} [{self.seconds:.3f}s]"
        )
        return "\n".join(lines)


class LintError(Exception):
    """Raised by ``lint="raise"`` hooks when error-severity findings exist."""

    def __init__(self, report: LintReport):
        first = next(
            (d for d in report.diagnostics if d.severity is Severity.ERROR), None
        )
        detail = f": {first}" if first is not None else ""
        super().__init__(f"{report.errors} lint error(s){detail}")
        self.report = report


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------

_SUPPRESS_RE = re.compile(r"%\s*lint:\s*disable=([A-Za-z0-9_*,-]+)")


def suppressions(text: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Scan ``text`` for ``% lint: disable=...`` comments.

    Returns ``(file_wide, per_line)`` sets of suppressed rule ids.  The
    special id ``all`` suppresses every rule.
    """
    file_wide: Set[str] = set()
    per_line: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        comment_start = line.index("%", 0, match.end())
        if line[:comment_start].strip():
            per_line.setdefault(lineno, set()).update(ids)
        else:
            file_wide.update(ids)
    return file_wide, per_line


def filter_suppressed(
    diagnostics: Sequence[Diagnostic], text: str
) -> List[Diagnostic]:
    """Drop diagnostics disabled by suppression comments in ``text``.

    A trailing comment applies to diagnostics anchored on its line (a
    multi-line statement is anchored on its first line).
    """
    file_wide, per_line = suppressions(text)
    if not file_wide and not per_line:
        return list(diagnostics)
    kept: List[Diagnostic] = []
    for diagnostic in diagnostics:
        ids = set(file_wide)
        if diagnostic.span is not None:
            ids |= per_line.get(diagnostic.span.line, set())
        if "all" in ids or diagnostic.rule in ids:
            continue
        kept.append(diagnostic)
    return kept

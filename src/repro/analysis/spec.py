"""Static validation of synthesis specifications and encoded instances.

:func:`validate_specification` checks a
:class:`~repro.synthesis.model.Specification` for defects the dataclass
constructors cannot see — unroutable communications, isolated (zero
capacity) resources, unsatisfiable deadlines, degenerate objectives —
*before* the instance is encoded and explored, because an over- or
under-constrained spec otherwise yields an empty-but-"exact" Pareto
front with no hint why.

:func:`lint_instance` combines the spec checks with a full program lint
of the generated encoding and cross-checks the declared
:class:`~repro.synthesis.encoding.ObjectiveSpec` objects against the
theory atoms that are supposed to constrain them.

Spec diagnostics carry no source span (there is no source text); their
rule ids are prefixed ``spec-``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import networkx as nx

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.linter import LintConfig, Linter

__all__ = ["SPEC_RULES", "validate_specification", "lint_instance"]

#: rule id -> (severity, one-line description) for the spec validator.
SPEC_RULES: Dict[str, Tuple[Severity, str]] = {
    "spec-unmappable-task": (
        Severity.ERROR,
        "a task has no mapping option at all",
    ),
    "spec-unroutable-communication": (
        Severity.ERROR,
        "no binding of a message's endpoints admits a route",
    ),
    "spec-unsatisfiable-deadline": (
        Severity.ERROR,
        "a task deadline is below its fastest WCET",
    ),
    "spec-isolated-resource": (
        Severity.WARNING,
        "a resource can neither execute tasks nor carry traffic",
    ),
    "spec-degenerate-objective": (
        Severity.WARNING,
        "an objective cannot discriminate between designs",
    ),
    "spec-symmetric-platform": (
        Severity.INFO,
        "the platform has non-trivial automorphisms; symmetry breaking "
        "would shrink the search",
    ),
}


def _diag(rule: str, message: str) -> Diagnostic:
    return Diagnostic(rule, SPEC_RULES[rule][0], message)


def validate_specification(
    spec, objectives: Optional[Sequence[Union[str, object]]] = None
) -> List[Diagnostic]:
    """All spec-level diagnostics for ``spec`` (empty when clean).

    ``objectives`` may list objective names (``"latency"``) or
    :class:`~repro.synthesis.encoding.ObjectiveSpec` objects; when given,
    degenerate objectives are reported as well.
    """
    out: List[Diagnostic] = []
    graph = spec.architecture.graph()

    # Unmappable tasks.  The Specification constructor rejects these too;
    # the check stays so subclasses or hand-built instances get a
    # diagnostic instead of an exception mid-pipeline.
    for task in spec.application.tasks:
        if not spec.options_of(task.name):
            out.append(
                _diag(
                    "spec-unmappable-task",
                    f"task {task.name!r} has no mapping options",
                )
            )

    # Unroutable communications: a message endpoint pair such that *no*
    # combination of mapping options admits a route (colocated counts).
    for message in spec.application.messages:
        sources = {o.resource for o in spec.options_of(message.source)}
        for target in message.targets:
            targets = {o.resource for o in spec.options_of(target)}
            routable = any(
                a == b or nx.has_path(graph, a, b)
                for a in sources
                for b in targets
            )
            if not routable:
                out.append(
                    _diag(
                        "spec-unroutable-communication",
                        f"message {message.name!r}: no binding of "
                        f"{message.source!r} -> {target!r} admits a route "
                        f"through the architecture",
                    )
                )

    # Deadlines below the fastest possible execution.
    for task in spec.application.tasks:
        if task.deadline is None:
            continue
        fastest = min(
            (o.wcet for o in spec.options_of(task.name)), default=None
        )
        if fastest is not None and task.deadline < fastest:
            out.append(
                _diag(
                    "spec-unsatisfiable-deadline",
                    f"task {task.name!r} has deadline {task.deadline} below "
                    f"its fastest WCET {fastest}",
                )
            )

    # Isolated resources: no mapping option targets them and no link
    # touches them — dead weight in the architecture (a zero-capacity PE).
    used = {o.resource for o in spec.mappings}
    linked = set()
    for link in spec.architecture.links:
        linked.add(link.source)
        linked.add(link.target)
    for resource in spec.architecture.resources:
        if resource.name not in used and resource.name not in linked:
            out.append(
                _diag(
                    "spec-isolated-resource",
                    f"resource {resource.name!r} has no mapping options and "
                    f"no incident links; it can never be allocated",
                )
            )

    # Objective bounds (max_energy / max_cost) are undefined for a spec
    # with unmappable tasks, and those already carry an error diagnostic.
    unmappable = any(d.rule == "spec-unmappable-task" for d in out)
    if objectives and not unmappable:
        out.extend(_check_objectives(spec, objectives))
    return out


def _check_objectives(spec, objectives: Sequence[Union[str, object]]) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for objective in objectives:
        if isinstance(objective, str):
            name = objective
            if name == "energy" and spec.max_energy() == 0:
                out.append(
                    _diag(
                        "spec-degenerate-objective",
                        "objective 'energy': every mapping option and link "
                        "has zero energy, the objective cannot discriminate",
                    )
                )
            elif name == "cost" and spec.max_cost() == 0:
                out.append(
                    _diag(
                        "spec-degenerate-objective",
                        "objective 'cost': every resource has zero cost, "
                        "the objective cannot discriminate",
                    )
                )
            continue
        # ObjectiveSpec duck-typing: name/kind/terms/variable/max_value.
        kind = getattr(objective, "kind", None)
        name = getattr(objective, "name", "<objective>")
        if kind == "pb" and not getattr(objective, "terms", ()):
            out.append(
                _diag(
                    "spec-degenerate-objective",
                    f"objective {name!r} has no pseudo-Boolean terms",
                )
            )
        elif getattr(objective, "max_value", 1) == 0:
            out.append(
                _diag(
                    "spec-degenerate-objective",
                    f"objective {name!r} has max_value 0; it is constant "
                    f"over the whole design space",
                )
            )
    return out


def lint_instance(
    instance, config: Optional[LintConfig] = None
) -> LintReport:
    """Lint an :class:`~repro.synthesis.encoding.EncodedInstance`.

    Combines (a) the spec validator, (b) a full program lint of the
    generated encoding, and (c) a cross-check that each ``"var"``
    objective's theory variable is actually constrained by a theory atom
    in the encoding.
    """
    report = Linter(config).lint_text(instance.program, filename="<encoding>")
    diagnostics = list(report.diagnostics)
    diagnostics.extend(
        validate_specification(instance.specification, instance.objectives)
    )
    diagnostics.extend(_check_objective_wiring(instance))
    diagnostics.extend(_check_platform_symmetry(instance))
    report.diagnostics = diagnostics
    report.sort()
    return report


def _check_platform_symmetry(instance) -> List[Diagnostic]:
    """INFO when the platform is symmetric but the encoding is unbroken.

    Runs only on instances encoded with ``symmetry="off"`` (an instance
    that already analyzed its platform records the result on
    ``instance.symmetry`` whether or not breaking was applied).
    """
    if getattr(instance, "symmetry", None) is not None:
        return []
    from repro.analysis.symmetry import analyze_specification

    symmetry = analyze_specification(instance.specification)
    if symmetry.trivial:
        return []
    orbits = symmetry.nontrivial_orbits
    return [
        _diag(
            "spec-symmetric-platform",
            f"platform has {symmetry.order - 1} non-trivial automorphism(s) "
            f"across {len(orbits)} resource orbit(s) "
            f"({', '.join('{' + ', '.join(o) + '}' for o in orbits)}); "
            f"symmetry breaking recommended (encode with symmetry='auto')",
        )
    ]


def _check_objective_wiring(instance) -> List[Diagnostic]:
    """Each ``var`` objective must appear as a theory guard in the program."""
    from repro.asp import ast
    from repro.asp.parser import ParseError, parse_program

    try:
        program = parse_program(instance.program)
    except ParseError:
        return []  # the program lint already reported this
    guard_names = set()
    for rule in program.rules:
        head = rule.head
        if isinstance(head, ast.TheoryAtom) and head.guard is not None:
            guard = head.guard[1]
            if isinstance(guard, ast.FunctionTerm):
                guard_names.add(guard.name)
    out: List[Diagnostic] = []
    for objective in instance.objectives:
        if objective.kind != "var" or objective.variable is None:
            continue
        name = getattr(objective.variable, "name", str(objective.variable))
        if name not in guard_names:
            out.append(
                _diag(
                    "spec-degenerate-objective",
                    f"objective {objective.name!r}: theory variable {name} "
                    f"is not constrained by any theory atom in the encoding",
                )
            )
    return out

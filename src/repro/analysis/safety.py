"""Static variable-safety analysis over the non-ground AST.

Mirrors the grounder's matching semantics (:mod:`repro.asp.grounder`)
without importing it: positive body atoms bind the variables in plain
(matchable) argument positions, and positive ``X = term`` equalities act
as generators once the value side is bound — including intervals,
``X = 1..n``.  Every other occurrence must be covered by those binders:

* head terms and choice bounds (the grounder raises ``head ... not
  bound``),
* negative literals and non-binder comparisons (``unsafe literal ...``),
* aggregate guards and element terms,
* theory-atom arguments, guards and element terms.

Each uncovered variable yields a :class:`SafetyViolation`.  ``fatal``
marks occurrences that make the grounder *raise* at runtime; non-fatal
violations (a variable confined to arithmetic arguments of a positive
atom, or an unbound choice-element atom) silently produce empty
groundings — equally a defect, but not a crash, so the pre-grounding
check in :class:`repro.asp.grounder.Grounder` only rejects fatal ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.asp import ast

__all__ = ["SafetyViolation", "rule_safety_violations", "display_name"]


@dataclass(frozen=True)
class SafetyViolation:
    """One unsafe variable occurrence in a rule."""

    variable: str
    context: str
    fatal: bool
    location: Optional[ast.Location]


def display_name(variable: str) -> str:
    """Anonymous variables are parsed to ``_AnonN``; show them as ``_``."""
    return "_" if variable.startswith("_Anon") else variable


def _term_variables(term: ast.Term, out: Set[str]) -> None:
    if isinstance(term, ast.Variable):
        out.add(term.name)
    elif isinstance(term, ast.FunctionTerm):
        for argument in term.arguments:
            _term_variables(argument, out)
    elif isinstance(term, ast.BinaryTerm):
        _term_variables(term.lhs, out)
        _term_variables(term.rhs, out)
    elif isinstance(term, ast.UnaryTerm):
        _term_variables(term.argument, out)
    elif isinstance(term, ast.IntervalTerm):
        _term_variables(term.lower, out)
        _term_variables(term.upper, out)
    elif isinstance(term, ast.PoolTerm):
        for option in term.options:
            _term_variables(option, out)


def term_variables(term: ast.Term) -> Set[str]:
    out: Set[str] = set()
    _term_variables(term, out)
    return out


def _matchable_variables(term: ast.Term, out: Set[str]) -> None:
    """Variables in plain argument positions — bound by matching a positive
    atom.  Variables under arithmetic/interval/pool operators can only be
    evaluated, never inverted, so they do not count."""
    if isinstance(term, ast.Variable):
        out.add(term.name)
    elif isinstance(term, ast.FunctionTerm):
        for argument in term.arguments:
            _matchable_variables(argument, out)


def _is_binder(literal: ast.Literal) -> bool:
    return (
        literal.sign == 0
        and isinstance(literal.atom, ast.Comparison)
        and literal.atom.op == "="
        and (
            isinstance(literal.atom.lhs, ast.Variable)
            or isinstance(literal.atom.rhs, ast.Variable)
        )
    )


def bindable_variables(
    positives: Iterable[ast.Literal], initial: Set[str] = frozenset()
) -> Set[str]:
    """Fixpoint of variables a join over ``positives`` can bind, starting
    from the already-safe set ``initial``."""
    safe: Set[str] = set(initial)
    literals = list(positives)
    changed = True
    while changed:
        changed = False
        for literal in literals:
            if literal.sign != 0:
                continue
            atom = literal.atom
            if isinstance(atom, ast.Comparison):
                if not _is_binder(literal):
                    continue
                lhs, rhs = atom.lhs, atom.rhs
                for variable, value in ((lhs, rhs), (rhs, lhs)):
                    if (
                        isinstance(variable, ast.Variable)
                        and variable.name not in safe
                        and term_variables(value) <= safe
                    ):
                        safe.add(variable.name)
                        changed = True
            else:
                before = len(safe)
                _matchable_variables(atom, safe)
                if len(safe) != before:
                    changed = True
    return safe


def _uncovered(
    term_or_terms, safe: Set[str]
) -> Set[str]:
    out: Set[str] = set()
    terms = term_or_terms if isinstance(term_or_terms, (tuple, list)) else (term_or_terms,)
    for term in terms:
        _term_variables(term, out)
    return out - safe


class _Collector:
    def __init__(self, rule: ast.Rule):
        self.rule = rule
        self.violations: List[SafetyViolation] = []
        self.flagged: Set[str] = set()

    def report(
        self,
        variables: Set[str],
        context: str,
        fatal: bool,
        location: Optional[ast.Location] = None,
    ) -> None:
        for name in sorted(variables):
            self.violations.append(
                SafetyViolation(
                    name,
                    context,
                    fatal,
                    location or self.rule.location,
                )
            )
            self.flagged.add(name)


def _check_condition(
    collector: _Collector,
    condition: Sequence[ast.Literal],
    safe: Set[str],
    context: str,
) -> Set[str]:
    """Check an element condition's own literals and return the local safe
    set (outer safe vars plus what the condition's positives bind)."""
    local = bindable_variables(
        [c for c in condition if c.sign == 0], initial=safe
    )
    for literal in condition:
        if literal.sign == 0 and not isinstance(literal.atom, ast.Comparison):
            continue
        if _is_binder(literal):
            unresolved = _uncovered(
                [literal.atom.lhs, literal.atom.rhs], local
            )
            collector.report(
                unresolved,
                f"assignment {literal} in {context}",
                fatal=False,
                location=literal.location,
            )
            continue
        kind = "negative literal" if literal.sign else "comparison"
        collector.report(
            _uncovered(
                [literal.atom.lhs, literal.atom.rhs]
                if isinstance(literal.atom, ast.Comparison)
                else literal.atom,
                local,
            ),
            f"{kind} {literal} in {context}",
            fatal=True,
            location=literal.location,
        )
    return local


def rule_safety_violations(rule: ast.Rule) -> List[SafetyViolation]:
    """All unsafe variable occurrences in ``rule`` (empty when safe)."""
    collector = _Collector(rule)
    body_literals = [b for b in rule.body if isinstance(b, ast.Literal)]
    positives = [b for b in body_literals if b.sign == 0]
    safe = bindable_variables(positives)

    # Body: negative literals, non-binder comparisons, unresolved binders.
    for literal in body_literals:
        atom = literal.atom
        if literal.sign == 0 and not isinstance(atom, ast.Comparison):
            continue
        if _is_binder(literal):
            unresolved = _uncovered([atom.lhs, atom.rhs], safe)
            collector.report(
                unresolved,
                f"assignment {literal}",
                fatal=False,
                location=literal.location,
            )
            continue
        if isinstance(atom, ast.Comparison):
            kind = "negated comparison" if literal.sign else "comparison"
            unsafe = _uncovered([atom.lhs, atom.rhs], safe)
        else:
            kind = "negative literal"
            unsafe = _uncovered(atom, safe)
        collector.report(
            unsafe, f"{kind} {literal}", fatal=True, location=literal.location
        )

    # Body aggregates: guards and elements.
    for item in rule.body:
        if not isinstance(item, ast.Aggregate):
            continue
        for guard in (item.left_guard, item.right_guard):
            if guard is not None:
                collector.report(
                    _uncovered(guard[1], safe),
                    f"guard of #{item.function} aggregate",
                    fatal=True,
                    location=item.location,
                )
        for element in item.elements:
            local = _check_condition(
                collector,
                element.condition,
                safe,
                f"#{item.function} element",
            )
            collector.report(
                _uncovered(list(element.terms), local),
                f"terms of #{item.function} element",
                fatal=True,
                location=item.location,
            )

    # Head.
    head = rule.head
    if isinstance(head, ast.FunctionTerm):
        collector.report(_uncovered(head, safe), f"head {head}", fatal=True)
    elif isinstance(head, ast.ChoiceHead):
        for bound in (head.lower, head.upper):
            if bound is not None:
                collector.report(
                    _uncovered(bound, safe), "choice bound", fatal=True
                )
        for element in head.elements:
            local = _check_condition(
                collector, element.condition, safe, "choice condition"
            )
            # An unbound element atom grounds to no instances (silently
            # empty choice) rather than raising — defect, not a crash.
            collector.report(
                _uncovered(element.atom, local),
                f"choice element {element.atom}",
                fatal=False,
            )
    elif isinstance(head, ast.TheoryAtom):
        collector.report(
            _uncovered(list(head.arguments), safe),
            f"arguments of &{head.name}",
            fatal=True,
        )
        if head.guard is not None:
            collector.report(
                _uncovered(head.guard[1], safe),
                f"guard of &{head.name}",
                fatal=True,
            )
        for element in head.elements:
            local = _check_condition(
                collector, element.condition, safe, f"&{head.name} element"
            )
            collector.report(
                _uncovered(list(element.terms), local),
                f"terms of &{head.name} element",
                fatal=True,
            )

    # Leftovers: variables confined to arithmetic/interval arguments of
    # positive atoms never get bound; the match silently fails instead.
    remaining: Set[str] = set()
    for literal in positives:
        if not isinstance(literal.atom, ast.Comparison):
            _term_variables(literal.atom, remaining)
    remaining -= safe
    remaining -= collector.flagged
    collector.report(
        remaining,
        "arithmetic argument of a positive literal",
        fatal=False,
    )
    return collector.violations


def fatal_violations(rule: ast.Rule) -> List[SafetyViolation]:
    """Violations the grounder would raise :class:`GroundingError` for."""
    return [v for v in rule_safety_violations(rule) if v.fatal]

"""Rule-based static linter for ASP(mT) programs.

Walks the parsed AST (:mod:`repro.asp.ast`) *before* grounding and emits
structured :class:`~repro.analysis.diagnostics.Diagnostic` findings.  The
checks, their stable rule ids and severities (documented in
``docs/LINT.md``):

======================  ========  ==================================================
rule id                 severity  finding
======================  ========  ==================================================
parse-error             error     the file does not parse
unsafe-variable         error     a variable the grounder cannot bind
unknown-theory-atom     error     ``&name`` not handled by any registered theory
malformed-theory-atom   error     ``&dom``/``&sum``/``&diff``/minimize grammar violation
recursive-aggregate     error     aggregate/condition over its own recursive component
undefined-predicate     warning   predicate used but never defined (typo suggestions)
arity-mismatch          warning   predicate used with an arity it is never defined at
dead-rule               warning   positive body literal that can never be derived
unused-predicate        warning   predicate defined but never used or shown
grounding-blowup        warning   estimated join size exceeds the threshold
type-conflict           warning   argument position used with incompatible types
empty-domain            warning   rule body meets to an empty abstract domain
comparison-out-of-range warning   builtin comparison is statically false
unstratified-negation   info      negative cycle in the predicate dependency graph
nontight-cycle          info      positive recursion (non-tight program)
constraint-vacuous      info      integrity constraint whose body never holds
duplicate-rule          info      rule repeats an earlier rule up to renaming
======================  ========  ==================================================

The ``type-conflict``/``empty-domain``/``comparison-out-of-range``/
``constraint-vacuous`` rules and the sharpened ``grounding-blowup``
estimate are driven by the abstract domain analysis
(:mod:`repro.analysis.domains`, see ``docs/DOMAINS.md``).

Severities encode the contract with runtime: *error* findings crash (or
are silently dropped by) the grounder/theory, *warnings* are very likely
defects that still ground, *infos* are structural observations.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.analysis import safety
from repro.analysis.domains import DomainAnalysis, analyze_rules, canonical_rule
from repro.analysis.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    SourceSpan,
    filter_suppressed,
)
from repro.asp import ast
from repro.asp.grounder import Grounder, evaluate_term
from repro.asp.parser import ParseError, parse_program
from repro.asp.syntax import Number

__all__ = ["LintConfig", "Linter", "lint_text", "lint_files", "RULES"]

Signature = Tuple[str, int]

#: rule id -> (severity, one-line description); the public registry.
RULES: Dict[str, Tuple[Severity, str]] = {
    "parse-error": (Severity.ERROR, "the file does not parse"),
    "unsafe-variable": (Severity.ERROR, "a variable the grounder cannot bind"),
    "unknown-theory-atom": (
        Severity.ERROR,
        "theory atom name no registered theory handles",
    ),
    "malformed-theory-atom": (
        Severity.ERROR,
        "theory atom violates the &dom/&sum/&diff/minimize grammar",
    ),
    "recursive-aggregate": (
        Severity.ERROR,
        "aggregate or condition ranges over its own recursive component",
    ),
    "undefined-predicate": (
        Severity.WARNING,
        "predicate is used but never defined",
    ),
    "arity-mismatch": (
        Severity.WARNING,
        "predicate is used with an arity it is never defined at",
    ),
    "dead-rule": (
        Severity.WARNING,
        "a positive body literal can never be derived",
    ),
    "unused-predicate": (
        Severity.WARNING,
        "predicate is defined but never used or shown",
    ),
    "grounding-blowup": (
        Severity.WARNING,
        "estimated join size exceeds the configured threshold",
    ),
    "type-conflict": (
        Severity.WARNING,
        "argument position is used with incompatible abstract types",
    ),
    "empty-domain": (
        Severity.WARNING,
        "rule body meets to an empty abstract domain and can never fire",
    ),
    "comparison-out-of-range": (
        Severity.WARNING,
        "builtin comparison is statically false for all inferred values",
    ),
    "unstratified-negation": (
        Severity.INFO,
        "negation through a recursive component",
    ),
    "nontight-cycle": (Severity.INFO, "positive recursion (non-tight program)"),
    "constraint-vacuous": (
        Severity.INFO,
        "integrity constraint whose body can never hold",
    ),
    "duplicate-rule": (
        Severity.INFO,
        "rule is syntactically identical to an earlier rule up to renaming",
    ),
}

_THEORY_NAMES = ("dom", "sum", "diff")

#: Estimated instances for an interval whose bounds are not evaluable.
_UNKNOWN_INTERVAL = 8
_ESTIMATE_CAP = 1e12


@dataclass(frozen=True)
class LintConfig:
    """Tunables for a lint run."""

    #: Warn when a rule's estimated join size exceeds this many instances.
    blowup_threshold: float = 1_000_000.0
    #: Rule ids to skip entirely (in addition to source suppressions).
    disable: frozenset = frozenset()


# ---------------------------------------------------------------------------
# Occurrence collection
# ---------------------------------------------------------------------------


@dataclass
class _Occurrence:
    signature: Signature
    location: Optional[ast.Location]
    negative: bool
    #: True for aggregate elements and choice/theory conditions — contexts
    #: the grounder requires to be closed (fully grounded) beforehand.
    needs_closed: bool


@dataclass
class _RuleInfo:
    rule: ast.Rule
    heads: List[Signature] = field(default_factory=list)
    uses: List[_Occurrence] = field(default_factory=list)


def _signature(atom: ast.FunctionTerm) -> Signature:
    return (atom.name, len(atom.arguments))


def _collect(program: ast.Program) -> List[_RuleInfo]:
    infos: List[_RuleInfo] = []
    for rule in program.rules:
        info = _RuleInfo(rule)

        def use(literal: ast.Literal, needs_closed: bool) -> None:
            if isinstance(literal.atom, ast.FunctionTerm):
                info.uses.append(
                    _Occurrence(
                        _signature(literal.atom),
                        literal.location or rule.location,
                        literal.sign != 0,
                        needs_closed,
                    )
                )

        for item in rule.body:
            if isinstance(item, ast.Literal):
                use(item, needs_closed=False)
            else:
                for element in item.elements:
                    for condition in element.condition:
                        use(condition, needs_closed=True)
        head = rule.head
        if isinstance(head, ast.FunctionTerm):
            info.heads.append(_signature(head))
        elif isinstance(head, ast.ChoiceHead):
            for element in head.elements:
                info.heads.append(_signature(element.atom))
                for condition in element.condition:
                    use(condition, needs_closed=True)
        elif isinstance(head, ast.TheoryAtom):
            for element in head.elements:
                for condition in element.condition:
                    use(condition, needs_closed=True)
        infos.append(info)
    return infos


# ---------------------------------------------------------------------------
# Linter
# ---------------------------------------------------------------------------


class Linter:
    """Run all checks over a program or source text."""

    def __init__(self, config: Optional[LintConfig] = None):
        self.config = config or LintConfig()

    # -- entry points ------------------------------------------------------

    def lint_text(self, text: str, filename: str = "<string>") -> LintReport:
        """Lint one source text; suppression comments are honoured."""
        started = perf_counter()
        report = LintReport(files=[filename])
        try:
            program = parse_program(text)
        except ParseError as error:
            report.diagnostics.append(
                Diagnostic(
                    "parse-error",
                    Severity.ERROR,
                    str(error),
                    SourceSpan(
                        filename,
                        error.line,
                        error.column,
                        end_column=error.column + max(len(error.token), 1),
                    ),
                )
            )
            report.seconds = perf_counter() - started
            return report
        diagnostics = self.lint_program(program, filename)
        report.diagnostics = filter_suppressed(diagnostics, text)
        report.suppressed = len(diagnostics) - len(report.diagnostics)
        report.sort()
        report.seconds = perf_counter() - started
        return report

    def lint_program(
        self, program: ast.Program, filename: str = "<program>"
    ) -> List[Diagnostic]:
        """All diagnostics for a parsed program (no suppression filtering)."""
        self._filename = filename
        # Lint what the grounder sees: #const-substituted rules.
        rules = [
            Grounder._substitute_constants(rule, program.constants)
            for rule in program.rules
        ]
        program = ast.Program(
            rules, dict(program.constants), program.shows, set(program.externals)
        )
        infos = _collect(program)
        analysis = self._analyze(program)
        out: List[Diagnostic] = []
        self._check_safety(infos, out)
        self._check_predicates(program, infos, out)
        self._check_cycles(program, infos, out)
        self._check_theory_atoms(program, infos, out)
        self._check_domains(program, infos, analysis, out)
        self._check_duplicates(infos, out)
        self._check_blowup(infos, analysis, out)
        if self.config.disable:
            out = [d for d in out if d.rule not in self.config.disable]
        out.sort(key=Diagnostic.sort_key)
        return out

    # -- helpers -----------------------------------------------------------

    def _span(
        self, location: Optional[ast.Location], width: Optional[int] = None
    ) -> Optional[SourceSpan]:
        if location is None:
            return None
        end = location.column + width if width else None
        return SourceSpan(self._filename, location.line, location.column, end_column=end)

    def _emit(
        self,
        out: List[Diagnostic],
        rule_id: str,
        message: str,
        location: Optional[ast.Location],
        width: Optional[int] = None,
    ) -> None:
        severity = RULES[rule_id][0]
        out.append(Diagnostic(rule_id, severity, message, self._span(location, width)))

    # -- checks ------------------------------------------------------------

    def _check_safety(
        self, infos: Sequence[_RuleInfo], out: List[Diagnostic]
    ) -> None:
        for info in infos:
            seen: Set[str] = set()
            for violation in safety.rule_safety_violations(info.rule):
                if violation.variable in seen:
                    continue  # one finding per variable per rule
                seen.add(violation.variable)
                name = safety.display_name(violation.variable)
                self._emit(
                    out,
                    "unsafe-variable",
                    f"variable {name!r} is unsafe in {violation.context} "
                    f"of rule `{info.rule}`",
                    violation.location,
                )

    def _check_predicates(
        self,
        program: ast.Program,
        infos: Sequence[_RuleInfo],
        out: List[Diagnostic],
    ) -> None:
        defined: Dict[Signature, Optional[ast.Location]] = {}
        for info in infos:
            for sig in info.heads:
                defined.setdefault(sig, info.rule.location)
        derivable = set(defined) | set(program.externals)
        arities: Dict[str, Set[int]] = {}
        for name, arity in derivable:
            arities.setdefault(name, set()).add(arity)

        used: Set[Signature] = set()
        reported: Set[Signature] = set()
        for info in infos:
            for occ in info.uses:
                used.add(occ.signature)
                if occ.signature in derivable or occ.signature in reported:
                    continue
                reported.add(occ.signature)
                name, arity = occ.signature
                if name in arities:
                    others = ", ".join(
                        f"{name}/{a}" for a in sorted(arities[name])
                    )
                    self._emit(
                        out,
                        "arity-mismatch",
                        f"{name}/{arity} is used but only {others} "
                        f"is defined",
                        occ.location,
                        width=len(name),
                    )
                else:
                    message = f"{name}/{arity} is used but never defined"
                    close = difflib.get_close_matches(
                        name, sorted(arities), n=1, cutoff=0.6
                    )
                    if close:
                        message += f"; did you mean {close[0]!r}?"
                    self._emit(
                        out,
                        "undefined-predicate",
                        message,
                        occ.location,
                        width=len(name),
                    )

        # Dead rules: a positive plain body literal that is never derivable.
        for info in infos:
            for item in info.rule.body:
                if (
                    isinstance(item, ast.Literal)
                    and item.sign == 0
                    and isinstance(item.atom, ast.FunctionTerm)
                    and _signature(item.atom) not in derivable
                ):
                    name, arity = _signature(item.atom)
                    self._emit(
                        out,
                        "dead-rule",
                        f"rule `{info.rule}` can never fire: positive body "
                        f"literal {item.atom} is never derivable",
                        info.rule.location,
                    )
                    break

        # Unused predicates: only meaningful under an explicit projection —
        # without #show every atom is output, so "unused" has no witness.
        if program.shows is None:
            return
        for sig, location in sorted(defined.items()):
            name, arity = sig
            if (
                sig in used
                or sig in program.shows
                or sig in program.externals
                or name.startswith("__")
            ):
                continue
            self._emit(
                out,
                "unused-predicate",
                f"{name}/{arity} is defined but never used in a body, "
                f"condition, or #show",
                location,
                width=len(name),
            )

    def _check_cycles(
        self,
        program: ast.Program,
        infos: Sequence[_RuleInfo],
        out: List[Diagnostic],
    ) -> None:
        graph = nx.DiGraph()
        negative_edges: Dict[Tuple[Signature, Signature], Optional[ast.Location]] = {}
        positive_edges: Dict[Tuple[Signature, Signature], Optional[ast.Location]] = {}
        for info in infos:
            for head in info.heads:
                graph.add_node(head)
                for occ in info.uses:
                    graph.add_edge(head, occ.signature)
                    bucket = negative_edges if occ.negative else positive_edges
                    bucket.setdefault((head, occ.signature), occ.location)
        component_of: Dict[Signature, int] = {}
        components: List[Set[Signature]] = []
        for component in nx.strongly_connected_components(graph):
            index = len(components)
            components.append(component)
            for sig in component:
                component_of[sig] = index
        self._component_of = component_of

        for component in components:
            internal_neg = [
                (edge, loc)
                for edge, loc in negative_edges.items()
                if edge[0] in component and edge[1] in component
            ]
            internal_pos = [
                (edge, loc)
                for edge, loc in positive_edges.items()
                if edge[0] in component and edge[1] in component
            ]
            if len(component) == 1 and not internal_neg and not internal_pos:
                continue  # trivial SCC without a self-loop
            names = ", ".join(
                f"{name}/{arity}" for name, arity in sorted(component)
            )
            if internal_neg:
                (edge, location) = min(
                    internal_neg, key=lambda item: str(item[0])
                )
                self._emit(
                    out,
                    "unstratified-negation",
                    f"negation inside the recursive component {{{names}}} "
                    f"({edge[0][0]}/{edge[0][1]} -> not {edge[1][0]}/{edge[1][1]}); "
                    f"stable-model semantics applies, answer sets may be "
                    f"non-unique or absent",
                    location,
                )
            elif internal_pos:
                (edge, location) = min(
                    internal_pos, key=lambda item: str(item[0])
                )
                self._emit(
                    out,
                    "nontight-cycle",
                    f"positive recursion through {{{names}}}; the program is "
                    f"not tight (handled by the unfounded-set check)",
                    location,
                )

        # Aggregates/conditions over a signature in the same recursive
        # component as the rule's own head: the grounder rejects these.
        for info in infos:
            head_components = {
                component_of.get(head) for head in info.heads
            } - {None}
            if not head_components:
                continue
            for occ in info.uses:
                if not occ.needs_closed:
                    continue
                if component_of.get(occ.signature) in head_components:
                    name, arity = occ.signature
                    self._emit(
                        out,
                        "recursive-aggregate",
                        f"{name}/{arity} is used in an aggregate or element "
                        f"condition but is recursive with the rule head; the "
                        f"grounder cannot stratify this",
                        occ.location,
                        width=len(name),
                    )

    # -- theory atoms ------------------------------------------------------

    def _check_theory_atoms(
        self,
        program: ast.Program,
        infos: Sequence[_RuleInfo],
        out: List[Diagnostic],
    ) -> None:
        for info in infos:
            head = info.rule.head
            if not isinstance(head, ast.TheoryAtom):
                continue
            location = info.rule.location
            name = head.name
            if name == "__minimize":
                self._check_minimize(head, location, out)
                continue
            if name not in _THEORY_NAMES:
                message = (
                    f"&{name} is not handled by any registered theory "
                    f"(it would be silently ignored)"
                )
                close = difflib.get_close_matches(
                    name, _THEORY_NAMES + ("minimize",), n=1, cutoff=0.5
                )
                if close == ["minimize"]:
                    message += "; did you mean '#minimize'?"
                elif close:
                    message += f"; did you mean '&{close[0]}'?"
                self._emit(out, "unknown-theory-atom", message, location)
                continue
            if name == "dom":
                self._check_dom(head, location, out)
            else:
                self._check_sum(head, location, out)

    def _check_dom(
        self,
        atom: ast.TheoryAtom,
        location: Optional[ast.Location],
        out: List[Diagnostic],
    ) -> None:
        def bad(reason: str) -> None:
            self._emit(
                out,
                "malformed-theory-atom",
                f"&dom: {reason} in `{atom}`",
                location,
            )

        if atom.guard is None or atom.guard[0] != "=":
            bad("requires a '= variable' guard")
        elif not isinstance(atom.guard[1], (ast.FunctionTerm, ast.Variable)):
            bad("guard must name an integer variable")
        if len(atom.elements) != 1:
            bad("takes exactly one lo..hi element")
            return
        element = atom.elements[0]
        if element.condition:
            bad("elements cannot be conditional")
        if len(element.terms) != 1 or not isinstance(
            element.terms[0], ast.IntervalTerm
        ):
            bad("element must be a lo..hi interval")

    def _check_sum(
        self,
        atom: ast.TheoryAtom,
        location: Optional[ast.Location],
        out: List[Diagnostic],
    ) -> None:
        def bad(reason: str) -> None:
            self._emit(
                out,
                "malformed-theory-atom",
                f"&{atom.name}: {reason} in `{atom}`",
                location,
            )

        if atom.guard is None:
            bad("requires a guard (e.g. '<= bound')")
        for element in atom.elements:
            if not element.condition or not element.terms:
                continue
            # Conditional elements must have a *numeric* weight term — the
            # theory rejects conditional variable terms at init time.
            weight_vars: Set[str] = set()
            _collect_theory_functions(element.terms[0], weight_vars)
            if weight_vars:
                names = ", ".join(sorted(weight_vars))
                bad(f"conditional variable terms ({names}) are not supported")

    def _check_minimize(
        self,
        atom: ast.TheoryAtom,
        location: Optional[ast.Location],
        out: List[Diagnostic],
    ) -> None:
        for element in atom.elements:
            if not element.terms:
                continue
            weight = element.terms[0]
            if not safety.term_variables(weight) and _ground_non_number(weight):
                self._emit(
                    out,
                    "malformed-theory-atom",
                    f"minimize weight {weight} is not an integer",
                    location,
                )

    # -- abstract-domain checks --------------------------------------------

    @staticmethod
    def _analyze(program: ast.Program) -> Optional[DomainAnalysis]:
        """Run the abstract domain analysis; ``None`` if it fails (the
        dependent checks then degrade gracefully)."""
        try:
            return analyze_rules(program.rules, externals=program.externals)
        except Exception:
            return None

    def _check_domains(
        self,
        program: ast.Program,
        infos: Sequence[_RuleInfo],
        analysis: Optional[DomainAnalysis],
        out: List[Diagnostic],
    ) -> None:
        """Emit ``type-conflict``/``empty-domain``/
        ``comparison-out-of-range``/``constraint-vacuous`` from the
        analyzer's dead-rule verdicts."""
        if analysis is None:
            return
        derivable = {sig for info in infos for sig in info.heads}
        derivable |= set(program.externals)
        for index, dead in sorted(analysis.dead.items()):
            info = infos[index]
            rule = info.rule
            if dead.cause == "empty" and any(
                not occ.negative and occ.signature not in derivable
                for occ in info.uses
            ):
                # Already covered by undefined-predicate / dead-rule.
                continue
            location = dead.location or rule.location
            if rule.head is None:
                self._emit(
                    out,
                    "constraint-vacuous",
                    f"constraint `{rule}` is vacuous: {dead.detail}",
                    location,
                )
            elif dead.cause == "comparison":
                self._emit(
                    out,
                    "comparison-out-of-range",
                    f"rule `{rule}` can never fire: {dead.detail}",
                    location,
                )
            elif dead.cause == "type":
                self._emit(
                    out,
                    "type-conflict",
                    f"rule `{rule}` can never fire: {dead.detail}",
                    location,
                )
            else:
                self._emit(
                    out,
                    "empty-domain",
                    f"rule `{rule}` can never fire: {dead.detail}",
                    location,
                )

    def _check_duplicates(
        self, infos: Sequence[_RuleInfo], out: List[Diagnostic]
    ) -> None:
        """Flag rules that are syntactically identical to an earlier
        rule after canonical variable renaming."""
        seen: Dict[str, ast.Rule] = {}
        for info in infos:
            key = str(canonical_rule(info.rule))
            first = seen.get(key)
            if first is None:
                seen[key] = info.rule
                continue
            where = ""
            if first.location is not None:
                where = f" (line {first.location.line})"
            self._emit(
                out,
                "duplicate-rule",
                f"rule `{info.rule}` duplicates an earlier rule{where} "
                f"up to variable renaming",
                info.rule.location,
            )

    # -- grounding-blowup estimation ---------------------------------------

    def _check_blowup(
        self,
        infos: Sequence[_RuleInfo],
        analysis: Optional[DomainAnalysis],
        out: List[Diagnostic],
    ) -> None:
        estimates = _signature_estimates(infos)
        threshold = self.config.blowup_threshold
        dead = set(analysis.dead) if analysis is not None else set()
        for index, info in enumerate(infos):
            if index in dead:
                continue  # provably never fires — no join to fear
            size = _rule_join_estimate(info.rule, estimates)
            if size > threshold and analysis is not None:
                # The domain-aware estimate is an upper bound too; take
                # the tighter of the two before warning.
                refined = analysis.rule_estimate(info.rule)
                if refined is not None:
                    size = min(size, refined)
            if size > threshold:
                self._emit(
                    out,
                    "grounding-blowup",
                    f"estimated join size ~{size:.1e} instances exceeds the "
                    f"threshold ({threshold:.0e}); consider reordering or "
                    f"adding selective body literals",
                    info.rule.location,
                )


def _collect_theory_functions(term: ast.Term, out: Set[str]) -> None:
    """Function terms inside a theory weight — integer variables at ground
    time (ASP variables become numbers, so they are skipped)."""
    if isinstance(term, ast.FunctionTerm):
        out.add(str(term))
    elif isinstance(term, (ast.BinaryTerm,)):
        _collect_theory_functions(term.lhs, out)
        _collect_theory_functions(term.rhs, out)
    elif isinstance(term, ast.UnaryTerm):
        _collect_theory_functions(term.argument, out)


def _ground_non_number(term: ast.Term) -> bool:
    value = evaluate_term(term, {})
    return not isinstance(value, Number)


# ---------------------------------------------------------------------------
# Join-size estimation
# ---------------------------------------------------------------------------


def _term_instances(term: ast.Term) -> float:
    """How many ground instances a (fact) term expands to."""
    if isinstance(term, ast.IntervalTerm):
        lower = evaluate_term(term.lower, {})
        upper = evaluate_term(term.upper, {})
        if isinstance(lower, Number) and isinstance(upper, Number):
            return float(max(upper.value - lower.value + 1, 0))
        return float(_UNKNOWN_INTERVAL)
    if isinstance(term, ast.PoolTerm):
        return float(sum(_term_instances(option) for option in term.options))
    if isinstance(term, ast.FunctionTerm):
        size = 1.0
        for argument in term.arguments:
            size *= _term_instances(argument)
        return size
    return 1.0


def _signature_estimates(infos: Sequence[_RuleInfo]) -> Dict[Signature, float]:
    """Per-signature instance estimates: exact for facts, greedy-join
    derived for rule heads, stabilized over a few passes."""
    estimates: Dict[Signature, float] = {}
    facts: Dict[Signature, float] = {}
    for info in infos:
        rule = info.rule
        if rule.body or not isinstance(rule.head, ast.FunctionTerm):
            continue
        sig = _signature(rule.head)
        facts[sig] = facts.get(sig, 0.0) + _term_instances(rule.head)
    estimates.update(facts)
    for _ in range(3):
        fresh: Dict[Signature, float] = dict(facts)
        for info in infos:
            rule = info.rule
            if not rule.body and isinstance(rule.head, ast.FunctionTerm):
                continue
            head = rule.head
            if isinstance(head, ast.FunctionTerm):
                join = _join_estimate(_positives(rule.body), estimates)
                contribution = join * _head_multiplier(head)
                sig = _signature(head)
                fresh[sig] = min(
                    fresh.get(sig, 0.0) + contribution, _ESTIMATE_CAP
                )
            elif isinstance(head, ast.ChoiceHead):
                body = _positives(rule.body)
                for element in head.elements:
                    join = _join_estimate(
                        body + _positives(element.condition), estimates
                    )
                    sig = _signature(element.atom)
                    fresh[sig] = min(fresh.get(sig, 0.0) + join, _ESTIMATE_CAP)
        for sig, value in fresh.items():
            estimates[sig] = max(estimates.get(sig, 0.0), value)
    return estimates


def _positives(items: Iterable[ast.BodyItem]) -> List[ast.Literal]:
    return [
        item
        for item in items
        if isinstance(item, ast.Literal) and item.sign == 0
    ]


def _head_multiplier(head: ast.FunctionTerm) -> float:
    """Interval/pool expansion of ground head arguments (``p(1..n, X)``)."""
    size = 1.0
    for argument in head.arguments:
        if not safety.term_variables(argument):
            size *= _term_instances(argument)
    return size


def _join_estimate(
    positives: Sequence[ast.Literal], estimates: Dict[Signature, float]
) -> float:
    """Greedy estimate of the join size over the positive body.

    Literals are consumed most-bound-first; a literal over signature ``s``
    with ``k`` of ``n`` variables still unbound contributes
    ``count(s) ** (k/n)`` — the classic independence discount for shared
    join variables.  Binder equalities contribute their value side's
    expansion.  An underivable signature makes the whole join empty.
    """
    bound: Set[str] = set()
    remaining: List[ast.Literal] = list(positives)
    total = 1.0
    while remaining:
        best_index = 0
        best_new = None
        for index, literal in enumerate(remaining):
            new = len(safety.term_variables(_literal_term(literal)) - bound)
            if best_new is None or new < best_new:
                best_index, best_new = index, new
        literal = remaining.pop(best_index)
        variables = safety.term_variables(_literal_term(literal))
        new = variables - bound
        if isinstance(literal.atom, ast.Comparison):
            if new:
                # Binder: the value side's expansion (e.g. X = 1..n).
                for side in (literal.atom.lhs, literal.atom.rhs):
                    if not isinstance(side, ast.Variable):
                        total *= max(_term_instances(side), 1.0)
        else:
            count = estimates.get(_signature(literal.atom), 0.0)
            if count <= 0.0:
                return 0.0
            if new:
                total *= max(count ** (len(new) / max(len(variables), 1)), 1.0)
        bound |= variables
        total = min(total, _ESTIMATE_CAP)
    return total


def _literal_term(literal: ast.Literal):
    if isinstance(literal.atom, ast.Comparison):
        return ast.FunctionTerm("", (literal.atom.lhs, literal.atom.rhs))
    return literal.atom


def _rule_join_estimate(
    rule: ast.Rule, estimates: Dict[Signature, float]
) -> float:
    """The largest join the grounder would enumerate for ``rule``."""
    size = _join_estimate(_positives(rule.body), estimates)
    conditions: List[Sequence[ast.Literal]] = []
    head = rule.head
    if isinstance(head, ast.ChoiceHead):
        conditions.extend(element.condition for element in head.elements)
    elif isinstance(head, ast.TheoryAtom):
        conditions.extend(element.condition for element in head.elements)
    for item in rule.body:
        if isinstance(item, ast.Aggregate):
            conditions.extend(element.condition for element in item.elements)
    best = size
    for condition in conditions:
        extended = _join_estimate(
            _positives(rule.body) + _positives(condition), estimates
        )
        best = max(best, extended)
    return best


# ---------------------------------------------------------------------------
# Module-level conveniences
# ---------------------------------------------------------------------------


def lint_text(
    text: str,
    filename: str = "<string>",
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint one program text; returns a sorted, suppression-filtered report."""
    return Linter(config).lint_text(text, filename)


def lint_files(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> LintReport:
    """Lint several files into one aggregated report."""
    linter = Linter(config)
    report = LintReport()
    started = perf_counter()
    for path in paths:
        with open(path) as handle:
            text = handle.read()
        part = linter.lint_text(text, filename=path)
        report.diagnostics.extend(part.diagnostics)
        report.files.append(path)
    report.sort()
    report.seconds = perf_counter() - started
    return report

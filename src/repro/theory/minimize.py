"""Single-objective minimization of a theory variable.

The DATE 2017 predecessor paper optimizes one linear objective (e.g. the
makespan) with ASPmT branch and bound; this module packages that loop:

.. code-block:: python

    ctl = Control()
    linear = LinearPropagator()
    ctl.add(program)
    ctl.register_propagator(linear)
    optimum, model = minimize_theory_variable(ctl, linear, Function("makespan"))

The bound is enforced by an :class:`repro.dse.explorer.
ObjectiveBoundPropagator` (registered automatically, so call this
*before* ``ctl.ground()`` has been invoked); pruning clauses carry an
activation literal and the optimality proof runs under that assumption,
leaving the control usable afterwards.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.asp.control import Control, Model
from repro.asp.syntax import Symbol
from repro.synthesis.encoding import ObjectiveSpec
from repro.theory.linear import LinearPropagator

__all__ = ["minimize_theory_variable"]


def minimize_theory_variable(
    control: Control,
    linear: LinearPropagator,
    variable: Symbol,
    conflict_limit: Optional[int] = None,
) -> Tuple[Optional[int], Optional[Model]]:
    """Minimize the theory variable ``variable`` by branch and bound.

    Must be called on a control that has *not* been grounded yet (the
    bound propagator needs to register).  Returns ``(optimum, model)``,
    or ``(None, None)`` when the program is unsatisfiable (or the budget
    ran out before the first model).
    """
    from repro.dse.explorer import ObjectiveBoundPropagator

    spec = ObjectiveSpec(str(variable), "var", variable=variable)
    bound = ObjectiveBoundPropagator((spec,), linear)
    control.register_propagator(bound)
    control.ground()
    control.conflict_limit = conflict_limit

    solver = control.solver
    activation = solver.new_var()
    bound.activation = activation

    incumbent: Optional[int] = None
    best_model: Optional[Model] = None

    def on_model(model: Model) -> bool:
        nonlocal incumbent, best_model
        incumbent = model.theory["objectives"][str(variable)]
        best_model = model
        return False  # one model per descent step

    while True:
        summary = control.solve(
            on_model=on_model,
            models=1,
            block=False,
            assumption_literals=[activation],
        )
        if summary.interrupted:
            break
        if not summary.satisfiable:
            break
        assert incumbent is not None
        bound.bounds[str(variable)] = incumbent - 1
    if incumbent is None:
        return None, None
    return incumbent, best_model

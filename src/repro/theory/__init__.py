"""Background theories for ASP modulo Theories (ASPmT).

The paper extends the Boolean synthesis encoding with linear constraints
over integers evaluated on *partial* assignments (DATE 2017); this
subpackage provides that machinery:

* :mod:`repro.theory.domain` -- backtrackable integer interval stores with
  per-bound explanations (sets of solver literals),
* :mod:`repro.theory.linear` -- the main theory propagator: reified linear
  constraints ``sum a_i*x_i + sum w_j*[l_j] <= b`` with bounds propagation
  and clause-learning explanations; understands ``&sum``, ``&diff`` and
  ``&dom`` theory atoms,
* :mod:`repro.theory.difference` -- a specialized difference-logic
  propagator (potential functions, incremental negative-cycle detection)
  stacked on top for early scheduling conflicts (ablation: Fig. 3/4
  benchmarks),
* :mod:`repro.theory.objective` -- objective-function abstractions used by
  the multi-objective DSE: pseudo-Boolean sums and theory-variable
  objectives, both reporting lower bounds with explanations on partial
  assignments.
"""

from repro.theory.difference import DifferenceLogicPropagator
from repro.theory.domain import IntervalStore
from repro.theory.linear import LinearConstraint, LinearPropagator
from repro.theory.minimize import minimize_theory_variable
from repro.theory.objective import (
    IntVarObjective,
    Objective,
    PseudoBooleanObjective,
)

__all__ = [
    "DifferenceLogicPropagator",
    "IntervalStore",
    "IntVarObjective",
    "LinearConstraint",
    "LinearPropagator",
    "Objective",
    "PseudoBooleanObjective",
    "minimize_theory_variable",
]

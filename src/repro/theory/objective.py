"""Objective functions over partial assignments.

The exact multi-objective DSE needs, for every objective, two operations:

* ``lower_bound(solver)`` — a sound lower bound of the objective value
  for *any* completion of the current partial assignment, together with
  an *explanation* (solver literals responsible for the bound).  The
  dominance propagator compares the lower-bound vector against the Pareto
  archive and turns the explanations into pruning clauses.
* ``value(solver)`` — the exact value on a total assignment.

Two implementations cover the synthesis objectives:

* :class:`PseudoBooleanObjective` — ``offset + sum w_i * [l_i]`` with
  non-negative weights (energy, area/cost): the bound is the sum over
  already-true literals and is exact on total assignments.
* :class:`IntVarObjective` — the lower bound of a theory variable
  maintained by the :class:`repro.theory.linear.LinearPropagator`
  (latency/makespan): bounds propagation supplies both the bound and its
  explanation, and on total assignments the lower bound is a witness
  value (the earliest schedule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Protocol, Sequence, Tuple

from repro.asp.solver import Solver
from repro.asp.syntax import Symbol
from repro.theory.linear import LinearPropagator

__all__ = ["Objective", "PseudoBooleanObjective", "IntVarObjective"]


class Objective(Protocol):
    """What the DSE needs from an objective function."""

    name: str

    def lower_bound(self, solver: Solver) -> Tuple[int, Tuple[int, ...]]:
        """(bound, explanation literals) under the current assignment."""

    def value(self, solver: Solver) -> int:
        """Exact value on a total assignment."""

    def watch_literals(self) -> Sequence[int]:
        """Literals whose assignment can raise the lower bound."""


@dataclass
class PseudoBooleanObjective:
    """``offset + sum(weight * [literal])`` with non-negative weights."""

    name: str
    terms: Tuple[Tuple[int, int], ...]  # (weight, literal)
    offset: int = 0

    def __post_init__(self) -> None:
        for weight, _lit in self.terms:
            if weight < 0:
                raise ValueError(
                    f"objective {self.name!r} has a negative weight; "
                    f"fold it into the offset and negate the literal"
                )

    def lower_bound(self, solver: Solver) -> Tuple[int, Tuple[int, ...]]:
        bound = self.offset
        explanation: List[int] = []
        values = solver._values  # hot loop: avoid per-literal method calls
        for weight, lit in self.terms:
            signed = values[lit] if lit > 0 else -values[-lit]
            if weight and signed > 0:
                bound += weight
                explanation.append(lit)
        return bound, tuple(explanation)

    def value(self, solver: Solver) -> int:
        bound, _explanation = self.lower_bound(solver)
        return bound

    def watch_literals(self) -> Sequence[int]:
        return [lit for weight, lit in self.terms if weight]


@dataclass
class IntVarObjective:
    """The lower bound of a linear-theory variable (e.g. the makespan)."""

    name: str
    propagator: LinearPropagator
    variable: Symbol

    def lower_bound(self, solver: Solver) -> Tuple[int, Tuple[int, ...]]:
        return self.propagator.lower_bound(self.variable)

    def value(self, solver: Solver) -> int:
        bound, _explanation = self.propagator.lower_bound(self.variable)
        return bound

    def watch_literals(self) -> Sequence[int]:
        # Bounds move only through theory propagation, which is triggered
        # by the linear propagator's own watches; the dominance propagator
        # re-reads the bound on every propagation fixpoint instead.
        return []

"""Linear-constraint theory propagator (the ASPmT background theory).

Interprets three theory-atom families produced by the encodings:

* ``&dom { lo..hi } = x`` — declares the interval of integer variable
  ``x`` (enforced when the atom is derived),
* ``&sum { t1 ; t2 ; ... } op bound`` — a linear constraint over integer
  variables and *reified Boolean terms*: an element with a condition
  contributes its (constant) weight when the condition holds,
* ``&diff { u - v } op bound`` — the difference-logic special case (same
  machinery; the dedicated propagator in
  :mod:`repro.theory.difference` can be stacked on top for earlier
  conflict detection).

Semantics mirror clingo-dl/clingcon usage: a theory atom *derived* by the
program enforces its constraint; an underived atom enforces nothing.

Propagation is bounds consistency with explanations: every bound update
records the solver literals that justify it, so conflicts and Boolean
propagations become ordinary learned clauses — the "partial assignment
evaluation" of the DATE 2017 paper this work builds on.

Completeness: the encodings keep every constraint *difference-like* —
at most two variable terms with coefficients +1/-1 (plus arbitrary
Boolean terms).  For such systems, bounds propagation over the finite
``&dom`` intervals is refutation-complete once the Boolean assignment is
total (setting every variable to its lower bound is then a witness), so
the solver's models are exactly the theory-consistent answer sets.  The
restriction is checked at ``init`` time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.asp.grounder import GroundTheoryAtom, TheoryTermOp
from repro.asp.propagator import PropagatorInit, TheoryPropagator
from repro.asp.solver import Solver
from repro.asp.syntax import Function, Number, Symbol
from repro.theory.domain import INT_MAX, INT_MIN, IntervalStore

__all__ = ["LinearConstraint", "LinearPropagator", "TheoryError", "linearize"]


class TheoryError(Exception):
    """Raised when a theory atom cannot be interpreted."""


@dataclass(frozen=True)
class LinearConstraint:
    """``condition -> sum(coef*var) + sum(weight*[lit]) <= bound``."""

    condition: int
    var_terms: Tuple[Tuple[int, int], ...]  # (coefficient, store var id)
    bool_terms: Tuple[Tuple[int, int], ...]  # (weight, solver literal)
    bound: int

    def __str__(self) -> str:
        parts = [f"{c}*x{v}" for c, v in self.var_terms]
        parts += [f"{w}*[{l}]" for w, l in self.bool_terms]
        return f"[{self.condition}] {' + '.join(parts) or '0'} <= {self.bound}"


def linearize(term: object) -> Tuple[int, List[Tuple[int, Symbol]]]:
    """Decompose a ground theory term into ``(constant, [(coef, var)])``.

    Variables are arbitrary function symbols (``start(t1)``); arithmetic
    is limited to ``+``, ``-``, and multiplication by constants.
    """
    if isinstance(term, Number):
        return term.value, []
    if isinstance(term, Function):
        return 0, [(1, term)]
    if isinstance(term, TheoryTermOp):
        if term.op == "+":
            const_l, vars_l = linearize(term.arguments[0])
            const_r, vars_r = linearize(term.arguments[1])
            return const_l + const_r, vars_l + vars_r
        if term.op == "-":
            if len(term.arguments) == 1:
                const, variables = linearize(term.arguments[0])
                return -const, [(-c, v) for c, v in variables]
            const_l, vars_l = linearize(term.arguments[0])
            const_r, vars_r = linearize(term.arguments[1])
            return const_l - const_r, vars_l + [(-c, v) for c, v in vars_r]
        if term.op == "*":
            const_l, vars_l = linearize(term.arguments[0])
            const_r, vars_r = linearize(term.arguments[1])
            if vars_l and vars_r:
                raise TheoryError(f"non-linear theory term {term}")
            if vars_l:
                return const_l * const_r, [(c * const_r, v) for c, v in vars_l]
            return const_l * const_r, [(c * const_l, v) for c, v in vars_r]
    raise TheoryError(f"cannot linearize theory term {term}")


class LinearPropagator(TheoryPropagator):
    """Bounds-propagating linear constraints with explanations."""

    def __init__(self, default_lb: int = 0, default_ub: int = INT_MAX):
        self.store = IntervalStore()
        self._default_bounds = (default_lb, default_ub)
        self._constraints: List[LinearConstraint] = []
        self._by_var: Dict[int, List[int]] = {}
        self._by_lit: Dict[int, List[int]] = {}
        self._solver: Optional[Solver] = None
        #: Statistics: bound updates / conflicts / propagated literals.
        self.bound_updates = 0
        self.theory_conflicts = 0
        self.theory_propagations = 0

    # ------------------------------------------------------------------
    # Initialization: interpret theory atoms
    # ------------------------------------------------------------------

    def init(self, init: PropagatorInit) -> None:
        self._solver = init.solver
        watched: Set[int] = set()
        for atom, lit in init.theory_atoms:
            if atom.name == "dom":
                self._init_dom(atom, lit)
            elif atom.name in ("sum", "diff"):
                self._init_sum(atom, lit, init)
            else:
                continue  # other theories (e.g. the dominance propagator)
        for index, constraint in enumerate(self._constraints):
            for _coef, var in constraint.var_terms:
                self._by_var.setdefault(var, []).append(index)
            watched.add(constraint.condition)
            self._by_lit.setdefault(constraint.condition, []).append(index)
            for weight, lit in constraint.bool_terms:
                trigger = lit if weight > 0 else -lit
                watched.add(trigger)
                self._by_lit.setdefault(trigger, []).append(index)
        for lit in sorted(watched):
            init.add_watch(lit, self)

    def var_id(self, name: Symbol) -> int:
        """Store id of variable ``name`` (creating it with default bounds)."""
        var = self.store.var(name)
        if var is None:
            var = self.store.add_var(name, *self._default_bounds)
        return var

    def _init_dom(self, atom: GroundTheoryAtom, lit: int) -> None:
        if atom.guard is None or atom.guard[0] != "=":
            raise TheoryError(f"&dom requires '= variable' guard: {atom}")
        name = atom.guard[1]
        if not isinstance(name, Function):
            raise TheoryError(f"&dom guard must name a variable: {atom}")
        if len(atom.elements) != 1:
            raise TheoryError(f"&dom takes exactly one lo..hi element: {atom}")
        (terms, condition), = atom.elements
        if condition:
            raise TheoryError(f"&dom elements cannot be conditional: {atom}")
        interval = terms[0]
        if not (isinstance(interval, TheoryTermOp) and interval.op == ".."):
            raise TheoryError(f"&dom element must be lo..hi: {atom}")
        lo, hi = interval.arguments
        if not isinstance(lo, Number) or not isinstance(hi, Number):
            raise TheoryError(f"&dom bounds must be integers: {atom}")
        var = self.var_id(name)
        # x <= hi  and  -x <= -lo, both conditioned on the atom.
        self._constraints.append(LinearConstraint(lit, ((1, var),), (), hi.value))
        self._constraints.append(LinearConstraint(lit, ((-1, var),), (), -lo.value))

    def _init_sum(
        self, atom: GroundTheoryAtom, lit: int, init: PropagatorInit
    ) -> None:
        const = 0
        var_terms: List[Tuple[int, int]] = []
        bool_terms: List[Tuple[int, int]] = []
        for terms, condition in atom.elements:
            value, variables = linearize(terms[0])
            if condition:
                if variables:
                    raise TheoryError(
                        f"conditional variable terms are not supported: {atom}"
                    )
                cond_lit = self._condition_literal(condition, init)
                if cond_lit is None:
                    continue  # condition is false forever
                if cond_lit is True:  # condition is a fact
                    const += value
                else:
                    bool_terms.append((value, cond_lit))
            else:
                const += value
                for coef, name in variables:
                    var_terms.append((coef, self.var_id(name)))
        if atom.guard is None:
            raise TheoryError(f"&{atom.name} requires a guard: {atom}")
        op, guard_value = atom.guard
        if isinstance(guard_value, Number):
            bound = guard_value.value
        elif isinstance(guard_value, Function):
            # "expr op variable": move the variable to the left-hand side.
            var_terms.append((-1, self.var_id(guard_value)))
            bound = 0
        else:
            raise TheoryError(f"unsupported guard value in {atom}")
        bound -= const

        def emit(vterms, bterms, b):
            constraint = LinearConstraint(lit, tuple(vterms), tuple(bterms), b)
            self._check_difference_like(constraint, atom)
            self._constraints.append(constraint)

        negated_vars = [(-c, v) for c, v in var_terms]
        negated_bools = [(-w, l) for w, l in bool_terms]
        if op == "<=":
            emit(var_terms, bool_terms, bound)
        elif op == "<":
            emit(var_terms, bool_terms, bound - 1)
        elif op == ">=":
            emit(negated_vars, negated_bools, -bound)
        elif op == ">":
            emit(negated_vars, negated_bools, -bound - 1)
        elif op == "=":
            emit(var_terms, bool_terms, bound)
            emit(negated_vars, negated_bools, -bound)
        elif op == "!=":
            # Disjunctive split: (expr <= bound-1) or (expr >= bound+1),
            # chosen by two fresh literals tied to the theory atom.
            below = init.solver.new_var()
            above = init.solver.new_var()
            init.add_clause([-lit, below, above])
            self._constraints.append(
                LinearConstraint(below, tuple(var_terms), tuple(bool_terms), bound - 1)
            )
            self._constraints.append(
                LinearConstraint(
                    above, tuple(negated_vars), tuple(negated_bools), -bound - 1
                )
            )
            for constraint in self._constraints[-2:]:
                self._check_difference_like(constraint, atom)
        else:
            raise TheoryError(f"unsupported guard operator {op!r} in {atom}")

    @staticmethod
    def _check_difference_like(
        constraint: LinearConstraint, atom: GroundTheoryAtom
    ) -> None:
        coefs = sorted(c for c, _v in constraint.var_terms)
        ok = (
            coefs in ([], [1], [-1], [-1, 1])
        )
        if not ok:
            raise TheoryError(
                f"constraint from {atom} is not difference-like "
                f"(coefficients {coefs}); bounds propagation would be "
                f"incomplete — rewrite the encoding"
            )

    def _condition_literal(self, condition, init: PropagatorInit):
        """Solver literal for an element condition.

        Returns ``True`` for conditions that hold unconditionally, ``None``
        for impossible ones, a literal otherwise (an auxiliary conjunction
        variable when the condition has several literals).
        """
        lits = []
        for sign, atom in condition:
            lit = init.solver_literal(atom)
            lit = -lit if sign else lit
            if lit == init.true_lit:
                continue
            if lit == -init.true_lit:
                return None
            lits.append(lit)
        if not lits:
            return True
        if len(lits) == 1:
            return lits[0]
        aux = init.solver.new_var()
        for lit in lits:
            init.add_clause([-aux, lit])
        init.add_clause([aux] + [-lit for lit in lits])
        return aux

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def propagate(self, solver: Solver, changes: Sequence[int]) -> bool:
        # Fast path: nothing to do when no changed literal is watched by a
        # constraint — bail out before allocating the queue/set pair (this
        # runs on every boolean propagation fixpoint).
        by_lit = self._by_lit
        indices: List[int] = []
        for lit in changes:
            bucket = by_lit.get(lit)
            if bucket:
                indices.extend(bucket)
        if not indices:
            return True
        if len(indices) > 1:
            indices = list(dict.fromkeys(indices))
        return self._fixpoint(solver, deque(indices), set(indices))

    def check(self, solver: Solver) -> bool:
        queue = deque(range(len(self._constraints)))
        return self._fixpoint(solver, queue, set(queue))

    def undo(self, solver: Solver, level: int) -> None:
        self.store.undo(level)

    #: Safety cap on constraint re-evaluations per fixpoint: a positive
    #: cycle over unbounded (&dom-less) variables would otherwise loop
    #: for ~2^40 iterations instead of failing fast.
    MAX_FIXPOINT_STEPS = 200_000

    def _fixpoint(self, solver: Solver, queue: deque, queued: Set[int]) -> bool:
        steps = 0
        while queue:
            steps += 1
            if steps > self.MAX_FIXPOINT_STEPS:
                raise RuntimeError(
                    "linear propagation did not converge; declare &dom "
                    "intervals for all theory variables"
                )
            index = queue.popleft()
            queued.discard(index)
            constraint = self._constraints[index]
            if solver.value(constraint.condition) is not True:
                continue
            changed_vars = self._propagate_constraint(solver, constraint)
            if changed_vars is None:
                self.theory_conflicts += 1
                return False
            for var in changed_vars:
                for other in self._by_var.get(var, ()):
                    if other not in queued:
                        queued.add(other)
                        queue.append(other)
        return True

    def _propagate_constraint(
        self, solver: Solver, constraint: LinearConstraint
    ) -> Optional[List[int]]:
        """Propagate one active constraint; None signals a conflict."""
        store = self.store
        level = solver.decision_level
        min_sum = 0
        base_expl: List[int] = [constraint.condition]
        for coef, var in constraint.var_terms:
            if coef > 0:
                min_sum += coef * store.lb(var)
                base_expl.extend(store.lb_reason(var))
            else:
                min_sum += coef * store.ub(var)
                base_expl.extend(store.ub_reason(var))
        unassigned_bools: List[Tuple[int, int]] = []
        values = solver._values  # hot loop: avoid per-literal method calls
        for weight, lit in constraint.bool_terms:
            signed = values[lit] if lit > 0 else -values[-lit]
            if weight > 0:
                if signed > 0:
                    min_sum += weight
                    base_expl.append(lit)
                elif signed == 0:
                    unassigned_bools.append((weight, lit))
            else:
                if signed < 0:
                    base_expl.append(-lit)
                else:
                    min_sum += weight
                    if signed == 0:
                        unassigned_bools.append((weight, lit))
        slack = constraint.bound - min_sum
        if slack < 0:
            solver.add_propagator_clause(
                [-lit for lit in dict.fromkeys(base_expl)]
            )
            return None

        changed: List[int] = []
        # Tighten variable bounds.
        for coef, var in constraint.var_terms:
            if coef > 0:
                new_ub = store.lb(var) + slack // coef
                if new_ub < store.ub(var):
                    self.bound_updates += 1
                    store.set_ub(var, new_ub, tuple(dict.fromkeys(base_expl)), level)
                    changed.append(var)
                    if store.is_empty(var):
                        expl = list(store.lb_reason(var)) + list(store.ub_reason(var))
                        solver.add_propagator_clause(
                            [-lit for lit in dict.fromkeys(expl)]
                        )
                        return None
            else:
                new_lb = store.ub(var) - slack // (-coef)
                if new_lb > store.lb(var):
                    self.bound_updates += 1
                    store.set_lb(var, new_lb, tuple(dict.fromkeys(base_expl)), level)
                    changed.append(var)
                    if store.is_empty(var):
                        expl = list(store.lb_reason(var)) + list(store.ub_reason(var))
                        solver.add_propagator_clause(
                            [-lit for lit in dict.fromkeys(expl)]
                        )
                        return None
        # Force Boolean terms that would overflow the slack.
        for weight, lit in unassigned_bools:
            if weight > 0 and weight > slack:
                self.theory_propagations += 1
                ok = solver.add_propagator_clause(
                    [-l for l in dict.fromkeys(base_expl)] + [-lit]
                )
                if not ok:
                    return None
            elif weight < 0 and slack + weight < 0:
                # Falsifying `lit` would drop the (negative) weight from the
                # sum and overflow the bound, so `lit` must hold.
                self.theory_propagations += 1
                ok = solver.add_propagator_clause(
                    [-l for l in dict.fromkeys(base_expl)] + [lit]
                )
                if not ok:
                    return None
        return changed

    # ------------------------------------------------------------------
    # Introspection / models
    # ------------------------------------------------------------------

    def bounds(self, name: Symbol) -> Tuple[int, int]:
        var = self.store.var(name)
        if var is None:
            raise KeyError(f"unknown theory variable {name}")
        return self.store.lb(var), self.store.ub(var)

    def lower_bound(self, name: Symbol) -> Tuple[int, Tuple[int, ...]]:
        """Lower bound with its explanation (for objectives/dominance)."""
        var = self.store.var(name)
        if var is None:
            raise KeyError(f"unknown theory variable {name}")
        return self.store.lb(var), self.store.lb_reason(var)

    def model_values(self, solver: Solver) -> Dict[str, object]:
        """On a total assignment, each variable's lower bound is a witness."""
        assignment = {
            self.store.name(v): self.store.lb(v) for v in self.store
        }
        return {"ints": assignment}

"""Specialized difference-logic propagator.

Handles ``&diff { u - v } op c`` atoms with the potential-function
algorithm of Cotton & Maler (the one clingo-dl uses): the propagator
maintains an integer *potential* per node that satisfies every active
edge; activating an edge whose constraint the potentials violate triggers
an incremental relabeling pass, and a relabeling that wraps around to the
new edge's head proves a negative cycle — the edge literals along the
cycle form the conflict clause.

The generic :class:`repro.theory.linear.LinearPropagator` also covers
difference constraints (by bounds propagation), but detects cyclic
infeasibility only by walking bounds across the whole ``&dom`` interval.
Stacking this propagator on top detects those conflicts in one graph
pass with a *minimal* explanation — this is the "specialized vs. generic
scheduling theory" ablation of the benchmarks (Fig. 3/4 companions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.asp.grounder import GroundTheoryAtom, TheoryTermOp
from repro.asp.propagator import PropagatorInit, TheoryPropagator
from repro.asp.solver import Solver
from repro.asp.syntax import Function, Number, Symbol

__all__ = ["DifferenceLogicPropagator", "DifferenceEdge"]


@dataclass(frozen=True)
class DifferenceEdge:
    """Constraint ``x - y <= weight``, active while ``literal`` is true."""

    x: int
    y: int
    weight: int
    literal: int


class DifferenceLogicPropagator(TheoryPropagator):
    """Incremental negative-cycle detection over ``&diff`` constraints."""

    #: Name of the virtual node representing the constant 0.
    ZERO = Function("__dl_zero")

    def __init__(self) -> None:
        self._names: List[Symbol] = []
        self._ids: Dict[Symbol, int] = {}
        self._edges: List[DifferenceEdge] = []
        self._by_literal: Dict[int, List[int]] = {}
        #: Active edge indices, in activation order (with level marks).
        self._active: List[int] = []
        self._active_set: Set[int] = set()
        self._level_marks: List[Tuple[int, int, int]] = []  # (level, n_active, n_pi)
        self._pi: List[int] = []
        self._pi_trail: List[Tuple[int, int]] = []  # (node, old value)
        #: Outgoing active edges per node: node -> list of edge indices.
        self._out: Dict[int, List[int]] = {}
        self.conflicts = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _node(self, name: Symbol) -> int:
        node = self._ids.get(name)
        if node is None:
            node = len(self._names)
            self._ids[name] = node
            self._names.append(name)
            self._pi.append(0)
        return node

    def init(self, init: PropagatorInit) -> None:
        self._node(self.ZERO)
        for atom, lit in init.theory_atoms:
            if atom.name != "diff":
                continue
            self._init_diff(atom, lit)
        for lit in self._by_literal:
            init.add_watch(lit, self)

    def _init_diff(self, atom: GroundTheoryAtom, lit: int) -> None:
        if len(atom.elements) != 1 or atom.guard is None:
            raise ValueError(f"&diff needs one element and a guard: {atom}")
        (terms, condition), = atom.elements
        if condition:
            raise ValueError(f"&diff elements cannot be conditional: {atom}")
        x, y = self._split_difference(terms[0])
        op, guard_value = atom.guard
        if not isinstance(guard_value, Number):
            raise ValueError(f"&diff guard must be an integer: {atom}")
        c = guard_value.value
        # x - y op c, normalized to <= edges.
        if op in ("<=", "<"):
            self._add_edge(x, y, c if op == "<=" else c - 1, lit)
        elif op in (">=", ">"):
            self._add_edge(y, x, -c if op == ">=" else -c - 1, lit)
        elif op == "=":
            self._add_edge(x, y, c, lit)
            self._add_edge(y, x, -c, lit)
        else:
            raise ValueError(f"unsupported &diff operator {op!r}")

    def _split_difference(self, term: object) -> Tuple[int, int]:
        """Decompose ``u - v`` (or a bare ``u``) into node ids."""
        if isinstance(term, Function):
            return self._node(term), self._node(self.ZERO)
        if isinstance(term, TheoryTermOp) and term.op == "-" and len(term.arguments) == 2:
            u, v = term.arguments
            return self._to_node(u), self._to_node(v)
        raise ValueError(f"&diff element must be 'u - v': {term}")

    def _to_node(self, term: object) -> int:
        if isinstance(term, Function):
            return self._node(term)
        if isinstance(term, Number) and term.value == 0:
            return self._node(self.ZERO)
        raise ValueError(f"&diff operands must be variables or 0: {term}")

    def _add_edge(self, x: int, y: int, weight: int, lit: int) -> None:
        index = len(self._edges)
        self._edges.append(DifferenceEdge(x, y, weight, lit))
        self._by_literal.setdefault(lit, []).append(index)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def propagate(self, solver: Solver, changes: Sequence[int]) -> bool:
        level = solver.decision_level
        if not self._level_marks or self._level_marks[-1][0] < level:
            self._level_marks.append((level, len(self._active), len(self._pi_trail)))
        for lit in changes:
            for index in self._by_literal.get(lit, ()):
                if index in self._active_set:
                    continue
                if not self._activate(solver, index):
                    return False
        return True

    def undo(self, solver: Solver, level: int) -> None:
        while self._level_marks and self._level_marks[-1][0] > level:
            _lvl, n_active, n_pi = self._level_marks.pop()
            while len(self._active) > n_active:
                index = self._active.pop()
                self._active_set.discard(index)
                edge = self._edges[index]
                self._out[edge.y].remove(index)
            while len(self._pi_trail) > n_pi:
                node, old = self._pi_trail.pop()
                self._pi[node] = old

    def check(self, solver: Solver) -> bool:
        # Propagation is eager and exact for difference logic; nothing to do.
        return True

    def _set_pi(self, node: int, value: int, level: int) -> None:
        if level > 0:
            self._pi_trail.append((node, self._pi[node]))
        self._pi[node] = value

    def _activate(self, solver: Solver, index: int) -> bool:
        """Activate one edge, repairing potentials (Cotton–Maler)."""
        edge = self._edges[index]
        self._active.append(index)
        self._active_set.add(index)
        self._out.setdefault(edge.y, []).append(index)
        pi = self._pi
        if pi[edge.x] - pi[edge.y] <= edge.weight:
            return True
        level = solver.decision_level
        # Lower pi[x] to satisfy the new edge, then relax forward along
        # active edges out of updated nodes.  Reaching y again with a
        # pending decrease certifies a negative cycle.
        parent: Dict[int, int] = {edge.x: index}
        self._set_pi(edge.x, pi[edge.y] + edge.weight, level)
        queue = [edge.x]
        while queue:
            node = queue.pop()
            for out_index in self._out.get(node, ()):
                out_edge = self._edges[out_index]
                # out_edge: x' - node <= w, i.e. pi[x'] <= pi[node] + w.
                target = out_edge.x
                new_value = pi[node] + out_edge.weight
                if pi[target] - new_value > 0:
                    if target == edge.y:
                        # Negative cycle: follow parents back from `node`.
                        cycle = [out_index]
                        current = node
                        while current != edge.y:
                            cycle.append(parent[current])
                            current = self._edges[parent[current]].y
                        clause = [
                            -self._edges[i].literal for i in dict.fromkeys(cycle)
                        ]
                        self.conflicts += 1
                        solver.add_propagator_clause(clause)
                        return False
                    parent[target] = out_index
                    self._set_pi(target, new_value, level)
                    queue.append(target)
        return True

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------

    def assignment(self) -> Dict[Symbol, int]:
        """A feasible assignment (normalized so the zero node maps to 0)."""
        zero = self._ids[self.ZERO]
        base = self._pi[zero]
        return {
            name: self._pi[node] - base
            for name, node in self._ids.items()
            if name != self.ZERO
        }

    def model_values(self, solver: Solver) -> Dict[str, object]:
        return {"dl": self.assignment()}

"""Backtrackable integer interval store.

Each theory variable carries an interval ``[lb, ub]`` plus, per bound, an
*explanation*: the set of solver literals whose truth justified the bound.
Explanations make the theory's deductions clause-learnable: when a
propagation or conflict depends on a bound, the negated explanation
literals appear in the clause handed to the CDCL core (the same scheme
clingo-dl uses — no order literals are ever introduced).

Updates are trailed with their decision level; :meth:`IntervalStore.undo`
pops everything above a target level.  Level-0 updates are permanent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.asp.syntax import Symbol

__all__ = ["IntervalStore", "INT_MIN", "INT_MAX"]

#: Pseudo-infinities for variables without an explicit ``&dom``.
INT_MIN = -(1 << 40)
INT_MAX = 1 << 40


@dataclass
class _Entry:
    """Trail record: previous bound state of one variable side."""

    level: int
    var: int
    is_lower: bool
    old_bound: int
    old_reason: Tuple[int, ...]


class IntervalStore:
    """Integer variables with trailed interval bounds and explanations."""

    def __init__(self) -> None:
        self._names: List[Symbol] = []
        self._ids: Dict[Symbol, int] = {}
        self._lb: List[int] = []
        self._ub: List[int] = []
        self._lb_reason: List[Tuple[int, ...]] = []
        self._ub_reason: List[Tuple[int, ...]] = []
        self._trail: List[_Entry] = []
        #: Monotone counter bumped on every bound change (including undo);
        #: equal revisions guarantee identical bounds, so readers that
        #: derive values from the store can cache per revision.
        self.revision = 0

    # -- variables --------------------------------------------------------------

    def add_var(self, name: Symbol, lb: int = INT_MIN, ub: int = INT_MAX) -> int:
        """Create (or look up) the variable called ``name``."""
        existing = self._ids.get(name)
        if existing is not None:
            return existing
        var = len(self._names)
        self._names.append(name)
        self._ids[name] = var
        self._lb.append(lb)
        self._ub.append(ub)
        self._lb_reason.append(())
        self._ub_reason.append(())
        return var

    def var(self, name: Symbol) -> Optional[int]:
        return self._ids.get(name)

    def name(self, var: int) -> Symbol:
        return self._names[var]

    @property
    def num_vars(self) -> int:
        return len(self._names)

    def __iter__(self):
        return iter(range(len(self._names)))

    # -- bounds -----------------------------------------------------------------

    def lb(self, var: int) -> int:
        return self._lb[var]

    def ub(self, var: int) -> int:
        return self._ub[var]

    def lb_reason(self, var: int) -> Tuple[int, ...]:
        """Solver literals justifying the current lower bound."""
        return self._lb_reason[var]

    def ub_reason(self, var: int) -> Tuple[int, ...]:
        return self._ub_reason[var]

    def is_empty(self, var: int) -> bool:
        return self._lb[var] > self._ub[var]

    def set_lb(
        self, var: int, value: int, reason: Sequence[int], level: int
    ) -> bool:
        """Raise the lower bound; returns True when the bound changed.

        The caller is responsible for noticing emptiness (``is_empty``)
        and turning ``lb_reason + ub_reason`` into a conflict clause.
        """
        if value <= self._lb[var]:
            return False
        if level > 0:
            self._trail.append(
                _Entry(level, var, True, self._lb[var], self._lb_reason[var])
            )
        self._lb[var] = value
        self._lb_reason[var] = tuple(reason)
        self.revision += 1
        return True

    def set_ub(
        self, var: int, value: int, reason: Sequence[int], level: int
    ) -> bool:
        """Lower the upper bound; returns True when the bound changed."""
        if value >= self._ub[var]:
            return False
        if level > 0:
            self._trail.append(
                _Entry(level, var, False, self._ub[var], self._ub_reason[var])
            )
        self._ub[var] = value
        self._ub_reason[var] = tuple(reason)
        self.revision += 1
        return True

    # -- backtracking -----------------------------------------------------------

    def undo(self, level: int) -> None:
        """Restore all bounds recorded above ``level``."""
        while self._trail and self._trail[-1].level > level:
            entry = self._trail.pop()
            self.revision += 1
            if entry.is_lower:
                self._lb[entry.var] = entry.old_bound
                self._lb_reason[entry.var] = entry.old_reason
            else:
                self._ub[entry.var] = entry.old_bound
                self._ub_reason[entry.var] = entry.old_reason

    # -- introspection ----------------------------------------------------------

    def snapshot(self) -> Dict[Symbol, Tuple[int, int]]:
        """Current bounds keyed by variable name (for models/tests)."""
        return {
            self._names[v]: (self._lb[v], self._ub[v])
            for v in range(len(self._names))
        }

"""Curated realistic instances (E3S-style application domains).

The embedded-synthesis literature evaluates on domain benchmarks in the
style of the E3S suite (EEMBC-derived task graphs: consumer, telecom,
automotive, networking, office).  The numbers here are original but
follow the same structure: a handful of pipeline-plus-branch task
graphs per domain, heterogeneous processors with domain-typical
strengths, and bus or mesh interconnects.

Use :func:`curated_instances` for the full set or :func:`curated` for a
single one by name.
"""

from __future__ import annotations

from typing import Dict, List

from repro.synthesis.model import (
    Application,
    Architecture,
    Link,
    MappingOption,
    Message,
    Resource,
    Specification,
    Task,
)
from repro.workloads.generator import NamedInstance, WorkloadConfig

__all__ = ["curated", "curated_instances", "CURATED_NAMES"]

CURATED_NAMES = (
    "consumer_jpeg",
    "telecom_modem",
    "auto_engine",
    "network_firewall",
    "mesh_symmetric",
)


def _bus_platform(pes: List[Resource], delay: int = 1, energy: int = 1):
    hub = Resource("bus", cost=2)
    links = []
    for pe in pes:
        links.append(Link(f"l_{pe.name}_tx", pe.name, "bus", delay=delay, energy=energy))
        links.append(Link(f"l_{pe.name}_rx", "bus", pe.name, delay=delay, energy=energy))
    return Architecture(tuple(pes) + (hub,), tuple(links))


def _mappings(table: Dict[str, Dict[str, tuple]]) -> tuple:
    options = []
    for task, per_pe in table.items():
        for pe, (wcet, energy) in per_pe.items():
            options.append(MappingOption(task, pe, wcet=wcet, energy=energy))
    return tuple(options)


def _consumer_jpeg() -> Specification:
    """JPEG encoder: RGB->YCbCr, DCT, quantize, RLE, Huffman, out.

    Platform: a RISC core, a DSP (great at DCT/quant), and a small
    microcontroller, on a shared bus.
    """
    stages = ["rgb2ycc", "dct", "quant", "rle", "huffman", "out"]
    application = Application(
        tasks=tuple(Task(s) for s in stages),
        messages=tuple(
            Message(f"j{i}", a, b, size=2 if i < 3 else 1)
            for i, (a, b) in enumerate(zip(stages, stages[1:]))
        ),
    )
    pes = [
        Resource("risc", cost=40),
        Resource("dsp", cost=55),
        Resource("mcu", cost=12),
    ]
    table = {
        "rgb2ycc": {"risc": (3, 5), "dsp": (3, 6), "mcu": (7, 3)},
        "dct": {"risc": (9, 14), "dsp": (3, 7), "mcu": (22, 12)},
        "quant": {"risc": (4, 6), "dsp": (2, 4), "mcu": (9, 5)},
        "rle": {"risc": (2, 3), "mcu": (5, 2)},
        "huffman": {"risc": (4, 6), "mcu": (10, 5)},
        "out": {"risc": (1, 2), "mcu": (2, 1)},
    }
    return Specification(application, _bus_platform(pes), _mappings(table))


def _telecom_modem() -> Specification:
    """Modem receive path with a parallel monitoring branch.

    Platform: two DSPs and a RISC on a bus; the FFT/equalizer stages are
    DSP-bound, the framing/monitoring stages general-purpose.
    """
    application = Application(
        tasks=tuple(
            Task(s)
            for s in ["frontend", "fft", "equalize", "demap", "deframe", "monitor"]
        ),
        messages=(
            Message("m0", "frontend", "fft", size=3),
            Message("m1", "fft", "equalize", size=3),
            Message("m2", "equalize", "demap", size=2),
            Message("m3", "demap", "deframe", size=1),
            # The equalizer's statistics feed a monitoring task too.
            Message("m4", "equalize", "monitor", size=1),
        ),
    )
    pes = [
        Resource("dsp_a", cost=50),
        Resource("dsp_b", cost=50),
        Resource("risc", cost=35),
    ]
    table = {
        "frontend": {"dsp_a": (2, 4), "dsp_b": (2, 4), "risc": (4, 5)},
        "fft": {"dsp_a": (4, 8), "dsp_b": (4, 8), "risc": (13, 16)},
        "equalize": {"dsp_a": (5, 9), "dsp_b": (5, 9), "risc": (11, 13)},
        "demap": {"dsp_a": (2, 4), "dsp_b": (2, 4), "risc": (3, 4)},
        "deframe": {"risc": (2, 3), "dsp_a": (4, 7)},
        "monitor": {"risc": (3, 3)},
    }
    return Specification(application, _bus_platform(pes), _mappings(table))


def _auto_engine() -> Specification:
    """Engine control: sensor fusion fans out to ignition/injection/diag.

    Platform: lockstep safety core (expensive, mandatory-capable),
    a standard core, and a cheap I/O controller on a bus.
    """
    application = Application(
        tasks=tuple(
            Task(s)
            for s in ["sample", "fuse", "ignite", "inject", "diag", "actuate"]
        ),
        messages=(
            Message("a0", "sample", "fuse", size=2),
            Message("a1", "fuse", "ignite", size=1),
            Message("a2", "fuse", "inject", size=1),
            Message("a3", "fuse", "diag", size=1),
            Message("a4", "ignite", "actuate", size=1),
            Message("a5", "inject", "actuate", size=1),
        ),
    )
    pes = [
        Resource("lockstep", cost=70),
        Resource("core", cost=30),
        Resource("ioctrl", cost=10),
    ]
    table = {
        # The lockstep core is also the fastest: paying its cost buys
        # latency, which is exactly the trade-off the front exposes.
        "sample": {"ioctrl": (2, 1), "core": (1, 2)},
        "fuse": {"lockstep": (2, 6), "core": (4, 4)},
        "ignite": {"lockstep": (1, 4), "core": (3, 3)},
        "inject": {"lockstep": (1, 4), "core": (3, 3)},
        "diag": {"core": (4, 4), "ioctrl": (9, 3)},
        "actuate": {"ioctrl": (1, 1), "lockstep": (1, 2)},
    }
    return Specification(application, _bus_platform(pes), _mappings(table))


def _network_firewall() -> Specification:
    """Packet-processing pipeline: rx through crypto/QoS to tx.

    Platform: two symmetric NPUs, a general-purpose RISC core, and a
    crypto accelerator on a bus.  Ten stages with many two-way and
    three-way mapping choices make this the largest curated design space
    — the stress instance for the parallel explorer.
    """
    stages = [
        "rx", "parse", "classify", "nat", "lookup",
        "acl", "crypto", "qos", "shape", "tx",
    ]
    application = Application(
        tasks=tuple(Task(s) for s in stages),
        messages=tuple(
            Message(f"n{i}", a, b, size=2 if i in (0, 1, 6) else 1)
            for i, (a, b) in enumerate(zip(stages, stages[1:]))
        ),
    )
    pes = [
        Resource("npu_a", cost=60),
        Resource("npu_b", cost=60),
        Resource("risc", cost=30),
        Resource("cryptoacc", cost=45),
    ]
    table = {
        "rx":       {"npu_a": (1, 2), "npu_b": (1, 2), "risc": (2, 2)},
        "parse":    {"npu_a": (2, 4), "npu_b": (2, 4), "risc": (5, 5)},
        "classify": {"npu_a": (3, 6), "npu_b": (3, 6), "risc": (7, 8)},
        "nat":      {"npu_a": (2, 4), "npu_b": (2, 4), "risc": (4, 4)},
        "lookup":   {"npu_a": (2, 5), "npu_b": (2, 5), "risc": (6, 6)},
        "acl":      {"npu_a": (2, 4), "risc": (4, 5)},
        "crypto":   {"cryptoacc": (2, 3), "npu_a": (8, 14), "risc": (15, 18)},
        "qos":      {"npu_b": (2, 4), "risc": (4, 4)},
        "shape":    {"npu_b": (2, 3), "risc": (3, 3)},
        "tx":       {"npu_a": (1, 2), "npu_b": (1, 2), "risc": (2, 2)},
    }
    return Specification(application, _bus_platform(pes), _mappings(table))


def _mesh_symmetric() -> Specification:
    """Sensor chain on a 3x3 mesh of *identical* tiles.

    The canonical symmetry showcase: every tile has the same cost and
    the same per-task WCET/energy, and the mesh links are uniform, so
    the platform's automorphism group is the full D4 of the grid (order
    8) with orbits {corners, edge midpoints, center}.  Without symmetry
    breaking the solver re-proves every placement once per grid
    symmetry; the deadlines (``sense`` by 3, ``emit`` end-to-end by 10)
    make distributed placements route-sensitive, so the unbroken search
    does real work that lex-leader constraints then cut by roughly 4x in
    conflicts and 5x in feasible models; see
    ``benchmarks/bench_symmetry.py`` and ``docs/SYMMETRY.md``.
    """
    application = Application(
        tasks=(
            Task("sense", deadline=3),
            Task("proc"),
            Task("emit", deadline=10),
        ),
        messages=(
            Message("s0", "sense", "proc", size=1),
            Message("s1", "proc", "emit", size=1),
        ),
    )
    pes = [Resource(f"tile{x}{y}", cost=6) for y in range(3) for x in range(3)]
    links: List[Link] = []

    def name(x: int, y: int) -> str:
        return f"tile{x}{y}"

    for y in range(3):
        for x in range(3):
            for dx, dy in ((1, 0), (0, 1)):
                nx, ny = x + dx, y + dy
                if nx < 3 and ny < 3:
                    links.append(
                        Link(f"m{x}{y}_{nx}{ny}", name(x, y), name(nx, ny), delay=1, energy=1)
                    )
                    links.append(
                        Link(f"m{nx}{ny}_{x}{y}", name(nx, ny), name(x, y), delay=1, energy=1)
                    )
    table = {
        "sense": {pe.name: (2, 1) for pe in pes},
        "proc": {pe.name: (4, 3) for pe in pes},
        "emit": {pe.name: (2, 1) for pe in pes},
    }
    return Specification(
        application, Architecture(tuple(pes), tuple(links)), _mappings(table)
    )


_BUILDERS = {
    "consumer_jpeg": _consumer_jpeg,
    "telecom_modem": _telecom_modem,
    "auto_engine": _auto_engine,
    "network_firewall": _network_firewall,
    "mesh_symmetric": _mesh_symmetric,
}


def curated(name: str) -> Specification:
    """One curated instance by name (see :data:`CURATED_NAMES`)."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise KeyError(f"unknown curated instance {name!r}; have {CURATED_NAMES}")
    return builder()


def curated_instances() -> List[NamedInstance]:
    """All curated instances wrapped like generator suites."""
    out = []
    for name in CURATED_NAMES:
        spec = curated(name)
        if name == "mesh_symmetric":
            config = WorkloadConfig(
                tasks=len(spec.application.tasks),
                seed=0,
                platform="mesh",
                platform_size=(3, 3),
            )
        else:
            config = WorkloadConfig(
                tasks=len(spec.application.tasks),
                seed=0,
                platform="bus",
                platform_size=(len(spec.architecture.resources) - 1, 0),
            )
        out.append(NamedInstance(name, config, spec))
    return out

"""Seeded instance generator: applications, mappings, named suites."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.synthesis.model import (
    Application,
    Architecture,
    MappingOption,
    Message,
    Specification,
    Task,
)
from repro.synthesis.platforms import TILE_CLASSES, bus, mesh, ring

__all__ = [
    "WorkloadConfig",
    "NamedInstance",
    "generate_application",
    "generate_specification",
    "suite",
    "SUITES",
]

#: Tile classes indexed by their (unique) allocation cost, so the factors
#: can be recovered from an Architecture's resources.
_FACTORS_BY_COST: Dict[int, Tuple[int, int]] = {
    cost: (wcet_factor, energy_factor)
    for _name, cost, wcet_factor, energy_factor in TILE_CLASSES
}


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one synthetic instance."""

    tasks: int = 6
    seed: int = 0
    platform: str = "mesh"  # "mesh" | "bus" | "ring"
    platform_size: Tuple[int, int] = (2, 2)  # mesh: (cols, rows); others: (n, -)
    options_per_task: Tuple[int, int] = (2, 3)  # inclusive range
    message_probability: float = 0.5
    max_message_size: int = 3
    #: Probability that a tile repeats the first-drawn tile class (1.0 =
    #: identical PEs, the symmetry stress case; 0.0 keeps the historical
    #: random draws byte-for-byte).
    pe_homogeneity: float = 0.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject degenerate configurations with a clear error.

        Without this, a zero-task or zero-size config silently produces
        a specification the DSE cannot do anything meaningful with (and
        the fuzzer would flag as a finding).
        """
        if self.tasks < 1:
            raise ValueError(
                f"config needs at least one task, got tasks={self.tasks}"
            )
        if self.platform not in ("mesh", "bus", "ring"):
            raise ValueError(
                f"unknown platform {self.platform!r}; have mesh, bus, ring"
            )
        if self.platform == "mesh":
            cols, rows = self.platform_size
            if cols < 1 or rows < 1:
                raise ValueError(
                    f"mesh needs positive COLSxROWS, got {cols}x{rows}"
                )
        elif self.platform_size[0] < 1:
            raise ValueError(
                f"{self.platform} needs at least one processing element, "
                f"got {self.platform_size[0]}"
            )
        lo, hi = self.options_per_task
        if not 1 <= lo <= hi:
            raise ValueError(
                f"options_per_task must satisfy 1 <= lo <= hi, got ({lo}, {hi})"
            )
        if not 0.0 <= self.message_probability <= 1.0:
            raise ValueError(
                "message_probability must lie in [0, 1], got "
                f"{self.message_probability}"
            )
        if self.max_message_size < 1:
            raise ValueError(
                f"max_message_size must be positive, got {self.max_message_size}"
            )
        if not 0.0 <= self.pe_homogeneity <= 1.0:
            raise ValueError(
                f"pe_homogeneity must lie in [0, 1], got {self.pe_homogeneity}"
            )

    def name(self) -> str:
        if self.platform == "mesh":
            size = f"{self.platform_size[0]}x{self.platform_size[1]}"
        else:
            size = str(self.platform_size[0])
        return f"{self.platform}{size}_t{self.tasks}_s{self.seed}"


@dataclass(frozen=True)
class NamedInstance:
    """A generated instance plus its provenance."""

    name: str
    config: WorkloadConfig
    specification: Specification


def generate_application(
    tasks: int, seed: int, message_probability: float = 0.5, max_size: int = 3
) -> Application:
    """A layered (series-parallel-like) DAG with ``tasks`` tasks.

    Tasks are distributed over layers; every non-source task depends on
    at least one task of an earlier layer, with extra edges added with
    ``message_probability``.  Deterministic in ``seed``.
    """
    if tasks < 1:
        raise ValueError("need at least one task")
    rng = random.Random(f"app-{seed}")
    names = [f"t{i}" for i in range(tasks)]
    layer_count = max(1, min(tasks, max(2, (tasks + 2) // 3)))
    layers: List[List[str]] = [[] for _ in range(layer_count)]
    # One task per layer first, so every instance with >= 2 tasks has
    # genuine dependencies (and therefore routing/scheduling work).
    for index, name in enumerate(names[:layer_count]):
        layers[index].append(name)
    for name in names[layer_count:]:
        layers[rng.randrange(layer_count)].append(name)
    layers = [layer for layer in layers if layer]

    messages: List[Message] = []
    counter = 0

    def add_message(src: str, tgt: str) -> None:
        nonlocal counter
        messages.append(
            Message(f"m{counter}", src, tgt, size=rng.randint(1, max_size))
        )
        counter += 1

    for depth in range(1, len(layers)):
        earlier = [name for layer in layers[:depth] for name in layer]
        for name in layers[depth]:
            add_message(rng.choice(earlier), name)
            for candidate in earlier:
                existing = {(m.source, m.target) for m in messages}
                if (candidate, name) in existing:
                    continue
                if rng.random() < message_probability / len(earlier):
                    add_message(candidate, name)
    return Application(
        tuple(Task(name) for name in names), tuple(messages)
    )


def _build_platform(config: WorkloadConfig) -> Architecture:
    if config.platform == "mesh":
        cols, rows = config.platform_size
        return mesh(
            cols, rows, seed=config.seed, homogeneity=config.pe_homogeneity
        )
    if config.platform == "bus":
        return bus(
            config.platform_size[0],
            seed=config.seed,
            homogeneity=config.pe_homogeneity,
        )
    if config.platform == "ring":
        return ring(
            config.platform_size[0],
            seed=config.seed,
            homogeneity=config.pe_homogeneity,
        )
    raise ValueError(f"unknown platform {config.platform!r}")


def generate_specification(config: WorkloadConfig) -> Specification:
    """A full synthesis instance from ``config`` (deterministic).

    Raises :class:`ValueError` for degenerate configurations (zero
    tasks or resources, empty option ranges) instead of emitting a
    specification no explorer can use.
    """
    config.validate()
    application = generate_application(
        config.tasks,
        config.seed,
        config.message_probability,
        config.max_message_size,
    )
    architecture = _build_platform(config)
    rng = random.Random(f"map-{config.seed}")
    processing = [
        resource
        for resource in architecture.resources
        if resource.cost in _FACTORS_BY_COST
    ]
    if not processing:
        raise ValueError("platform has no processing elements")
    lo, hi = config.options_per_task
    mappings: List[MappingOption] = []
    for task in application.tasks:
        nominal_wcet = rng.randint(2, 6)
        nominal_energy = rng.randint(2, 6)
        count = min(len(processing), rng.randint(lo, hi))
        chosen = rng.sample(processing, count)
        for resource in chosen:
            wcet_factor, energy_factor = _FACTORS_BY_COST[resource.cost]
            mappings.append(
                MappingOption(
                    task.name,
                    resource.name,
                    wcet=max(1, nominal_wcet * wcet_factor // 100),
                    energy=max(1, nominal_energy * energy_factor // 100),
                )
            )
    return Specification(application, architecture, tuple(mappings))


#: The named suites of the reconstructed instance table (Table I).
SUITES: Dict[str, Tuple[WorkloadConfig, ...]] = {
    "tiny": tuple(
        WorkloadConfig(tasks=t, seed=s, platform="mesh", platform_size=(2, 2))
        for t, s in [(3, 0), (4, 1), (4, 2)]
    ),
    "small": tuple(
        WorkloadConfig(tasks=t, seed=s, platform="mesh", platform_size=(2, 2))
        for t, s in [(4, 0), (5, 1), (6, 2), (6, 3)]
    ),
    "medium": tuple(
        WorkloadConfig(tasks=t, seed=s, platform="mesh", platform_size=(3, 2))
        for t, s in [(8, 0), (9, 1), (10, 2), (12, 3)]
    ),
    "large": tuple(
        WorkloadConfig(tasks=t, seed=s, platform="mesh", platform_size=(3, 3))
        for t, s in [(14, 0), (16, 1), (18, 2), (20, 3)]
    ),
    "bus": tuple(
        WorkloadConfig(tasks=t, seed=s, platform="bus", platform_size=(4, 0))
        for t, s in [(5, 0), (7, 1)]
    ),
}


def suite(name: str) -> List[NamedInstance]:
    """Instantiate a named suite (deterministic)."""
    configs = SUITES.get(name)
    if configs is None:
        raise KeyError(f"unknown suite {name!r}; have {sorted(SUITES)}")
    return [
        NamedInstance(config.name(), config, generate_specification(config))
        for config in configs
    ]

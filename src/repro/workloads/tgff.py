"""TGFF-style benchmark import.

TGFF ("Task Graphs For Free", Dick/Rhodes/Wolf) is the de-facto standard
generator for embedded-systems benchmarks and the usual source of the
task graphs in this paper series.  This module parses the subset of the
TGFF output format that carries synthesis-relevant data and converts it
into a :class:`repro.synthesis.model.Specification`.

Supported dialect (matching TGFF's default output closely enough that
hand-written or simply post-processed files load directly)::

    @TASK_GRAPH 0 {
        PERIOD 300
        TASK t0_0  TYPE 2
        TASK t0_1  TYPE 3
        ARC a0_0   FROM t0_0 TO t0_1 TYPE 1
    }

    @PE 0 {
    # price
        70
    # type  exec_time  energy
        2   50  12
        3   60  9
    }

* every ``@TASK_GRAPH`` block contributes its tasks and arcs (several
  blocks are merged; task names must be globally unique, as TGFF emits),
* ``TASK ... TYPE k`` selects row ``k`` of the PE tables,
* ``ARC ... TYPE s`` sets the message size to ``s`` (minimum 1),
* each ``@PE`` block is one processing element: first bare number is the
  allocation price, following rows are ``type exec_time [energy]``
  (energy defaults to the exec time: slower implies more energy),
* a task is mappable on a PE iff the PE's table has a row for its type.

The platform interconnect is not part of TGFF; :func:`to_specification`
places the PEs on a bus, ring or mesh.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.synthesis.model import (
    Application,
    Architecture,
    Link,
    MappingOption,
    Message,
    Specification,
    Task,
)

__all__ = ["TgffError", "TgffModel", "TgffPe", "parse_tgff", "to_specification"]


class TgffError(ValueError):
    """Raised on malformed TGFF input."""


@dataclass
class TgffPe:
    """One processing element: allocation price + per-type execution table."""

    name: str
    price: int
    #: type id -> (exec_time, energy)
    table: Dict[int, Tuple[int, int]] = field(default_factory=dict)


@dataclass
class TgffModel:
    """The parsed file: merged task graphs plus PE tables."""

    tasks: Dict[str, int] = field(default_factory=dict)  # name -> type
    arcs: List[Tuple[str, str, str, int]] = field(default_factory=list)
    pes: List[TgffPe] = field(default_factory=list)
    periods: Dict[str, int] = field(default_factory=dict)  # graph name -> period
    deadlines: Dict[str, int] = field(default_factory=dict)  # task -> hard deadline


_BLOCK_RE = re.compile(r"@(\w+)\s+(\w+)\s*\{", re.MULTILINE)


def _strip_comments(text: str) -> List[str]:
    lines = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        lines.append(line)
    return lines


def parse_tgff(text: str) -> TgffModel:
    """Parse TGFF text into a :class:`TgffModel`."""
    model = TgffModel()
    position = 0
    for match in _BLOCK_RE.finditer(text):
        kind = match.group(1).upper()
        name = match.group(2)
        end = text.find("}", match.end())
        if end < 0:
            raise TgffError(f"unterminated @{kind} {name} block")
        body = text[match.end():end]
        if kind == "TASK_GRAPH":
            _parse_task_graph(model, name, body)
        elif kind == "PE":
            _parse_pe(model, name, body)
        # Other blocks (@COMMUN, @WIRING, ...) are ignored.
        position = end
    if not model.tasks:
        raise TgffError("no @TASK_GRAPH blocks with tasks found")
    if not model.pes:
        raise TgffError("no @PE blocks found")
    return model


def _parse_task_graph(model: TgffModel, graph: str, body: str) -> None:
    for line in _strip_comments(body):
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0].upper()
        if keyword == "PERIOD":
            if len(tokens) != 2:
                raise TgffError(f"malformed PERIOD line: {line!r}")
            model.periods[graph] = int(tokens[1])
        elif keyword == "TASK":
            fields = _keyed(tokens[2:], line)
            if tokens[1] in model.tasks:
                raise TgffError(f"duplicate task {tokens[1]!r}")
            model.tasks[tokens[1]] = int(fields.get("TYPE", "0"))
        elif keyword == "ARC":
            fields = _keyed(tokens[2:], line)
            if "FROM" not in fields or "TO" not in fields:
                raise TgffError(f"ARC needs FROM and TO: {line!r}")
            model.arcs.append(
                (
                    tokens[1],
                    fields["FROM"],
                    fields["TO"],
                    int(fields.get("TYPE", "1")),
                )
            )
        elif keyword == "HARD_DEADLINE":
            fields = _keyed(tokens[2:], line)
            if "ON" in fields and "AT" in fields:
                model.deadlines[fields["ON"]] = int(fields["AT"])
        elif keyword == "SOFT_DEADLINE":
            continue  # soft deadlines are advisory; not modeled
        else:
            raise TgffError(f"unknown task-graph line: {line!r}")


def _keyed(tokens: Sequence[str], line: str) -> Dict[str, str]:
    if len(tokens) % 2:
        raise TgffError(f"odd key/value tokens in: {line!r}")
    return {
        tokens[i].upper(): tokens[i + 1] for i in range(0, len(tokens), 2)
    }


def _parse_pe(model: TgffModel, name: str, body: str) -> None:
    pe = TgffPe(name=f"pe{name}" if name.isdigit() else name, price=0)
    have_price = False
    for line in _strip_comments(body):
        if not line:
            continue
        tokens = line.split()
        if not have_price:
            if len(tokens) != 1:
                raise TgffError(f"expected a bare price line, got {line!r}")
            pe.price = int(float(tokens[0]))
            have_price = True
            continue
        if len(tokens) not in (2, 3):
            raise TgffError(f"PE table rows are 'type time [energy]': {line!r}")
        type_id = int(tokens[0])
        exec_time = int(float(tokens[1]))
        energy = int(float(tokens[2])) if len(tokens) == 3 else exec_time
        if exec_time <= 0:
            raise TgffError(f"non-positive exec time in: {line!r}")
        pe.table[type_id] = (exec_time, energy)
    if not have_price:
        raise TgffError(f"@PE {name} block has no price line")
    model.pes.append(pe)


def to_specification(
    model: TgffModel,
    platform: str = "bus",
    link_delay: int = 1,
    link_energy: int = 1,
) -> Specification:
    """Place the TGFF model on a platform (``bus``, ``ring`` or ``mesh``).

    PEs become the processing resources (cost = TGFF price); the
    interconnect is synthesized since TGFF does not model one.
    """
    tasks = tuple(
        Task(name, deadline=model.deadlines.get(name)) for name in model.tasks
    )
    messages = tuple(
        Message(arc, source, target, size=max(size, 1))
        for arc, source, target, size in model.arcs
    )
    application = Application(tasks, messages)

    resources = tuple(Resource_from_pe(pe) for pe in model.pes)
    links = _platform_links(resources, platform, link_delay, link_energy)
    architecture = Architecture(resources + links[1], links[0])

    mappings: List[MappingOption] = []
    for task_name, type_id in model.tasks.items():
        for pe in model.pes:
            row = pe.table.get(type_id)
            if row is None:
                continue
            exec_time, energy = row
            mappings.append(
                MappingOption(task_name, _pe_resource_name(pe), exec_time, energy)
            )
    return Specification(application, architecture, tuple(mappings))


def _pe_resource_name(pe: TgffPe) -> str:
    return pe.name


def Resource_from_pe(pe: TgffPe):
    from repro.synthesis.model import Resource

    return Resource(_pe_resource_name(pe), cost=pe.price)


def _platform_links(
    resources, platform: str, delay: int, energy: int
) -> Tuple[Tuple[Link, ...], Tuple]:
    """Links plus any extra infrastructure resources for the platform."""
    from repro.synthesis.model import Resource

    names = [r.name for r in resources]
    if platform == "bus":
        hub = Resource("bus", cost=1)
        links = []
        for name in names:
            links.append(Link(f"l_{name}_up", name, "bus", delay=delay, energy=energy))
            links.append(Link(f"l_{name}_dn", "bus", name, delay=delay, energy=energy))
        return tuple(links), (hub,)
    if platform == "ring":
        links = tuple(
            Link(
                f"l_ring{i}",
                names[i],
                names[(i + 1) % len(names)],
                delay=delay,
                energy=energy,
            )
            for i in range(len(names))
        )
        return links, ()
    if platform == "mesh":
        import math

        columns = max(1, int(math.ceil(math.sqrt(len(names)))))
        links = []
        for index, name in enumerate(names):
            x, y = index % columns, index // columns
            right = index + 1
            down = index + columns
            if x + 1 < columns and right < len(names):
                links.append(
                    Link(f"l_m{index}r", name, names[right], delay=delay, energy=energy)
                )
                links.append(
                    Link(f"l_m{index}rb", names[right], name, delay=delay, energy=energy)
                )
            if down < len(names):
                links.append(
                    Link(f"l_m{index}d", name, names[down], delay=delay, energy=energy)
                )
                links.append(
                    Link(f"l_m{index}db", names[down], name, delay=delay, energy=energy)
                )
        return tuple(links), ()
    raise TgffError(f"unknown platform {platform!r}")

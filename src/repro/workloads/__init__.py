"""Synthetic benchmark instances (the paper's workload substitute).

The original evaluation uses the authors' in-house specification
generator (series-parallel task graphs mapped onto heterogeneous NoC
platforms).  That generator and its instances are not public, so this
module provides a seeded equivalent: layered series-parallel application
DAGs, heterogeneous mesh/bus/ring platforms, and per-option WCET/energy
tables derived from deterministic tile classes.  Instance *parameters*
(task counts, mapping densities, platform sizes) follow the published
instance table; see DESIGN.md for the substitution rationale.
"""

from repro.workloads.generator import (
    NamedInstance,
    WorkloadConfig,
    generate_application,
    generate_specification,
    suite,
    SUITES,
)
from repro.workloads.curated import CURATED_NAMES, curated, curated_instances
from repro.workloads.tgff import parse_tgff, to_specification

__all__ = [
    "CURATED_NAMES",
    "NamedInstance",
    "SUITES",
    "WorkloadConfig",
    "curated",
    "curated_instances",
    "generate_application",
    "generate_specification",
    "parse_tgff",
    "suite",
    "to_specification",
]

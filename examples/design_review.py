"""A design-review session: constraints, what-ifs and model refinements.

Walks through how an engineer would actually use the explorer on the
curated JPEG-encoder instance:

1. baseline exact front (latency / cost),
2. tightened: a hard deadline on the final stage + link contention,
3. what-if: pin the DCT to the DSP and see what the front costs,
4. export the chosen design as Graphviz DOT.

Run:  python examples/design_review.py
"""

from repro.bench.render import render_table
from repro.dse.explorer import ExactParetoExplorer
from repro.synthesis.encoding import encode
from repro.synthesis.model import Application, Specification, Task
from repro.synthesis.visualize import implementation_to_dot
from repro.workloads.curated import curated


def front_rows(result):
    return [
        dict(
            zip(result.objectives, point.vector),
            binding=", ".join(
                f"{t}:{r}" for t, r in sorted(point.implementation.binding.items())
            ),
        )
        for point in result.front
    ]


def explore(instance, **kwargs):
    return ExactParetoExplorer(instance, conflict_limit=40_000, **kwargs).run()


def main() -> None:
    spec = curated("consumer_jpeg")
    objectives = ("latency", "cost")
    columns = ["latency", "cost", "binding"]

    # 1. Baseline.
    baseline = explore(encode(spec, objectives=objectives))
    print(render_table("1. Baseline front", columns, front_rows(baseline)))

    # 2. Refined model: the output stage must finish by 30 time units and
    #    bus transmissions are serialized.
    deadline_spec = Specification(
        Application(
            tuple(
                Task(t.name, deadline=30) if t.name == "out" else t
                for t in spec.application.tasks
            ),
            spec.application.messages,
        ),
        spec.architecture,
        spec.mappings,
    )
    refined = explore(
        encode(deadline_spec, objectives=objectives, link_contention=True)
    )
    print()
    print(
        render_table(
            "2. With out-deadline 30 + bus contention", columns, front_rows(refined)
        )
    )
    dropped = len(baseline.front) - len(refined.front)
    print(f"   ({dropped} baseline design(s) no longer feasible/optimal)")

    # 3. What-if: force the DCT onto the DSP.
    pinned = explore(
        encode(spec, objectives=objectives), fixed_bindings={"dct": "dsp"}
    )
    print()
    print(render_table("3. What-if: dct pinned to dsp", columns, front_rows(pinned)))

    # 4. Export the fastest refined design.
    if refined.front:
        chosen = refined.front[0].implementation
        dot = implementation_to_dot(spec, chosen)
        print(f"\n4. Fastest refined design as DOT ({len(dot.splitlines())} lines):")
        print("\n".join(dot.splitlines()[:6]) + "\n   ...")


if __name__ == "__main__":
    main()

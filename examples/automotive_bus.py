"""Automotive ECU consolidation on a shared bus, with serialization.

Several control functions (sensor fusion, two control loops, a logger)
are consolidated onto a small number of ECUs attached to one bus.  ECUs
execute one task at a time, so the encoding's *resource serialization*
option is enabled: tasks bound to the same ECU are totally ordered by the
scheduler, and the latency objective reflects the interleaving.

This example also shows driving the explorer from an already-encoded
instance (to pass encoding options).

Run:  python examples/automotive_bus.py
"""

from repro.bench.render import render_table
from repro.dse.explorer import ExactParetoExplorer
from repro.synthesis import (
    Application,
    MappingOption,
    Message,
    Specification,
    Task,
    bus,
    encode,
)


def build_specification() -> Specification:
    application = Application(
        tasks=(
            Task("fusion"),
            Task("lateral"),
            Task("longitudinal"),
            Task("logger"),
        ),
        messages=(
            Message("env_lat", "fusion", "lateral", size=2),
            Message("env_long", "fusion", "longitudinal", size=2),
            Message("trace", "lateral", "logger", size=1),
        ),
    )
    architecture = bus(3, seed=5)
    ecus = [r for r in architecture.resources if r.name != "bus"]
    workload = {"fusion": (4, 4), "lateral": (3, 3), "longitudinal": (3, 3), "logger": (1, 1)}
    factors = {2: (150, 70), 4: (100, 100), 8: (60, 160), 12: (30, 220)}
    mappings = []
    for task, (wcet, energy) in workload.items():
        for ecu in ecus:
            wf, ef = factors[ecu.cost]
            mappings.append(
                MappingOption(
                    task,
                    ecu.name,
                    wcet=max(1, wcet * wf // 100),
                    energy=max(1, energy * ef // 100),
                )
            )
    return Specification(application, architecture, tuple(mappings))


def main() -> None:
    specification = build_specification()
    print("instance:", specification.summary())

    instance = encode(
        specification, objectives=("latency", "cost"), serialize=True
    )
    result = ExactParetoExplorer(instance, conflict_limit=40_000).run()

    rows = []
    for point in result.front:
        impl = point.implementation
        ecus_used = sorted(set(impl.binding.values()))
        rows.append(
            {
                "latency": point.vector[0],
                "cost": point.vector[1],
                "ecus": len(ecus_used),
                "binding": ", ".join(
                    f"{t}:{r}" for t, r in sorted(impl.binding.items())
                ),
            }
        )
    print()
    print(
        render_table(
            "Exact latency/cost front (serialized ECUs)",
            ["latency", "cost", "ecus", "binding"],
            rows,
        )
    )
    stats = result.statistics
    print(
        f"\n{stats.models_enumerated} models, {stats.conflicts} conflicts, "
        f"complete={not stats.interrupted}"
    )
    print(
        "note: consolidating onto fewer ECUs lowers cost but serialization "
        "stretches the latency — the front makes the trade-off explicit."
    )


if __name__ == "__main__":
    main()

"""Streaming dataflow: optimizing throughput (period) against cost.

A software-defined-radio receiver chain processes an endless sample
stream; what matters is not one frame's end-to-end latency but the
*initiation interval* — how often a new frame can enter the pipeline.
The bottleneck resource determines it: period >= the accumulated WCET of
the tasks sharing a resource.

The exact DSE over (period, cost, energy) shows the classic staircase:
adding processing elements keeps cutting the period until the slowest
single task dominates.

Run:  python examples/streaming_throughput.py
"""

from repro.bench.render import render_table
from repro.dse.explorer import explore
from repro.synthesis import (
    Application,
    MappingOption,
    Message,
    Specification,
    Task,
    ring,
)
from repro.synthesis.visualize import implementation_summary


def build_specification() -> Specification:
    stages = ["agc", "sync", "demod", "deinterleave", "decode", "crc"]
    application = Application(
        tasks=tuple(Task(name) for name in stages),
        messages=tuple(
            Message(f"s{i}", src, dst, size=1)
            for i, (src, dst) in enumerate(zip(stages, stages[1:]))
        ),
    )
    architecture = ring(4, seed=3)
    workload = {
        "agc": 2,
        "sync": 4,
        "demod": 5,
        "deinterleave": 2,
        "decode": 6,
        "crc": 1,
    }
    factors = {2: (150, 70), 4: (100, 100), 8: (60, 160), 12: (30, 220)}
    mappings = []
    for stage, wcet in workload.items():
        for resource in architecture.resources:
            wcet_factor, energy_factor = factors[resource.cost]
            mappings.append(
                MappingOption(
                    stage,
                    resource.name,
                    wcet=max(1, wcet * wcet_factor // 100),
                    energy=max(1, wcet * energy_factor // 100),
                )
            )
    return Specification(application, architecture, tuple(mappings))


def main() -> None:
    specification = build_specification()
    print("instance:", specification.summary())

    result = explore(
        specification,
        objectives=("period", "cost"),
        conflict_limit=40_000,
    )

    rows = []
    for point in result.front:
        cores = len(set(point.implementation.binding.values()))
        rows.append(
            {
                "period": point.vector[0],
                "cost": point.vector[1],
                "cores": cores,
            }
        )
    print()
    print(
        render_table(
            "Throughput/cost staircase (exact)", ["period", "cost", "cores"], rows
        )
    )
    print()
    fastest = result.front[0].implementation
    print("fastest design:")
    print(implementation_summary(specification, fastest))
    stats = result.statistics
    print(
        f"\n{stats.models_enumerated} models, {stats.conflicts} conflicts, "
        f"complete={not stats.interrupted}"
    )


if __name__ == "__main__":
    main()

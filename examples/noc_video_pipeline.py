"""A video-processing pipeline on a 3x2 mesh NoC.

The classic motivating workload of the system-synthesis papers: a
camera-in / display-out pipeline (capture -> denoise -> detect ->
annotate -> encode -> sink) mapped onto a heterogeneous 3x2 mesh.  The
exact DSE returns every Pareto-optimal trade-off between end-to-end
latency, energy and platform cost; the NSGA-II heuristic is run for
comparison.

Run:  python examples/noc_video_pipeline.py
"""

from repro.baselines import nsga2_front
from repro.bench.render import render_scatter, render_table
from repro.dse.explorer import explore
from repro.synthesis import (
    Application,
    MappingOption,
    Message,
    Specification,
    Task,
    mesh,
)


def build_specification() -> Specification:
    stages = ["capture", "denoise", "detect", "annotate", "encode", "sink"]
    application = Application(
        tasks=tuple(Task(name) for name in stages),
        messages=tuple(
            Message(f"m{i}", src, dst, size=3 if i < 2 else 1)
            for i, (src, dst) in enumerate(zip(stages, stages[1:]))
        ),
    )
    architecture = mesh(3, 2, seed=11)

    # Nominal workload per stage; heterogeneity comes from the tile class
    # (resource cost encodes it: cheap tiles are slow, expensive fast).
    nominal = {
        "capture": (2, 2),
        "denoise": (6, 5),
        "detect": (8, 7),
        "annotate": (3, 3),
        "encode": (6, 6),
        "sink": (1, 1),
    }
    factors = {2: (150, 70), 4: (100, 100), 8: (60, 160), 12: (30, 220)}
    mappings = []
    for stage, (wcet, energy) in nominal.items():
        # Every stage may run on three deterministic candidate tiles.
        candidates = [
            architecture.resources[i]
            for i in range(len(architecture.resources))
            if (i + len(stage)) % 2 == 0 or stage in ("capture", "sink")
        ][:3]
        for resource in candidates:
            wf, ef = factors[resource.cost]
            mappings.append(
                MappingOption(
                    stage,
                    resource.name,
                    wcet=max(1, wcet * wf // 100),
                    energy=max(1, energy * ef // 100),
                )
            )
    return Specification(application, architecture, tuple(mappings))


def main() -> None:
    specification = build_specification()
    print("instance:", specification.summary())

    result = explore(
        specification,
        objectives=("latency", "energy"),
        conflict_limit=30_000,
    )
    heuristic = nsga2_front(
        specification, objectives=("latency", "energy"), generations=25, seed=3
    )

    rows = [
        {
            "latency": vector[0],
            "energy": vector[1],
            "binding": ", ".join(
                f"{t}:{r}" for t, r in sorted(point.implementation.binding.items())
            ),
        }
        for vector, point in zip(result.vectors(), result.front)
    ]
    print()
    print(render_table("Exact Pareto front", ["latency", "energy", "binding"], rows))
    print()
    print(
        render_scatter(
            "Latency/energy trade-off (o = exact, x = NSGA-II)",
            {"exact": result.vectors(), "nsga2": heuristic.vectors()},
        )
    )
    print(
        f"\nexact search: {result.statistics.models_enumerated} models, "
        f"{result.statistics.conflicts} conflicts, "
        f"complete={not result.statistics.interrupted}; "
        f"NSGA-II evaluations: {heuristic.evaluations}"
    )


if __name__ == "__main__":
    main()

"""Quickstart: exact multi-objective DSE in a dozen lines.

Builds a tiny specification (two communicating tasks, two heterogeneous
resources), explores the complete design space, and prints the exact
Pareto front with a witness implementation per point.

Run:  python examples/quickstart.py
"""

from repro.dse.explorer import explore
from repro.synthesis import (
    Application,
    Architecture,
    Link,
    MappingOption,
    Message,
    Resource,
    Specification,
    Task,
)


def build_specification() -> Specification:
    application = Application(
        tasks=(Task("producer"), Task("consumer")),
        messages=(Message("data", "producer", "consumer", size=2),),
    )
    architecture = Architecture(
        resources=(Resource("fast_core", cost=8), Resource("eco_core", cost=2)),
        links=(
            Link("f2e", "fast_core", "eco_core", delay=1, energy=1),
            Link("e2f", "eco_core", "fast_core", delay=1, energy=1),
        ),
    )
    mappings = (
        MappingOption("producer", "fast_core", wcet=1, energy=6),
        MappingOption("producer", "eco_core", wcet=4, energy=2),
        MappingOption("consumer", "fast_core", wcet=2, energy=8),
        MappingOption("consumer", "eco_core", wcet=5, energy=3),
    )
    return Specification(application, architecture, mappings)


def main() -> None:
    specification = build_specification()
    result = explore(specification, objectives=("latency", "energy", "cost"))

    print(f"objectives: {result.objectives}")
    print(f"exact Pareto front ({len(result.front)} points):\n")
    for point in result.front:
        impl = point.implementation
        binding = ", ".join(f"{t}->{r}" for t, r in sorted(impl.binding.items()))
        print(f"  {point.vector}   binding: {binding}")
    stats = result.statistics
    print(
        f"\nsearch effort: {stats.models_enumerated} models, "
        f"{stats.conflicts} conflicts, "
        f"{stats.pruned_partial} dominance prunings on partial assignments"
    )


if __name__ == "__main__":
    main()

"""Using the ASPmT substrate directly (beyond system synthesis).

The solving stack is a general ASP-modulo-theories library: this example
schedules a small job shop — jobs with machine-specific operations,
difference-logic timing, and a makespan bound — straight from an
ASP+theory program, without the synthesis layer.

It demonstrates:

* the ASP input language (choice rules, constraints),
* ``&dom``/``&diff``/``&sum`` theory atoms,
* registering theory propagators on a :class:`repro.asp.Control`,
* reading theory values out of a model.

Run:  python examples/custom_aspmt.py
"""

from repro.asp import Control
from repro.theory import DifferenceLogicPropagator, LinearPropagator

PROGRAM = """
% Three jobs, each with two ordered operations; two machines.
job(j1). job(j2). job(j3).
machine(m1). machine(m2).
% op(Job, Index, Duration)
op(j1, 1, 3).  op(j1, 2, 2).
op(j2, 1, 2).  op(j2, 2, 4).
op(j3, 1, 4).  op(j3, 2, 1).

% Each operation runs on exactly one machine.
1 { on(J, I, M) : machine(M) } 1 :- op(J, I, D).

% Operations of a job are ordered.
&diff { s(J, 2) - s(J, 1) } >= D :- op(J, 1, D).

% Two operations on the same machine must not overlap: choose an order.
pair(J1, I1, J2, I2) :- op(J1, I1, D1), op(J2, I2, D2), (J1, I1) < (J2, I2).
share(J1, I1, J2, I2) :- pair(J1, I1, J2, I2), on(J1, I1, M), on(J2, I2, M).
1 { before(J1, I1, J2, I2) ; before(J2, I2, J1, I1) } 1 :- share(J1, I1, J2, I2).
&diff { s(J2, I2) - s(J1, I1) } >= D :- before(J1, I1, J2, I2), op(J1, I1, D).

% Horizon and makespan.
&dom { 0..30 } = s(J, I) :- op(J, I, D).
&dom { 0..30 } = makespan.
&sum { makespan - s(J, I) } >= D :- op(J, I, D).

% Ask for a schedule no longer than 9 time units.
&sum { makespan } <= 9.
"""


def main() -> None:
    control = Control()
    linear = LinearPropagator()
    control.add(PROGRAM)
    control.register_propagator(linear)
    # The dedicated difference-logic engine detects ordering conflicts
    # with minimal explanations; stacking it is optional but faster.
    control.register_propagator(DifferenceLogicPropagator())
    control.ground()

    schedules = []

    def on_model(model):
        values = {str(k): v for k, v in model.theory["ints"].items()}
        assignment = {
            (str(a.arguments[0]), a.arguments[1].value): str(a.arguments[2])
            for a in model.atoms_of("on", 3)
        }
        schedules.append((values, assignment))
        return False  # one schedule is enough

    summary = control.solve(on_model=on_model, models=1)
    if not summary.satisfiable:
        print("no schedule fits in the makespan bound")
        return
    values, assignment = schedules[0]
    print(f"makespan: {values['makespan']}")
    for (job, index), machine in sorted(assignment.items()):
        start = values[f"s({job},{index})"]
        print(f"  {job} op{index} on {machine}: start={start}")
    print(
        f"\nsolver: {control.statistics.conflicts} conflicts, "
        f"{control.statistics.decisions} decisions"
    )


if __name__ == "__main__":
    main()

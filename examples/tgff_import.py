"""Importing a TGFF benchmark and exploring it exactly.

TGFF ("Task Graphs For Free") is the standard benchmark generator in the
system-synthesis literature; this example loads a TGFF-style file — an
MP3-decoder-like task chain with two heterogeneous PE types — places the
PEs on a shared bus, and runs the exact multi-objective DSE.

Run:  python examples/tgff_import.py
"""

from repro.bench.render import render_table
from repro.dse.explorer import explore
from repro.workloads.tgff import parse_tgff, to_specification

TGFF_TEXT = """
# An MP3-decoder-like pipeline: huffman -> dequant -> stereo -> imdct -> synth
@TASK_GRAPH 0 {
    PERIOD 26
    TASK huffman  TYPE 0
    TASK dequant  TYPE 1
    TASK stereo   TYPE 2
    TASK imdct    TYPE 3
    TASK synth    TYPE 4
    ARC a0 FROM huffman TO dequant TYPE 2
    ARC a1 FROM dequant TO stereo  TYPE 2
    ARC a2 FROM stereo  TO imdct   TYPE 1
    ARC a3 FROM imdct   TO synth   TYPE 3
}

# A big out-of-order core: fast everywhere, expensive, power-hungry.
@PE 0 {
    90
    0  2  8
    1  3  10
    2  2  9
    3  4  16
    4  3  12
}

# A small in-order core: slow, cheap, frugal.
@PE 1 {
    25
    0  5  3
    1  7  4
    2  6  3
    3  11 6
    4  8  4
}

# A DSP: excellent at transforms (types 3/4), no bitstream support.
@PE 2 {
    45
    1  4  5
    2  3  4
    3  2  5
    4  2  4
}
"""


def main() -> None:
    model = parse_tgff(TGFF_TEXT)
    print(
        f"parsed: {len(model.tasks)} tasks, {len(model.arcs)} arcs, "
        f"{len(model.pes)} PEs, period {model.periods.get('0')}"
    )
    specification = to_specification(model, platform="bus")
    print("instance:", specification.summary())

    result = explore(specification, objectives=("latency", "energy", "cost"))

    rows = []
    for point in result.front:
        row = dict(zip(result.objectives, point.vector))
        row["binding"] = ", ".join(
            f"{t}:{r}" for t, r in sorted(point.implementation.binding.items())
        )
        rows.append(row)
    print()
    print(
        render_table(
            f"Exact Pareto front ({len(rows)} points)",
            ["latency", "energy", "cost", "binding"],
            rows,
        )
    )
    stats = result.statistics
    print(
        f"\n{stats.models_enumerated} models, {stats.conflicts} conflicts, "
        f"{stats.pruned_partial} partial-assignment prunings, "
        f"{stats.wall_time:.2f}s"
    )
    deadline = model.periods.get("0")
    if deadline is not None:
        feasible = [p for p in result.front if p.vector[0] <= deadline]
        print(
            f"designs meeting the TGFF period ({deadline}): "
            f"{len(feasible)} of {len(result.front)}"
        )


if __name__ == "__main__":
    main()

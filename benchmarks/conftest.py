"""Shared configuration for the benchmark suite.

The benchmarks wrap the experiment functions of :mod:`repro.bench` in
pytest-benchmark fixtures with *reduced* workloads and budgets so the
whole suite completes in a few minutes; run ``python -m repro.bench all``
for the full-size tables reported in EXPERIMENTS.md.
"""

import pytest

#: Conflict budget per solver run in benchmark mode.
BENCH_BUDGET = 4_000


@pytest.fixture
def budget():
    return BENCH_BUDGET

"""Fig. 4 benchmark: list vs. quad-tree Pareto archive.

Shape claims: both archives keep identical non-dominated sets, and on
well-spread synthetic workloads the quad-tree performs fewer pairwise
comparisons than the linear scan.
"""

import random

from repro.bench.experiments import fig4_archive_ablation
from repro.dse.pareto import ListArchive
from repro.dse.quadtree import QuadTreeArchive


def test_fig4_archive_ablation(benchmark):
    columns, rows = benchmark.pedantic(
        fig4_archive_ablation,
        kwargs={"sizes": (100, 400), "dse_tasks": 5},
        rounds=1,
        iterations=1,
    )
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row["workload"], {})[row["archive"]] = row
    for workload, archives in by_workload.items():
        assert (
            archives["list"]["points_kept"] == archives["quadtree"]["points_kept"]
        ), workload
    # On the larger synthetic workload the quad-tree must win comparisons.
    large = by_workload["synthetic_n400"]
    assert large["quadtree"]["comparisons"] < large["list"]["comparisons"]


def test_fig4_insertion_throughput_list(benchmark):
    rng = random.Random(3)
    points = [tuple(rng.randint(0, 500) for _ in range(3)) for _ in range(800)]

    def insert_all():
        archive = ListArchive()
        for point in points:
            archive.add(point, None)
        return archive

    archive = benchmark(insert_all)
    assert len(archive) > 0


def test_fig4_insertion_throughput_quadtree(benchmark):
    rng = random.Random(3)
    points = [tuple(rng.randint(0, 500) for _ in range(3)) for _ in range(800)]

    def insert_all():
        archive = QuadTreeArchive()
        for point in points:
            archive.add(point, None)
        return archive

    archive = benchmark(insert_all)
    assert len(archive) > 0

"""Fig. 7 benchmark (extension): routing freedom vs. fixed routing.

Shape claims: free routing covers its own front fully (coverage 1.0) and
its front is a superset-quality reference (fixed coverage <= 1.0); the
restricted space never yields *better* points (asserted separately in
tests/test_fixed_routing.py via dominance).
"""

from repro.bench.experiments import fig7_routing


def test_fig7_routing(benchmark, budget):
    columns, rows = benchmark.pedantic(
        fig7_routing,
        kwargs={"suites": ("tiny",), "conflict_limit": budget},
        rounds=1,
        iterations=1,
    )
    by_instance = {}
    for row in rows:
        by_instance.setdefault(row["instance"], {})[row["routing"]] = row
    for name, variants in by_instance.items():
        free = variants["free"]
        fixed = variants["fixed"]
        assert free["coverage"] == 1.0, name
        assert 0.0 <= fixed["coverage"] <= 1.0, name
        assert fixed["pareto"] >= 1, name

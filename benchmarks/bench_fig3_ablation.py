"""Fig. 3 benchmark: partial-assignment dominance propagation ablation.

Shape claim: switching the propagator's partial-assignment pruning off
never changes the computed front (exactness is preserved by the
solution-level check) but moves the pruning work from partial
assignments to total ones.
"""

from repro.bench.experiments import fig3_pruning_ablation


def test_fig3_pruning_ablation(benchmark, budget):
    columns, rows = benchmark.pedantic(
        fig3_pruning_ablation,
        kwargs={"suites": ("tiny",), "conflict_limit": budget},
        rounds=1,
        iterations=1,
    )
    by_instance = {}
    for row in rows:
        by_instance.setdefault(row["instance"], {})[row["partial_pruning"]] = row
    for name, variants in by_instance.items():
        with_pruning = variants[True]
        without = variants[False]
        assert with_pruning["pareto"] == without["pareto"], name
        # With partial pruning enabled, pruning fires before assignments
        # are total; without it, all pruning happens at total assignments.
        assert with_pruning["pruned_partial"] > 0, name
        assert without["pruned_partial"] == 0, name
        assert without["pruned_total"] > 0, name

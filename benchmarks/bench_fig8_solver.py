"""Fig. 8 benchmark (extension): CDNL solver knob ablation.

Shape claims: every variant (no restarts, no phase saving, stacked
difference-logic propagator) computes the identical exact front — the
knobs affect effort only, never the result.
"""

from repro.bench.experiments import fig8_solver_ablation


def test_fig8_solver_ablation(benchmark, budget):
    columns, rows = benchmark.pedantic(
        fig8_solver_ablation,
        kwargs={"suites": ("tiny",), "conflict_limit": budget},
        rounds=1,
        iterations=1,
    )
    by_instance = {}
    for row in rows:
        by_instance.setdefault(row["instance"], {})[row["variant"]] = row
    for name, variants in by_instance.items():
        assert set(variants) == {
            "default",
            "no-restarts",
            "no-phase-saving",
            "with-dl",
        }, name
        fronts = {v["pareto"] for v in variants.values()}
        assert len(fronts) == 1, (name, variants)

"""Fig. 9 benchmark (extension): link-contention refinement.

Shape claim: serializing shared-link transmissions never *improves* the
latency-optimal point (contention can only delay deliveries).
"""

from repro.bench.experiments import fig9_contention


def test_fig9_contention(benchmark, budget):
    columns, rows = benchmark.pedantic(
        fig9_contention,
        kwargs={"suites": ("tiny",), "conflict_limit": budget},
        rounds=1,
        iterations=1,
    )
    by_instance = {}
    for row in rows:
        by_instance.setdefault(row["instance"], {})[row["contention"]] = row
    for name, variants in by_instance.items():
        assert variants[True]["best_latency"] >= variants[False]["best_latency"], name
        assert variants[True]["pareto"] >= 1, name

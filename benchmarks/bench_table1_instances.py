"""Table I benchmark: instance generation and characterization.

Times the seeded workload generator producing the full instance table;
also asserts the generated characteristics stay within the published
parameter ranges (so the table cannot silently drift).
"""

from repro.bench.experiments import table1_instances


def test_table1_generation(benchmark):
    columns, rows = benchmark(table1_instances, ("tiny", "small"))
    assert "binding_space" in columns
    assert rows
    for row in rows:
        assert row["tasks"] >= 3
        assert row["mapping_options"] >= row["tasks"]
        assert row["binding_space"] >= 2


def test_table1_medium_suite(benchmark):
    _columns, rows = benchmark(table1_instances, ("medium",))
    assert all(8 <= row["tasks"] <= 12 for row in rows)

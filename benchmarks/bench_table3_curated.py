"""Table III benchmark (extension): curated E3S-style domain instances.

Shape claims: every domain instance solves to completion within the
budget, fronts are non-trivial, and adding objectives never shrinks the
front (a projection of a higher-dimensional front cannot have more
points than the front itself... the reverse: more objectives can only
reveal more trade-offs)."""

from repro.bench.experiments import table3_curated


def test_table3_curated(benchmark, budget):
    columns, rows = benchmark.pedantic(
        table3_curated, kwargs={"conflict_limit": budget}, rounds=1, iterations=1
    )
    by_instance = {}
    for row in rows:
        by_instance.setdefault(row["instance"], {})[row["objectives"]] = row
    assert len(by_instance) == 4
    for name, variants in by_instance.items():
        two = variants["lat/cos"]
        three = variants["lat/ene/cos"]
        assert two["exact"] and three["exact"], name
        assert two["pareto"] >= 1, name
        # Adding an objective never loses trade-offs.
        assert three["pareto"] >= two["pareto"], name

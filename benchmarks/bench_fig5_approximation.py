"""Fig. 5 benchmark (extension): epsilon-dominance approximation.

Shape claims: the measured additive-epsilon indicator never exceeds the
configured epsilon (the approximation guarantee), the front never grows
with epsilon, and epsilon=0 reproduces the exact front.
"""

from repro.bench.experiments import fig5_approximation


def test_fig5_approximation(benchmark, budget):
    columns, rows = benchmark.pedantic(
        fig5_approximation,
        kwargs={"epsilons": (0, 2, 6), "tasks": 6, "conflict_limit": budget},
        rounds=1,
        iterations=1,
    )
    by_epsilon = {row["epsilon"]: row for row in rows}
    assert by_epsilon[0]["measured_eps"] == 0
    assert by_epsilon[0]["coverage"] == 1.0
    for epsilon, row in by_epsilon.items():
        assert row["measured_eps"] <= epsilon, row
    # The archive can only shrink as the pruning gets more aggressive.
    assert by_epsilon[6]["front"] <= by_epsilon[0]["front"]
    assert by_epsilon[2]["front"] <= by_epsilon[0]["front"]

"""Table II benchmark: exact multi-objective DSE vs. baselines.

Each benchmark times one method over the tiny suite (benchmark mode uses
tiny instances + a reduced conflict budget; ``python -m repro.bench
table2`` runs the full-size table).  The assertions encode the *shape*
claims of the paper: all exact methods agree on the front, and the
proposed dominance-propagating DSE needs the fewest solver calls and no
more enumerated models than any baseline.
"""

import pytest

from repro.baselines import epsilon_constraint_front, exhaustive_front, solution_level_front
from repro.bench.experiments import table2_dse
from repro.dse.explorer import ExactParetoExplorer
from repro.synthesis.encoding import encode
from repro.workloads import suite


@pytest.fixture(scope="module")
def instances():
    return [(i.name, encode(i.specification)) for i in suite("tiny")]


def test_table2_proposed_aspmt_dse(benchmark, instances, budget):
    def run():
        return [
            ExactParetoExplorer(
                encoded, conflict_limit=budget, validate_models=False
            ).run()
            for _name, encoded in instances
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(not r.statistics.interrupted for r in results)


def test_table2_solution_level(benchmark, instances, budget):
    def run():
        return [
            solution_level_front(encoded, conflict_limit=budget)
            for _name, encoded in instances
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.exact for r in results)


def test_table2_epsilon_constraint(benchmark, instances, budget):
    def run():
        return [
            epsilon_constraint_front(encoded, conflict_limit=budget)
            for _name, encoded in instances
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.exact for r in results)


def test_table2_exhaustive(benchmark, instances, budget):
    def run():
        return [
            exhaustive_front(encoded, conflict_limit=budget)
            for _name, encoded in instances
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.exact for r in results)


def test_table2_shape_claims(budget):
    """The qualitative Table II statement, asserted."""
    columns, rows = table2_dse(
        ("tiny",),
        conflict_limit=budget,
        methods=("aspmt-dse", "solution-level", "epsilon"),
    )
    by_instance = {}
    for row in rows:
        by_instance.setdefault(row["instance"], {})[row["method"]] = row
    for name, methods in by_instance.items():
        proposed = methods["aspmt-dse"]
        solution = methods["solution-level"]
        epsilon = methods["epsilon-constraint"]
        # All exact methods find the same number of Pareto points.
        assert proposed["pareto"] == solution["pareto"] == epsilon["pareto"], name
        # Single incremental run vs. many epsilon descents.
        assert proposed["solves"] < epsilon["solves"], name
        # Dominance propagation never enumerates more models.
        assert proposed["models"] <= epsilon["models"], name

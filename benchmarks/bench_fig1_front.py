"""Fig. 1 benchmark: example Pareto front, exact vs. NSGA-II.

Shape claims: the heuristic never produces a point better than the exact
front, and (being restricted to shortest-path routing) typically finds a
subset/approximation of it.
"""

from repro.bench.experiments import fig1_front
from repro.dse.pareto import weakly_dominates


def test_fig1_exact_vs_heuristic(benchmark, budget):
    fronts = benchmark.pedantic(
        fig1_front,
        kwargs={"tasks": 6, "seed": 1, "conflict_limit": budget},
        rounds=1,
        iterations=1,
    )
    exact = fronts["exact"]
    heuristic = fronts["nsga2"]
    assert exact, "exact front must not be empty"
    # No heuristic point may dominate the exact front.
    for h in heuristic:
        assert any(weakly_dominates(e, h) for e in exact), h
    # The exact front is mutually non-dominated.
    for a in exact:
        for b in exact:
            if a != b:
                assert not weakly_dominates(a, b)

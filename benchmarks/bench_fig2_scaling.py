"""Fig. 2 benchmark: search effort scaling with task count."""

from repro.bench.experiments import fig2_scaling


def test_fig2_scaling(benchmark, budget):
    series = benchmark.pedantic(
        fig2_scaling,
        kwargs={"task_counts": (3, 4, 5, 6), "conflict_limit": budget},
        rounds=1,
        iterations=1,
    )
    dse = dict(series["aspmt-dse conflicts"])
    # Effort grows with instance size (largest >= smallest; the curve is
    # noisy in between, which matches the paper's per-instance variance).
    assert dse[6] >= dse[3]
    assert set(dse) == {3, 4, 5, 6}

"""Symmetry breaking benchmark: model-count and wall-time reduction.

Measures the ``mesh_symmetric`` curated instance (a 3-task chain on a
3x3 mesh of identical tiles, automorphism group D4 of order 8) with
lex-leader breaking off vs. on, and writes the table plus headline
ratios to ``BENCH_symmetry.json`` at the repository root.

**What "model count" means here.**  The classic symmetry-breaking
metric is the number of *feasible implementations* — stable models of
the encoding (binding + routing combinations consistent with the
deadlines), enumerated with blocking clauses and no dominance pruning.
Lex-leader constraints keep roughly one representative per orbit, so
this count drops by close to the group order modulo stabilizers
(measured 213 -> 37, ~5.8x).  The *Pareto explorer's*
``models_enumerated`` does **not** drop: weak dominance already prunes
equal-vector duplicates, so symmetric copies were never enumerated
twice to begin with.  For the exploration itself the savings appear as
conflicts/decisions/wall time (the solver no longer re-refutes each
symmetric placement), measured ~3.9x in conflicts here.  Both floors
below are asserted; both are deliberately under the measured ratios so
machine noise cannot flip them.

Exactness rides along: the off/on fronts must be vector-identical,
sequentially and at ``jobs=2`` with both schedulers (the CI
``symmetry-equivalence`` job runs the full equivalence suite too).
"""

import json
import time
from pathlib import Path

from repro.asp.control import Control
from repro.dse.explorer import ExactParetoExplorer
from repro.dse.parallel import ParallelParetoExplorer
from repro.synthesis.encoding import encode
from repro.theory.linear import LinearPropagator
from repro.workloads.curated import curated

INSTANCE = "mesh_symmetric"
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_symmetry.json"

#: Cap on the feasible-model enumeration (well above the measured 213).
MODEL_CAP = 100_000

#: Floors, deliberately below the measured ratios (measured values land
#: in BENCH_symmetry.json): feasible models 213/37 ~ 5.8x, Pareto-search
#: conflicts 2682/696 ~ 3.9x.
MODEL_REDUCTION_FLOOR = 2.0
CONFLICT_REDUCTION_FLOOR = 1.5


def count_feasible_models(instance):
    """Stable models of the encoding (no dominance, blocking clauses)."""
    control = Control()
    control.add(instance.program)
    control.register_propagator(LinearPropagator())
    control.ground(cache=False)
    count = [0]
    started = time.perf_counter()
    control.solve(
        on_model=lambda model: count.__setitem__(0, count[0] + 1),
        models=MODEL_CAP,
    )
    seconds = time.perf_counter() - started
    assert count[0] < MODEL_CAP, "feasible-model enumeration hit the cap"
    return count[0], seconds


def explore_instance(instance, budget):
    explorer = ExactParetoExplorer(
        instance, conflict_limit=budget, validate_models=False
    )
    started = time.perf_counter()
    result = explorer.run()
    return result, time.perf_counter() - started


def run_symmetry_comparison(budget):
    spec = curated(INSTANCE)
    rows = []
    fronts = {}
    for mode in ("off", "on"):
        instance = encode(spec, symmetry=mode)
        models, enum_seconds = count_feasible_models(instance)
        result, wall = explore_instance(instance, budget)
        fronts[mode] = result.vectors()
        stats = result.statistics
        rows.append(
            {
                "instance": INSTANCE,
                "symmetry": mode,
                "feasible_models": models,
                "enumeration_s": round(enum_seconds, 4),
                "pareto_points": stats.pareto_points,
                "models_enumerated": stats.models_enumerated,
                "conflicts": stats.conflicts,
                "decisions": stats.decisions,
                "explore_s": round(wall, 4),
                "exact": not stats.interrupted,
                "constraints": stats.symmetry_constraints,
                "group_order": stats.symmetry_order,
                "analysis_s": round(stats.symmetry_seconds, 6),
            }
        )
    parallel_fronts = {}
    broken = encode(spec, symmetry="on")
    for schedule in ("static", "stealing"):
        result = ParallelParetoExplorer(
            broken,
            jobs=2,
            backend="inline",
            schedule=schedule,
            conflict_limit=budget,
            validate_models=False,
        ).run()
        parallel_fronts[schedule] = result.vectors()
    return rows, fronts, parallel_fronts


def test_symmetry_reduction(benchmark, budget):
    rows, fronts, parallel_fronts = benchmark.pedantic(
        run_symmetry_comparison,
        kwargs={"budget": budget * 10},
        rounds=1,
        iterations=1,
    )
    off, on = rows
    assert off["symmetry"] == "off" and on["symmetry"] == "on"
    assert off["exact"] and on["exact"]

    # Exactness: identical vector fronts in every configuration.
    assert fronts["on"] == fronts["off"]
    for schedule, vectors in parallel_fronts.items():
        assert vectors == fronts["off"], schedule

    # The platform group was found and compiled into constraints.
    assert on["group_order"] == 8
    assert on["constraints"] > 0

    # Feasible implementations: the classic >= 2x model-count reduction.
    model_x = round(off["feasible_models"] / max(on["feasible_models"], 1), 3)
    assert model_x >= MODEL_REDUCTION_FLOOR, (
        f"feasible-model reduction {model_x}x below floor "
        f"{MODEL_REDUCTION_FLOOR}x"
    )

    # Pareto search effort: conflicts drop too (the honest wall-time
    # driver; see the module docstring for why models_enumerated stays).
    conflict_x = round(off["conflicts"] / max(on["conflicts"], 1), 3)
    assert conflict_x >= CONFLICT_REDUCTION_FLOOR, (
        f"conflict reduction {conflict_x}x below floor "
        f"{CONFLICT_REDUCTION_FLOOR}x"
    )

    report = {
        "instance": INSTANCE,
        "rows": rows,
        "front": [list(v) for v in fronts["off"]],
        "parallel_front_equal": {
            schedule: vectors == fronts["off"]
            for schedule, vectors in parallel_fronts.items()
        },
        "headline": {
            "feasible_model_reduction": model_x,
            "conflict_reduction": conflict_x,
            "wall_reduction": round(
                off["explore_s"] / max(on["explore_s"], 1e-9), 3
            ),
            "floors": {
                "feasible_model_reduction": MODEL_REDUCTION_FLOOR,
                "conflict_reduction": CONFLICT_REDUCTION_FLOOR,
            },
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["headline"] = report["headline"]

"""Fuzzer throughput benchmark: inputs/second per oracle.

Runs a fixed seeded budget through the full oracle matrix and records
per-oracle throughput (inputs checked per second, skips excluded from
neither count — a skip still costs generation and dispatch) into
``BENCH_fuzz.json`` next to the repository root.  Shape claims: the run
is green (the fuzzer finds nothing on main), every oracle sees inputs,
and no oracle is pathologically slow — the matrix must stay cheap
enough for the PR-time smoke budget to finish in seconds.
"""

import json
from pathlib import Path

from repro.fuzz import FuzzHarness
from repro.fuzz.oracles import ORACLES

BUDGET = 150
BASE_SEED = 0
MIN_INPUTS_PER_SECOND = 5.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_fuzz.json"


def run_fuzz_sweep():
    report = FuzzHarness(base_seed=BASE_SEED).run(BUDGET)
    rows = []
    for name, stats in sorted(report.oracle_stats.items()):
        rows.append(
            {
                "oracle": name,
                "kind": ORACLES[name].kind,
                "inputs": stats.inputs,
                "skips": stats.skips,
                "failures": stats.failures,
                "seconds": round(stats.seconds, 6),
                "inputs_per_second": round(stats.inputs_per_second, 1),
            }
        )
    return report, rows


def test_fuzz_throughput(benchmark):
    report, rows = benchmark.pedantic(run_fuzz_sweep, rounds=1, iterations=1)
    assert report.ok, [finding.to_dict() for finding in report.findings]
    assert {row["oracle"] for row in rows} == set(ORACLES)

    payload = {
        "budget": BUDGET,
        "base_seed": BASE_SEED,
        "wall_seconds": round(report.wall_time, 6),
        "oracles": rows,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    for row in rows:
        assert row["inputs"] > 0, f"{row['oracle']}: oracle never exercised"
        assert row["inputs_per_second"] >= MIN_INPUTS_PER_SECOND, (
            f"{row['oracle']}: {row['inputs_per_second']} inputs/s "
            f"(need >= {MIN_INPUTS_PER_SECOND})"
        )
    benchmark.extra_info["oracles"] = rows

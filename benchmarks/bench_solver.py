"""Solver-core benchmark: flat arena vs. reference objects.

Two workloads, both with a built-in equivalence check:

* **Raw enumeration** — the largest curated instance
  (network_firewall) is ground once, translated into each core, and
  ``MODEL_CAP`` answer sets are enumerated with blocking clauses.  No
  theory propagators and no dominance constraints run, so this isolates
  the CDNL hot path (propagate / analyze / backtrack).  The two cores
  take bit-identical trajectories here — same decision and conflict
  counts, propagations equal up to a handful of pre-conflict enqueues —
  which makes conflicts/sec and propagations/sec directly comparable.
  Wall time is the best of ``REPEATS`` runs.
* **End-to-end** — ``python -m repro.dse``'s exact explorer over every
  curated workload in both cores, asserting the Pareto fronts are
  bit-identical (sequentially and with ``jobs=2``).

The ISSUE targeted >= 3x conflicts/sec; that assumed C-like
cache-locality wins which CPython does not deliver — both cores are
interpreter-dispatch-bound, and the reference solver is already a
competent pure-Python CDCL.  Measured reality on this machine: ~1.2x
boolean-propagation throughput on raw enumeration and 1.2–1.9x
end-to-end on the curated suite (see docs/SOLVER.md for the analysis).
The assertions below encode defensible floors: the flat core must not
lose to the reference on boolean-propagation time on the largest
instance, and every front must match exactly.  Numbers land in
``BENCH_solver.json`` next to the repository root.
"""

import json
from pathlib import Path
from time import perf_counter

from repro.asp.completion import translate
from repro.asp.control import ground_text
from repro.asp.flatsolver import FlatSolver
from repro.asp.solver import Solver
from repro.dse.explorer import ExactParetoExplorer
from repro.dse.parallel import ParallelParetoExplorer
from repro.synthesis.encoding import encode
from repro.workloads.curated import CURATED_NAMES, curated

REPEATS = 3
END_TO_END_REPEATS = 2
LARGEST = "network_firewall"
MODEL_CAP = 2000
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_solver.json"

CORES = {"reference": Solver, "flat": FlatSolver}


def _enumerate_raw(solver_cls, program, cap):
    """Enumerate up to ``cap`` models of ``program`` with blocking clauses."""
    solver = solver_cls()
    translate(program, solver)
    models = 0
    started = perf_counter()
    while models < cap and solver.solve().satisfiable:
        models += 1
        blocking = [-lit for lit in solver.model()]
        solver.reset_to_root()
        if not blocking or not solver.add_clause(blocking):
            break
    wall = perf_counter() - started
    return wall, models, solver.stats


def _raw_enumeration_row():
    program = ground_text(encode(curated(LARGEST)).program)
    row = {"instance": LARGEST, "model_cap": MODEL_CAP}
    outcomes = {}
    for core, solver_cls in CORES.items():
        best_wall, best_stats, models = None, None, None
        for _ in range(REPEATS):
            wall, count, stats = _enumerate_raw(solver_cls, program, MODEL_CAP)
            if best_wall is None or wall < best_wall:
                best_wall, best_stats, models = wall, stats, count
        outcomes[core] = (models, best_stats.conflicts, best_stats.decisions)
        row[core] = {
            "models": models,
            "conflicts": best_stats.conflicts,
            "propagations": best_stats.propagations,
            "restarts": best_stats.restarts,
            "clause_db_bytes": best_stats.clause_db_bytes,
            "wall_seconds": round(best_wall, 6),
            "boolean_seconds": round(best_stats.time_boolean, 6),
            "conflicts_per_second": round(best_stats.conflicts / best_wall, 1),
            "propagations_per_second": round(
                best_stats.propagations / best_wall, 1
            ),
        }
    # With no theory propagation in the loop the trajectories are
    # bit-identical at every decision and conflict, so those counters
    # must agree exactly.  Propagation counts may differ by a handful:
    # the flat core drains binary implications before long clauses, so
    # it can enqueue a few extra literals in the instant before a
    # conflict is detected.
    assert outcomes["reference"] == outcomes["flat"], (
        f"raw enumeration trajectories diverged: {outcomes}"
    )
    drift = abs(
        row["reference"]["propagations"] - row["flat"]["propagations"]
    )
    assert drift <= outcomes["flat"][1], (
        f"propagation counts drifted by {drift} (conflicts: "
        f"{outcomes['flat'][1]})"
    )
    row["speedup_wall"] = round(
        row["reference"]["wall_seconds"] / row["flat"]["wall_seconds"], 3
    )
    row["speedup_boolean"] = round(
        row["reference"]["boolean_seconds"] / row["flat"]["boolean_seconds"], 3
    )
    return row


def _explore(name, core):
    started = perf_counter()
    result = ExactParetoExplorer(encode(curated(name)), solver_core=core).run()
    return perf_counter() - started, result


def _end_to_end_rows():
    rows = []
    for name in CURATED_NAMES:
        row = {"instance": name}
        fronts = {}
        for core in CORES:
            best_wall, result = None, None
            for _ in range(END_TO_END_REPEATS):
                wall, outcome = _explore(name, core)
                if best_wall is None or wall < best_wall:
                    best_wall, result = wall, outcome
            fronts[core] = [point.vector for point in result.front]
            stats = result.statistics
            assert stats.solver_core == core
            row[core] = {
                "wall_seconds": round(best_wall, 6),
                "conflicts": stats.conflicts,
                "propagations": stats.propagations,
                "restarts": stats.restarts,
                "clause_db_bytes": stats.clause_db_bytes,
                "models_enumerated": stats.models_enumerated,
            }
        assert fronts["reference"] == fronts["flat"], (
            f"{name}: sequential Pareto fronts differ between cores"
        )
        parallel_fronts = {}
        for core in CORES:
            result = ParallelParetoExplorer(
                encode(curated(name)), jobs=2, backend="inline",
                solver_core=core,
            ).run()
            parallel_fronts[core] = sorted(
                point.vector for point in result.front
            )
        assert parallel_fronts["reference"] == parallel_fronts["flat"], (
            f"{name}: jobs=2 Pareto fronts differ between cores"
        )
        row["front_points"] = len(fronts["flat"])
        row["speedup_wall"] = round(
            row["reference"]["wall_seconds"] / row["flat"]["wall_seconds"], 3
        )
        rows.append(row)
    return rows


def run_solver_comparison():
    return {
        "raw_enumeration": _raw_enumeration_row(),
        "end_to_end": _end_to_end_rows(),
    }


def test_solver_core_speedup(benchmark):
    report = benchmark.pedantic(run_solver_comparison, rounds=1, iterations=1)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    raw = report["raw_enumeration"]
    assert raw["flat"]["conflicts"] > 0
    assert raw["speedup_boolean"] >= 1.0, (
        f"flat core lost on boolean propagation: {raw['speedup_boolean']}x"
    )
    assert {row["instance"] for row in report["end_to_end"]} == set(
        CURATED_NAMES
    )
    benchmark.extra_info["raw_enumeration"] = raw
    benchmark.extra_info["end_to_end"] = report["end_to_end"]

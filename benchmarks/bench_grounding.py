"""Grounding benchmark: naive vs. semi-naive on the curated suite.

For every curated workload the instance encoding is parsed and ground
in both modes; the per-mode wall time is the best of ``REPEATS`` runs
(parse included each time so both modes pay the same fixed cost).
Shape claims: the ground rule sets are bit-identical in every mode, and
on the largest curated instance (network_firewall) the semi-naive
grounder with argument-indexed joins is at least 2x faster than the
naive fixpoint.  The per-instance numbers are written to
``BENCH_grounding.json`` next to the repository root and ride along in
``extra_info`` for ``--benchmark-json``.
"""

import json
from pathlib import Path
from time import perf_counter

from repro.asp.grounder import Grounder
from repro.asp.parser import parse_program
from repro.synthesis.encoding import encode
from repro.workloads.curated import CURATED_NAMES, curated

REPEATS = 3
LARGEST = "network_firewall"
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_grounding.json"


def _time_mode(text: str, mode: str):
    best = None
    outcome = None
    for _ in range(REPEATS):
        started = perf_counter()
        grounder = Grounder(parse_program(text), mode=mode)
        rules = grounder.ground()
        elapsed = perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
        outcome = (
            frozenset(str(rule) for rule in rules),
            grounder.statistics.instantiations,
            grounder.statistics.delta_rounds,
        )
    return best, outcome


def run_grounding_comparison():
    rows = []
    for name in CURATED_NAMES:
        text = encode(curated(name)).program
        naive_time, naive_out = _time_mode(text, "naive")
        semi_time, semi_out = _time_mode(text, "seminaive")
        assert naive_out[0] == semi_out[0], f"{name}: ground programs differ"
        rows.append(
            {
                "instance": name,
                "rules": len(naive_out[0]),
                "naive_seconds": round(naive_time, 6),
                "seminaive_seconds": round(semi_time, 6),
                "speedup": round(naive_time / semi_time, 3),
                "instantiations": semi_out[1],
                "delta_rounds": semi_out[2],
            }
        )
    return rows


def test_grounding_speedup(benchmark):
    rows = benchmark.pedantic(run_grounding_comparison, rounds=1, iterations=1)
    assert {row["instance"] for row in rows} == set(CURATED_NAMES)
    OUTPUT.write_text(json.dumps(rows, indent=2) + "\n")

    largest = next(row for row in rows if row["instance"] == LARGEST)
    assert largest["speedup"] >= 2.0, (
        f"semi-naive speedup on {LARGEST}: {largest['speedup']}x (need >= 2x)"
    )
    benchmark.extra_info["rows"] = rows

"""Domain-pruning benchmark: grounding effort with the analysis on/off.

Grounds curated DSE encodings with ``Grounder(domain_prune=...)`` off
vs. on and writes the table plus headline ratios to
``BENCH_domains.json`` at the repository root.

The pruning wins come from eagerly evaluated comparison guards: the
serialization and link-contention rules join symmetric pairs
(``conflict(T1, T2) :- bind(T1, R), bind(T2, R), T1 < T2`` and the
``clash/2`` analogue) and the analysis rejects the ``T1 >= T2`` half
of each join before the head is instantiated.  Instantiation counts
are deterministic, so the floor is asserted on the best
instantiation-reduction ratio (wall clock is recorded for the table
but only asserted through a soft, noise-tolerant OR-floor as the
acceptance contract requires: >= 1.3x fewer instantiations *or*
>= 1.15x faster grounding on at least one configuration).

Output equality rides along: every configuration must ground to the
identical rule set and atom universe with pruning on and off (the
``domain-soundness`` fuzz oracle enforces the same contract on random
programs).
"""

import json
import time
from pathlib import Path

from repro.asp.grounder import Grounder
from repro.asp.parser import parse_program
from repro.synthesis.encoding import encode
from repro.workloads.curated import curated

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_domains.json"

#: (instance, encode kwargs) configurations measured; the heavier
#: scheduling variants are where the guard pruning has joins to cut.
CONFIGS = (
    ("consumer_jpeg", {"link_contention": True}),
    ("auto_engine", {"serialize": True, "link_contention": True}),
    ("network_firewall", {"serialize": True}),
    ("network_firewall", {"serialize": True, "link_contention": True}),
)

INSTANTIATION_FLOOR = 1.3
WALL_FLOOR = 1.15


def ground_once(program_text: str, domain_prune: bool):
    grounder = Grounder(parse_program(program_text), domain_prune=domain_prune)
    started = time.perf_counter()
    rules = grounder.ground()
    wall = time.perf_counter() - started
    return grounder, rules, wall


def run_domain_comparison():
    rows = []
    for name, kwargs in CONFIGS:
        instance = encode(
            curated(name), objectives=("latency", "energy", "cost"), **kwargs
        )
        off, off_rules, off_wall = ground_once(instance.program, False)
        on, on_rules, on_wall = ground_once(instance.program, True)
        assert [str(r) for r in off_rules] == [str(r) for r in on_rules], (
            f"{name}: pruning changed the ground rule set"
        )
        assert off.possible_atoms == on.possible_atoms
        assert off.fact_atoms == on.fact_atoms
        rows.append(
            {
                "instance": name,
                "config": {key: True for key in kwargs},
                "instantiations_off": off.statistics.instantiations,
                "instantiations_on": on.statistics.instantiations,
                "instantiation_reduction": round(
                    off.statistics.instantiations
                    / max(on.statistics.instantiations, 1),
                    3,
                ),
                "pruned_instances": on.statistics.pruned_instances,
                "rules_skipped": on.statistics.rules_skipped,
                "ground_rules": len(on_rules),
                "wall_off_s": round(off_wall, 4),
                "wall_on_s": round(on_wall, 4),
                "wall_reduction": round(off_wall / max(on_wall, 1e-9), 3),
                "analysis_s": round(on.statistics.domain_seconds, 6),
            }
        )
    return rows


def test_domain_pruning_floor(benchmark):
    rows = benchmark.pedantic(run_domain_comparison, rounds=1, iterations=1)

    best_instantiation = max(row["instantiation_reduction"] for row in rows)
    best_wall = max(row["wall_reduction"] for row in rows)
    assert (
        best_instantiation >= INSTANTIATION_FLOOR or best_wall >= WALL_FLOOR
    ), (
        f"domain pruning below both floors: best instantiation reduction "
        f"{best_instantiation}x (floor {INSTANTIATION_FLOOR}x), best wall "
        f"reduction {best_wall}x (floor {WALL_FLOOR}x)"
    )
    # Every configuration must at least do *some* pruning work.
    assert all(row["pruned_instances"] > 0 for row in rows)

    report = {
        "rows": rows,
        "headline": {
            "best_instantiation_reduction": best_instantiation,
            "best_wall_reduction": best_wall,
            "floors": {
                "instantiation_reduction": INSTANTIATION_FLOOR,
                "wall_reduction": WALL_FLOOR,
            },
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["headline"] = report["headline"]

"""Fig. 6 benchmark (extension): objective-aware decision phases.

Shape claim: the heuristic is an optimization only — the computed front
is identical with and without it.
"""

from repro.bench.experiments import fig6_heuristics


def test_fig6_heuristics(benchmark, budget):
    columns, rows = benchmark.pedantic(
        fig6_heuristics,
        kwargs={"suites": ("tiny",), "conflict_limit": budget},
        rounds=1,
        iterations=1,
    )
    by_instance = {}
    for row in rows:
        by_instance.setdefault(row["instance"], {})[row["phases"]] = row
    for name, variants in by_instance.items():
        assert variants[True]["pareto"] == variants[False]["pareto"], name

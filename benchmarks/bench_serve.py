"""Load/soak driver for the DSE serving layer.

Builds a seeded, duplicate-heavy request stream from the fuzz spec
generators (``repro.fuzz.generators``): a handful of distinct admissible
specifications, each appearing many times — half of the repeats as
renamed isomorphic twins, the way real clients resubmit the same design
under their own naming schemes.  A fixed pool of concurrent JSON-lines
clients drives the stream through a live server and measures per-request
latency.

Asserted floors (the PR-10 acceptance criteria; also enforced in CI's
30-second soak):

* zero protocol errors and zero failed requests,
* cache hit rate (cache hits + coalesced joins, over all requests)
  >= 0.5 on the duplicate-heavy stream,
* request coalescing verified: ``solves_started`` strictly below the
  request count.

Latency percentiles are recorded, not asserted (machine-dependent).
Numbers land in ``BENCH_serve.json`` next to the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # quick
    PYTHONPATH=src python benchmarks/bench_serve.py --soak 30  # CI soak
"""

import argparse
import asyncio
import json
import random
from collections import deque
from pathlib import Path
from time import monotonic, perf_counter

from repro.fuzz.generators import generate_spec
from repro.fuzz.oracles import _rename_spec
from repro.serve import DseServer, ServeClient, ServerConfig
from repro.serve.admission import admit
from repro.synthesis.io import specification_to_dict

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: Keep individual solves snappy so the benchmark exercises the serving
#: layer, not the solver.
MAX_BINDING_SPACE = 64


def build_workload(distinct: int, requests: int, seed: int):
    """A deterministic duplicate-heavy request stream."""
    rng = random.Random(f"bench-serve-{seed}")
    pool = []
    candidate = 0
    while len(pool) < distinct and candidate < 2000:
        spec_input = generate_spec(candidate)
        candidate += 1
        spec = spec_input.specification
        if spec.binding_space_size() > MAX_BINDING_SPACE:
            continue
        if not admit(spec, spec_input.objectives).admitted:
            continue
        pool.append(spec_input)
    if len(pool) < distinct:
        raise RuntimeError("not enough admissible generated specs")
    stream = []
    for _ in range(requests):
        spec_input = rng.choice(pool)
        spec = spec_input.specification
        if rng.random() < 0.5:
            # Renamed isomorphic twin: must hit the same cache entry.
            spec = _rename_spec(spec, f"x{rng.randrange(3)}")
        stream.append(
            {
                "spec": specification_to_dict(spec),
                "objectives": list(spec_input.objectives),
                "options": {"latency_bound": spec_input.latency_bound},
            }
        )
    return stream


async def drive(stream, concurrency: int, soak_seconds: float):
    server = DseServer(
        ServerConfig(port=0, solve_workers=2, cache_size=256)
    )
    host, port = await server.start()
    pending = deque(stream)
    deadline = None if soak_seconds <= 0 else monotonic() + soak_seconds
    latencies = []
    failures = []

    async def client_loop():
        client = await ServeClient.connect(host, port)
        try:
            while True:
                if deadline is not None and monotonic() >= deadline:
                    break
                try:
                    request = pending.popleft()
                except IndexError:
                    if deadline is None:
                        break
                    pending.extend(stream)  # soak: replay the stream
                    continue
                started = perf_counter()
                try:
                    outcome = await client.solve(
                        request["spec"],
                        objectives=request["objectives"],
                        options=request["options"],
                    )
                    if not outcome.ok:
                        failures.append(str(outcome.cancelled or outcome.error))
                except Exception as error:  # protocol-level failure
                    failures.append(f"{type(error).__name__}: {error}")
                latencies.append(perf_counter() - started)
        finally:
            await client.close()

    started = monotonic()
    await asyncio.gather(*(client_loop() for _ in range(concurrency)))
    elapsed = monotonic() - started
    stats = server.stats()
    await server.shutdown()
    return latencies, failures, stats, elapsed


def percentile(values, fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--distinct", type=int, default=6)
    parser.add_argument("--requests", type=int, default=80)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--soak",
        type=float,
        default=0.0,
        help="run for this many seconds, replaying the stream (0 = one pass)",
    )
    args = parser.parse_args(argv)

    stream = build_workload(args.distinct, args.requests, args.seed)
    latencies, failures, stats, elapsed = asyncio.run(
        drive(stream, args.concurrency, args.soak)
    )

    counters = stats["counters"]
    requests = counters["requests"]
    hits = counters["cache_hits"] + counters["coalesced"]
    hit_rate = hits / requests if requests else 0.0
    report = {
        "workload": {
            "distinct_specs": args.distinct,
            "stream_length": args.requests,
            "concurrency": args.concurrency,
            "seed": args.seed,
            "soak_seconds": args.soak,
        },
        "requests": requests,
        "completed": len(latencies),
        "elapsed_seconds": round(elapsed, 3),
        "throughput_rps": round(len(latencies) / elapsed, 2) if elapsed else 0.0,
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1000, 2),
            "p95": round(percentile(latencies, 0.95) * 1000, 2),
            "max": round(max(latencies) * 1000, 2) if latencies else 0.0,
        },
        "cache_hit_rate": round(hit_rate, 4),
        "solves_started": counters["solves_started"],
        "counters": counters,
        "cache": stats["cache"],
        "failures": len(failures),
        "floors": {
            "protocol_errors": 0,
            "failures": 0,
            "min_cache_hit_rate": 0.5,
            "solves_strictly_below_requests": True,
        },
    }
    print(json.dumps(report, indent=2, sort_keys=True))

    problems = []
    if failures:
        problems.append(f"{len(failures)} failed requests: {failures[:3]}")
    if counters["protocol_errors"]:
        problems.append(f"{counters['protocol_errors']} protocol errors")
    if hit_rate < 0.5:
        problems.append(f"cache hit rate {hit_rate:.2f} below the 0.5 floor")
    if not counters["solves_started"] < requests:
        problems.append("coalescing unverified: solves_started >= requests")
    if problems:
        print("FLOOR VIOLATIONS:\n  " + "\n  ".join(problems))
        return 1
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

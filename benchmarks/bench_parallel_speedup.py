"""Parallel speedup benchmark (extension): elastic scheduler + archive.

Records 1/2/4-worker wall times on curated workloads for both cube
schedulers (``static`` round-robin shares vs. elastic ``stealing``) with
the shared dominance archive on and off, and writes the table plus the
headline ratios to ``BENCH_parallel.json`` at the repository root.

The ISSUE targeted >= 3x wall time vs. the sequential explorer at 4
workers; that assumes 4 cores, and the benchmark suite runs the
deterministic *inline* backend (and frequently a single-core CI box), so
workers timeshare one interpreter and a vs-sequential wall-time ratio
above 1 is not measurable here — parallelism overhead even makes it
< 1.  What *is* measurable, deterministic, and machine-independent is
the amount of solver work each scheduling policy needs: the inline
backend replays bit-identical trajectories, so model/conflict counts are
exact.  The assertions below therefore encode defensible floors in the
same spirit as ``bench_solver.py`` (see docs/PARALLEL.md for the full
analysis):

* every configuration reproduces the sequential front exactly;
* archive sharing never enumerates more models than isolation at equal
  worker count and scheduler;
* the elastic scheduler needs fewer conflicts than static shares at
  every (jobs, share) point on the hardest curated instance, by >= 1.2x
  at 4 workers (measured ~1.4-1.6x);
* wall time follows the work: stealing beats static at 4 workers on the
  hardest instance, and the full elastic stack (stealing + sharing) is
  >= 1.5x over the static/isolated baseline at 4 workers (measured
  ~2.1x; the pre-PR scheduler capped near 1.7x via sharing alone);
* adaptive re-splitting triggers under a tight budget and stays exact.

Per-worker statistics ride along in ``extra_info`` and in the
pytest-benchmark JSON output (``--benchmark-json``).
"""

import json
from pathlib import Path

from repro.bench.experiments import fig10_parallel
from repro.dse.parallel import ParallelParetoExplorer
from repro.synthesis.encoding import encode
from repro.workloads.curated import curated

LARGEST = "network_firewall"
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

#: Floors, deliberately below the measured ratios so scheduler-neutral
#: machine noise cannot flip them (measured values in BENCH_parallel.json).
CONFLICT_FLOOR_4W = 1.2
ELASTIC_WALL_FLOOR_4W = 1.5


def _resplit_probe(budget):
    """Force re-splitting with a tight per-cube budget; exactness holds."""
    result = ParallelParetoExplorer(
        encode(curated(LARGEST)),
        jobs=2,
        split_depth=1,
        backend="inline",
        schedule="stealing",
        chunk_conflicts=25,
        resplit_conflicts=50,
        conflict_limit=budget,
        validate_models=False,
    ).run()
    stats = result.statistics
    return {
        "instance": LARGEST,
        "resplit_conflicts": 50,
        "resplits": stats.resplits,
        "cubes_executed": stats.cubes_executed,
        "steals": stats.steals,
        "front": [list(point.vector) for point in result.front],
        "exact": not stats.interrupted,
    }


def run_parallel_comparison(budget):
    columns, rows = fig10_parallel(conflict_limit=budget)
    return columns, rows, _resplit_probe(budget)


def test_parallel_speedup(benchmark, budget):
    columns, rows, probe = benchmark.pedantic(
        run_parallel_comparison,
        kwargs={"budget": budget},
        rounds=1,
        iterations=1,
    )
    by_instance = {}
    for row in rows:
        by_instance.setdefault(row["instance"], []).append(row)
    assert set(by_instance) == {"consumer_jpeg", "network_firewall"}

    for name, variants in by_instance.items():
        sequential = variants[0]
        assert sequential["jobs"] == 1
        isolated = {}
        for row in variants:
            assert row["exact"], (name, row["jobs"], row["schedule"])
            # Exactness: identical front vectors in every configuration.
            assert row["front"] == sequential["front"], (name, row["jobs"])
            assert row["pareto"] == sequential["pareto"]
            if row["jobs"] > 1:
                assert len(row["per_worker"]) >= 1
                for worker in row["per_worker"]:
                    assert worker["models_enumerated"] >= 0
                    assert worker["wall_time"] >= 0
            key = (row["jobs"], row["schedule"])
            if row["share"] == "no":
                isolated[key] = row
            elif row["share"] == "yes":
                # Cooperative pruning never enumerates more models.
                assert row["models"] <= isolated[key]["models"], (name, key)

    firewall = {
        (r["jobs"], r["schedule"], r["share"]): r
        for r in by_instance[LARGEST]
    }

    # The elastic scheduler must do measurably less solver work than the
    # static shares at 4 workers (deterministic counts, inline backend).
    conflict_ratios = {}
    for share in ("no", "yes"):
        static = firewall[(4, "static", share)]
        elastic = firewall[(4, "stealing", share)]
        ratio = static["conflicts"] / max(elastic["conflicts"], 1)
        conflict_ratios[share] = round(ratio, 3)
        assert ratio >= CONFLICT_FLOOR_4W, (
            f"stealing/{share}: conflict reduction {ratio:.2f}x "
            f"below floor {CONFLICT_FLOOR_4W}x"
        )
        assert elastic["steals"] > 0, "4-worker stealing run never stole"

    # Wall time follows the work: the full elastic stack over the
    # static/isolated baseline at 4 workers.
    baseline = firewall[(4, "static", "no")]["time_s"]
    elastic = firewall[(4, "stealing", "yes")]["time_s"]
    elastic_x = round(baseline / elastic, 3)
    assert elastic_x >= ELASTIC_WALL_FLOOR_4W, (
        f"elastic stack speedup at 4 workers: {elastic_x}x "
        f"(floor {ELASTIC_WALL_FLOOR_4W}x)"
    )

    # Re-splitting under a tight budget actually triggers and stays exact.
    assert probe["resplits"] > 0
    assert probe["exact"]
    assert probe["front"] == [
        list(v) for v in by_instance[LARGEST][0]["front"]
    ]

    report = {
        "columns": [c for c in columns],
        "rows": [
            {key: value for key, value in row.items() if key != "front"}
            for row in rows
        ],
        "resplit_probe": {
            key: value for key, value in probe.items() if key != "front"
        },
        "headline": {
            "conflict_reduction_4w": conflict_ratios,
            "elastic_stack_x_4w": elastic_x,
            "floors": {
                "conflict_reduction_4w": CONFLICT_FLOOR_4W,
                "elastic_stack_x_4w": ELASTIC_WALL_FLOOR_4W,
            },
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    benchmark.extra_info["rows"] = report["rows"]
    benchmark.extra_info["headline"] = report["headline"]

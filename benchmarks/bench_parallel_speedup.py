"""Parallel speedup benchmark (extension): subspace workers + archive.

Records 1/2/4-worker wall times on curated workloads with the shared
dominance archive on and off.  Shape claims: every configuration
reproduces the sequential front exactly; sharing never enumerates more
models than isolation at equal worker count; on the largest curated
instance (network_firewall) the shared archive yields at least a 1.5x
wall-time speedup over isolated archives at 4 workers.  Per-worker
statistics ride along in ``extra_info`` and land in the pytest-benchmark
JSON output (``--benchmark-json``)."""

from repro.bench.experiments import fig10_parallel


def test_parallel_speedup(benchmark, budget):
    columns, rows = benchmark.pedantic(
        fig10_parallel,
        kwargs={"conflict_limit": budget},
        rounds=1,
        iterations=1,
    )
    by_instance = {}
    for row in rows:
        by_instance.setdefault(row["instance"], []).append(row)
    assert set(by_instance) == {"consumer_jpeg", "network_firewall"}

    for name, variants in by_instance.items():
        sequential = variants[0]
        assert sequential["jobs"] == 1
        for row in variants:
            assert row["exact"], (name, row["jobs"], row["share"])
            # Exactness: identical front vectors in every configuration.
            assert row["front"] == sequential["front"], (name, row["jobs"])
            assert row["pareto"] == sequential["pareto"]
            if row["jobs"] > 1:
                assert len(row["per_worker"]) >= 1
                for worker in row["per_worker"]:
                    assert worker["models_enumerated"] >= 0
                    assert worker["wall_time"] >= 0
        shared = {
            r["jobs"]: r for r in variants if r["share"] == "yes"
        }
        isolated = {
            r["jobs"]: r for r in variants if r["share"] == "no"
        }
        for jobs, row in shared.items():
            # Cooperative pruning never enumerates more models.
            assert row["models"] <= isolated[jobs]["models"], (name, jobs)

    # The headline: >= 1.5x from archive sharing at 4 workers on the
    # largest curated instance.
    firewall = {
        (r["jobs"], r["share"]): r for r in by_instance["network_firewall"]
    }
    speedup = firewall[(4, "yes")]["share_x"]
    assert speedup >= 1.5, f"shared-archive speedup at 4 workers: {speedup}"

    benchmark.extra_info["rows"] = [
        {key: value for key, value in row.items() if key != "front"}
        for row in rows
    ]

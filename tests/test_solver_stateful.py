"""Stateful (model-based) testing of the incremental solver.

Hypothesis drives random interleavings of the operations the DSE loop
performs — adding clauses, solving with/without assumptions, resetting —
against a reference implementation that tracks the clause set and
answers by brute force.  Invariants:

* satisfiability always matches the reference,
* returned models always satisfy every added clause,
* once UNSAT without assumptions, the solver stays UNSAT.
"""

import itertools

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.asp.solver import Solver

N_VARS = 5


def reference_satisfiable(clauses, assumptions=()):
    for bits in itertools.product([False, True], repeat=N_VARS):
        if any(bits[abs(l) - 1] != (l > 0) for l in assumptions):
            continue
        if all(any(bits[abs(l) - 1] == (l > 0) for l in clause) for clause in clauses):
            return True
    return False


class SolverMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.solver = Solver()
        for _ in range(N_VARS):
            self.solver.new_var()
        self.clauses = []
        self.dead = False  # solver reported permanent UNSAT

    @rule(
        clause=st.lists(
            st.tuples(st.integers(1, N_VARS), st.booleans()),
            min_size=1,
            max_size=3,
        )
    )
    def add_clause(self, clause):
        lits = [v if pos else -v for v, pos in clause]
        self.clauses.append(lits)
        self.solver.reset_to_root()
        alive = self.solver.add_clause(lits)
        if not alive:
            self.dead = True

    @rule()
    def solve_plain(self):
        result = self.solver.solve()
        expected = reference_satisfiable(self.clauses)
        got = result.satisfiable and not self.dead
        assert got == expected, self.clauses
        if got:
            for clause in self.clauses:
                assert any(self.solver.value(l) is True for l in clause)

    @rule(
        assumptions=st.lists(
            st.tuples(st.integers(1, N_VARS), st.booleans()),
            min_size=1,
            max_size=2,
        )
    )
    def solve_with_assumptions(self, assumptions):
        lits = [v if pos else -v for v, pos in assumptions]
        if any(-l in lits for l in lits):
            return  # contradictory assumption pair: allowed but trivial
        result = self.solver.solve(lits)
        expected = reference_satisfiable(self.clauses, lits)
        got = result.satisfiable and not self.dead
        assert got == expected, (self.clauses, lits)

    @rule()
    def block_current_model(self):
        if self.dead:
            return
        result = self.solver.solve()
        if not result.satisfiable:
            self.dead = True
            return
        model = [
            (v if self.solver.value(v) else -v) for v in range(1, N_VARS + 1)
        ]
        blocking = [-l for l in model]
        self.clauses.append(blocking)
        self.solver.reset_to_root()
        if not self.solver.add_clause(blocking):
            self.dead = True

    @invariant()
    def dead_means_reference_unsat(self):
        if self.dead:
            assert not reference_satisfiable(self.clauses)


TestSolverMachine = SolverMachine.TestCase
TestSolverMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)

"""Property-based tests for the CDCL core against a brute-force oracle."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asp.solver import Solver

N_VARS = 6


@st.composite
def cnf(draw):
    n_clauses = draw(st.integers(1, 18))
    clauses = []
    for _ in range(n_clauses):
        width = draw(st.integers(1, 3))
        clause = draw(
            st.lists(
                st.tuples(st.integers(1, N_VARS), st.booleans()),
                min_size=width,
                max_size=width,
            )
        )
        clauses.append([v if pos else -v for v, pos in clause])
    return clauses


def oracle_models(clauses):
    models = []
    for bits in itertools.product([False, True], repeat=N_VARS):
        ok = True
        for clause in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            models.append(bits)
    return models


def build_solver(clauses):
    solver = Solver()
    for _ in range(N_VARS):
        solver.new_var()
    alive = True
    for clause in clauses:
        alive = solver.add_clause(clause) and alive
    return solver, alive


@settings(max_examples=150, deadline=None)
@given(cnf())
def test_sat_matches_brute_force(clauses):
    solver, alive = build_solver(clauses)
    expected = bool(oracle_models(clauses))
    got = alive and solver.solve().satisfiable
    assert got == expected, clauses


@settings(max_examples=80, deadline=None)
@given(cnf())
def test_models_satisfy_all_clauses(clauses):
    solver, alive = build_solver(clauses)
    if not alive or not solver.solve().satisfiable:
        return
    for clause in clauses:
        assert any(solver.value(l) is True for l in clause), clauses


@settings(max_examples=60, deadline=None)
@given(cnf())
def test_enumeration_finds_every_model(clauses):
    solver, alive = build_solver(clauses)
    expected = {tuple(m) for m in oracle_models(clauses)}
    got = set()
    while alive and solver.solve().satisfiable:
        model = tuple(solver.value(v) for v in range(1, N_VARS + 1))
        got.add(model)
        solver.reset_to_root()
        blocking = [(-v if model[v - 1] else v) for v in range(1, N_VARS + 1)]
        if not solver.add_clause(blocking):
            break
    assert got == expected, clauses


@settings(max_examples=60, deadline=None)
@given(cnf(), st.lists(st.integers(1, N_VARS), min_size=1, max_size=3))
def test_assumptions_match_brute_force(clauses, assumed):
    solver, alive = build_solver(clauses)
    assumptions = sorted({v for v in assumed})
    expected = any(
        all(bits[v - 1] for v in assumptions) for bits in oracle_models(clauses)
    )
    got = alive and solver.solve([v for v in assumptions]).satisfiable
    assert got == expected, (clauses, assumptions)


@settings(max_examples=40, deadline=None)
@given(cnf())
def test_solver_reusable_after_unsat_assumptions(clauses):
    solver, alive = build_solver(clauses)
    if not alive:
        return
    baseline = solver.solve().satisfiable
    solver.solve([1, -1])  # contradictory assumptions
    assert solver.solve().satisfiable == baseline

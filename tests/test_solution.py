"""Tests for decoding/validation (repro.synthesis.solution)."""

from repro.synthesis.model import (
    Application,
    Architecture,
    Link,
    MappingOption,
    Message,
    Resource,
    Specification,
    Task,
)
from repro.synthesis.solution import Implementation, recompute_objectives, validate


def diamond_spec():
    app = Application(
        tasks=(Task("a"), Task("b"), Task("c")),
        messages=(Message("m0", "a", "b", size=2), Message("m1", "a", "c")),
    )
    resources = (Resource("r0", cost=2), Resource("r1", cost=3), Resource("r2", cost=5))
    links = (
        Link("l01", "r0", "r1", delay=1, energy=2),
        Link("l10", "r1", "r0", delay=1, energy=2),
        Link("l12", "r1", "r2", delay=2, energy=1),
        Link("l21", "r2", "r1", delay=2, energy=1),
    )
    mappings = (
        MappingOption("a", "r0", wcet=2, energy=1),
        MappingOption("b", "r1", wcet=3, energy=2),
        MappingOption("b", "r0", wcet=5, energy=1),
        MappingOption("c", "r2", wcet=1, energy=4),
    )
    return Specification(app, Architecture(resources, links), mappings)


def valid_impl():
    return Implementation(
        binding={"a": "r0", "b": "r1", "c": "r2"},
        routes={"m0": ["l01"], "m1": ["l01", "l12"]},
    )


class TestRecompute:
    def test_latency_longest_path(self):
        spec = diamond_spec()
        impl = valid_impl()
        objectives = recompute_objectives(spec, impl)
        # a: start 0, wcet 2. m0 delay = 1*2=2 -> b starts 4, ends 7.
        # m1 delay = (1+2)*1=3 -> c starts 5, ends 6.
        assert objectives["latency"] == 7

    def test_energy_sums_bindings_and_hops(self):
        spec = diamond_spec()
        objectives = recompute_objectives(spec, valid_impl())
        # bindings: 1+2+4; m0: l01 energy 2*size2=4; m1: 2+1=3.
        assert objectives["energy"] == 7 + 4 + 3

    def test_cost_counts_allocated_once(self):
        spec = diamond_spec()
        objectives = recompute_objectives(spec, valid_impl())
        assert objectives["cost"] == 2 + 3 + 5

    def test_cost_without_routing_through_extra(self):
        spec = diamond_spec()
        impl = Implementation(
            binding={"a": "r0", "b": "r0", "c": "r2"},
            routes={"m0": [], "m1": ["l01", "l12"]},
        )
        objectives = recompute_objectives(spec, impl)
        assert objectives["cost"] == 2 + 3 + 5  # r1 allocated by routing


class TestValidate:
    def test_valid(self):
        spec = diamond_spec()
        impl = valid_impl()
        impl.objectives = recompute_objectives(spec, impl)
        assert validate(spec, impl) == []

    def test_unbound_task(self):
        spec = diamond_spec()
        impl = valid_impl()
        del impl.binding["c"]
        assert any("unbound" in p for p in validate(spec, impl))

    def test_invalid_binding(self):
        spec = diamond_spec()
        impl = valid_impl()
        impl.binding["a"] = "r2"  # no such option
        assert any("invalid resource" in p for p in validate(spec, impl))

    def test_broken_route(self):
        spec = diamond_spec()
        impl = valid_impl()
        impl.routes["m0"] = ["l12"]  # starts at the wrong resource
        assert any("broken route" in p for p in validate(spec, impl))

    def test_route_missing_target(self):
        spec = diamond_spec()
        impl = valid_impl()
        impl.routes["m1"] = ["l01"]  # stops at r1, target is r2
        assert any("ends at" in p for p in validate(spec, impl))

    def test_route_cycle_rejected(self):
        spec = diamond_spec()
        impl = valid_impl()
        impl.routes["m0"] = ["l01", "l10", "l01"]
        assert any("revisits" in p for p in validate(spec, impl))

    def test_schedule_violation(self):
        spec = diamond_spec()
        impl = valid_impl()
        impl.schedule = {"a": 0, "b": 1, "c": 9}  # b too early (needs >= 4)
        assert any("start(b)" in p for p in validate(spec, impl))

    def test_schedule_valid(self):
        spec = diamond_spec()
        impl = valid_impl()
        impl.schedule = {"a": 0, "b": 4, "c": 5}
        assert validate(spec, impl) == []

    def test_objective_mismatch_detected(self):
        spec = diamond_spec()
        impl = valid_impl()
        impl.objectives = {"latency": 1}
        assert any("objective latency" in p for p in validate(spec, impl))

"""Tests for the ASCII renderers (repro.bench.render)."""

from repro.bench.render import render_scatter, render_series, render_table


class TestTable:
    def test_columns_aligned(self):
        text = render_table(
            "T", ["name", "value"], [{"name": "alpha", "value": 1}, {"name": "b", "value": 22}]
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        header = lines[2]
        assert "name" in header and "value" in header
        # All data rows have the same width as the header.
        assert len(lines[4]) == len(lines[2]) or lines[4].rstrip()

    def test_floats_formatted(self):
        text = render_table("T", ["x"], [{"x": 1.23456}])
        assert "1.23" in text

    def test_missing_cells_blank(self):
        text = render_table("T", ["a", "b"], [{"a": 1}])
        assert text.splitlines()[-1].startswith("1")

    def test_empty_rows(self):
        text = render_table("Empty", ["a"], [])
        assert "Empty" in text


class TestSeries:
    def test_blocks_per_series(self):
        text = render_series("S", {"one": [(1, 2)], "two": [(3, 4.5)]})
        assert "[one]" in text and "[two]" in text
        assert "4.50" in text


class TestScatter:
    def test_markers_and_legend(self):
        text = render_scatter("P", {"exact": [(0, 0), (10, 10)]}, width=20, height=5)
        assert "o=exact" in text
        assert text.count("o") >= 2

    def test_first_series_wins_overlap(self):
        text = render_scatter(
            "P", {"exact": [(5, 5)], "approx": [(5, 5)]}, width=10, height=5
        )
        grid = "\n".join(text.splitlines()[2:-2])
        assert "o" in grid
        assert "x" not in grid

    def test_empty(self):
        assert "(empty)" in render_scatter("P", {"s": []})

    def test_degenerate_single_point(self):
        text = render_scatter("P", {"s": [(3, 3)]}, width=10, height=4)
        assert "o" in text

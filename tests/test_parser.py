"""Unit tests for the ASP parser (repro.asp.parser)."""

import pytest

from repro.asp import ast
from repro.asp.parser import ParseError, parse_program, tokenize


def single_rule(text: str) -> ast.Rule:
    program = parse_program(text)
    assert len(program.rules) == 1
    return program.rules[0]


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("a :- b, not c.")]
        assert kinds == ["IDENT", ":-", "IDENT", ",", "IDENT", "IDENT", ".", "EOF"]

    def test_comments_skipped(self):
        kinds = [t.kind for t in tokenize("a. % comment\nb.")]
        assert kinds == ["IDENT", ".", "IDENT", ".", "EOF"]

    def test_interval_token(self):
        kinds = [t.kind for t in tokenize("1..3")]
        assert kinds == ["NUMBER", "..", "NUMBER", "EOF"]

    def test_line_numbers(self):
        tokens = tokenize("a.\nb.")
        assert tokens[2].line == 2

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            tokenize("a ~ b")


class TestRules:
    def test_fact(self):
        rule = single_rule("p(1).")
        assert isinstance(rule.head, ast.FunctionTerm)
        assert rule.head.name == "p"
        assert rule.body == ()

    def test_normal_rule(self):
        rule = single_rule("p(X) :- q(X), not r(X).")
        assert len(rule.body) == 2
        assert rule.body[0].sign == 0
        assert rule.body[1].sign == 1

    def test_double_negation_normalized(self):
        rule = single_rule("p :- not not q.")
        assert rule.body[0].sign == 0

    def test_constraint(self):
        rule = single_rule(":- p, q.")
        assert rule.head is None
        assert len(rule.body) == 2

    def test_comparison(self):
        rule = single_rule("p(X) :- q(X), X > 3.")
        comparison = rule.body[1].atom
        assert isinstance(comparison, ast.Comparison)
        assert comparison.op == ">"

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_program("p(1)")


class TestTerms:
    def test_arithmetic_precedence(self):
        rule = single_rule("p(1+2*3).")
        term = rule.head.arguments[0]
        assert isinstance(term, ast.BinaryTerm)
        assert term.op == "+"
        assert isinstance(term.rhs, ast.BinaryTerm)
        assert term.rhs.op == "*"

    def test_power_right_associative(self):
        rule = single_rule("p(2**3**2).")
        term = rule.head.arguments[0]
        assert term.op == "**"
        assert isinstance(term.rhs, ast.BinaryTerm)

    def test_interval(self):
        rule = single_rule("p(1..4).")
        assert isinstance(rule.head.arguments[0], ast.IntervalTerm)

    def test_anonymous_variables_distinct(self):
        rule = single_rule("p :- q(_, _).")
        args = rule.body[0].atom.arguments
        assert args[0] != args[1]

    def test_unary_minus(self):
        rule = single_rule("p(-X) :- q(X).")
        assert isinstance(rule.head.arguments[0], ast.UnaryTerm)

    def test_absolute_value(self):
        rule = single_rule("p(|X-3|) :- q(X).")
        term = rule.head.arguments[0]
        assert isinstance(term, ast.UnaryTerm)
        assert term.op == "|"


class TestChoice:
    def test_unbounded(self):
        rule = single_rule("{ a; b }.")
        head = rule.head
        assert isinstance(head, ast.ChoiceHead)
        assert head.lower is None and head.upper is None
        assert len(head.elements) == 2

    def test_bounds(self):
        rule = single_rule("1 { bind(T, R) : res(R) } 1 :- task(T).")
        head = rule.head
        assert isinstance(head, ast.ChoiceHead)
        assert head.lower is not None and head.upper is not None
        assert head.elements[0].condition[0].atom.name == "res"

    def test_lower_only(self):
        rule = single_rule("2 { a; b; c }.")
        assert rule.head.lower is not None
        assert rule.head.upper is None


class TestAggregates:
    def test_count_with_right_guard(self):
        rule = single_rule("p :- #count { X : q(X) } >= 2.")
        aggregate = rule.body[0]
        assert isinstance(aggregate, ast.Aggregate)
        assert aggregate.function == "count"
        assert aggregate.right_guard[0] == ">="

    def test_left_guard_normalized(self):
        rule = single_rule("p :- 2 <= #count { X : q(X) }.")
        aggregate = rule.body[0]
        # "2 <= agg" is normalized to "agg >= 2".
        assert aggregate.left_guard[0] == ">="

    def test_sum_with_weights(self):
        rule = single_rule("p :- #sum { W, T : w(T, W) } <= 10.")
        aggregate = rule.body[0]
        assert aggregate.function == "sum"
        assert len(aggregate.elements[0].terms) == 2

    def test_negated_aggregate(self):
        rule = single_rule("p :- not #count { X : q(X) } >= 2.")
        assert rule.body[0].sign == 1

    def test_multiple_elements(self):
        rule = single_rule("p :- #sum { 1,a : a ; 2,b : b } >= 2.")
        assert len(rule.body[0].elements) == 2


class TestTheoryAtoms:
    def test_diff_atom(self):
        rule = single_rule("&diff { start(T2) - start(T1) } >= D :- dep(T1, T2, D).")
        head = rule.head
        assert isinstance(head, ast.TheoryAtom)
        assert head.name == "diff"
        assert head.guard[0] == ">="

    def test_sum_with_condition(self):
        rule = single_rule("&sum(energy) { E, T : bind(T, R), e(T, R, E) } <= 10.")
        head = rule.head
        assert head.name == "sum"
        assert head.arguments[0].name == "energy"
        assert len(head.elements[0].condition) == 2

    def test_no_guard(self):
        rule = single_rule("&minimize { C, R : alloc(R, C) }.")
        assert rule.head.guard is None


class TestDirectives:
    def test_const(self):
        program = parse_program("#const n = 4. p(1..n).")
        assert "n" in program.constants

    def test_show_skipped(self):
        program = parse_program("#show p/1. p(1).")
        assert len(program.rules) == 1

    def test_unknown_directive(self):
        with pytest.raises(ParseError):
            parse_program("#foo bar.")


class TestErrorPositions:
    """Every ParseError carries line/column and the offending token."""

    def test_missing_dot_at_eof(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("a :- b")
        error = excinfo.value
        assert (error.line, error.column) == (1, 7)
        assert error.token == ""
        assert "expected '.'" in error.message

    def test_unsupported_directive(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("#foo bar.")
        error = excinfo.value
        assert (error.line, error.column) == (1, 1)
        assert error.token == "#foo"

    def test_garbage_character(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("a.\n?b.")
        error = excinfo.value
        assert (error.line, error.column) == (2, 1)
        assert error.token == "?"

    def test_unexpected_token(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("p(X) :~ q(X). [1@0]")
        error = excinfo.value
        assert (error.line, error.column) == (1, 6)
        assert error.token == ":~"

    def test_weak_constraint_aggregate(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("p(1).\n:~ #count { X : p(X) } > 1. [1@0]")
        error = excinfo.value
        assert (error.line, error.column) == (2, 4)
        assert error.token == "#count"
        assert "weak constraint" in error.message

    def test_ground_term_not_ground(self):
        from repro.asp.parser import parse_ground_term

        with pytest.raises(ParseError) as excinfo:
            parse_ground_term("f(X)")
        error = excinfo.value
        assert (error.line, error.column) == (1, 1)
        assert error.token == "f"

    def test_ground_term_trailing_input(self):
        from repro.asp.parser import parse_ground_term

        with pytest.raises(ParseError) as excinfo:
            parse_ground_term("1 2")
        error = excinfo.value
        assert (error.line, error.column) == (1, 3)
        assert error.token == "2"

    def test_str_mentions_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("a :- b")
        assert "line 1" in str(excinfo.value)


class TestLocations:
    """Rules and literals are stamped with their source location."""

    def test_rule_and_literal_locations(self):
        program = parse_program("a.\n  b :- not c.\nd :- e, not f.")
        first, second, third = program.rules
        assert (first.location.line, first.location.column) == (1, 1)
        assert (second.location.line, second.location.column) == (2, 3)
        # The literal location covers the `not`, not just the atom.
        assert (second.body[0].location.line, second.body[0].location.column) == (2, 8)
        assert (third.body[0].location.line, third.body[0].location.column) == (3, 6)
        assert (third.body[1].location.line, third.body[1].location.column) == (3, 9)

    def test_location_ignored_by_equality(self):
        left = parse_program("p(1) :- q(1).").rules[0]
        right = parse_program("\n\n   p(1) :- q(1).").rules[0]
        assert left == right
        assert left.location != right.location

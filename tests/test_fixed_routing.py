"""Tests for the fixed (deterministic) routing mode."""

import pytest

from repro.asp import Control
from repro.baselines import exhaustive_front
from repro.dse.explorer import ExactParetoExplorer
from repro.dse.pareto import weakly_dominates
from repro.synthesis.encoding import encode
from repro.synthesis.model import (
    Application,
    Architecture,
    Link,
    MappingOption,
    Message,
    Resource,
    Specification,
    Task,
)
from repro.synthesis.solution import decode_model, validate
from repro.theory.linear import LinearPropagator
from repro.workloads import WorkloadConfig, generate_specification


def diamond_spec():
    """Two disjoint paths r0->r3; the upper one is shorter."""
    app = Application(
        tasks=(Task("a"), Task("b")), messages=(Message("m", "a", "b"),)
    )
    resources = tuple(Resource(f"r{i}", cost=1) for i in range(4))
    links = (
        Link("u1", "r0", "r1", delay=1, energy=5),
        Link("u2", "r1", "r3", delay=1, energy=5),
        Link("d1", "r0", "r2", delay=3, energy=1),
        Link("d2", "r2", "r3", delay=3, energy=1),
    )
    mappings = (
        MappingOption("a", "r0", wcet=1, energy=1),
        MappingOption("b", "r3", wcet=1, energy=1),
    )
    return Specification(app, Architecture(resources, links), mappings)


def solve_impls(spec, **encode_kwargs):
    instance = encode(spec, **encode_kwargs)
    ctl = Control()
    ctl.add(instance.program)
    ctl.register_propagator(LinearPropagator())
    ctl.ground()
    impls = []

    def on_model(model):
        impl = decode_model(spec, model)
        assert validate(spec, impl) == [], validate(spec, impl)
        impls.append(impl)

    ctl.solve(on_model=on_model, models=0)
    return impls


class TestFixedRouting:
    def test_only_shortest_path_used(self):
        impls = solve_impls(diamond_spec(), routing="fixed")
        assert len(impls) == 1
        assert impls[0].routes["m"] == ["u1", "u2"]

    def test_free_routing_explores_both(self):
        impls = solve_impls(diamond_spec(), routing="free")
        assert sorted(tuple(i.routes["m"]) for i in impls) == [
            ("d1", "d2"),
            ("u1", "u2"),
        ]

    def test_fixed_front_is_dominated_or_equal(self):
        """Restricting routing can only lose Pareto points."""
        spec = generate_specification(WorkloadConfig(tasks=5, seed=1))
        free = exhaustive_front(encode(spec, routing="free"))
        fixed = exhaustive_front(encode(spec, routing="fixed"))
        for vector in fixed.vectors():
            assert any(
                weakly_dominates(true_vector, vector)
                for true_vector in free.vectors()
            )

    def test_fixed_design_space_smaller(self):
        spec = generate_specification(WorkloadConfig(tasks=5, seed=1))
        free = exhaustive_front(encode(spec, routing="free"))
        fixed = exhaustive_front(encode(spec, routing="fixed"))
        assert fixed.models_enumerated <= free.models_enumerated

    def test_unroutable_binding_rejected(self):
        # Only a wrong-direction link exists.
        app = Application(
            tasks=(Task("a"), Task("b")), messages=(Message("m", "a", "b"),)
        )
        arch = Architecture(
            (Resource("r0"), Resource("r1")), (Link("back", "r1", "r0"),)
        )
        mappings = (
            MappingOption("a", "r0", wcet=1, energy=1),
            MappingOption("b", "r1", wcet=1, energy=1),
        )
        spec = Specification(app, arch, mappings)
        impls = solve_impls(spec, routing="fixed")
        assert impls == []

    def test_multicast_union_is_tree(self):
        app = Application(
            tasks=(Task("p"), Task("c1"), Task("c2")),
            messages=(Message("m", "p", "c1", extra_targets=("c2",)),),
        )
        resources = tuple(Resource(f"r{i}") for i in range(4))
        links = []
        for i, j in [(0, 1), (1, 2), (1, 3)]:
            links.append(Link(f"l{i}{j}", f"r{i}", f"r{j}", delay=1, energy=1))
        mappings = (
            MappingOption("p", "r0", wcet=1, energy=1),
            MappingOption("c1", "r2", wcet=1, energy=1),
            MappingOption("c2", "r3", wcet=1, energy=1),
        )
        spec = Specification(app, Architecture(resources, tuple(links)), mappings)
        impls = solve_impls(spec, routing="fixed")
        assert len(impls) == 1
        assert sorted(impls[0].routes["m"]) == ["l01", "l12", "l13"]

    def test_explorer_with_fixed_routing(self):
        spec = generate_specification(WorkloadConfig(tasks=5, seed=2))
        instance = encode(spec, routing="fixed")
        result = ExactParetoExplorer(instance).run()
        truth = exhaustive_front(instance)
        assert result.vectors() == truth.vectors()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            encode(diamond_spec(), routing="adaptive")

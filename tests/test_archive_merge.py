"""Property tests for the subspace-merge reduction.

The parallel explorer relies on one algebraic fact: for *any* partition
of a point set, the non-dominated union of the per-part fronts equals
the front of the whole set.  These tests establish it for random vectors
and partitions, through every archive implementation the explorer can be
configured with.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.approximation import EpsilonArchive
from repro.dse.pareto import (
    ListArchive,
    dominates,
    non_dominated_union,
    pareto_filter,
    weakly_dominates,
)
from repro.dse.quadtree import QuadTreeArchive

ARCHIVES = {
    "list": ListArchive,
    "quadtree": QuadTreeArchive,
    "epsilon0": lambda: EpsilonArchive(0),
}


@st.composite
def points_and_partition(draw):
    """Random 3-objective vectors plus an arbitrary partition of them."""
    vectors = draw(
        st.lists(
            st.tuples(
                st.integers(0, 12), st.integers(0, 12), st.integers(0, 12)
            ),
            max_size=24,
        )
    )
    parts = draw(st.integers(1, 4))
    assignment = [draw(st.integers(0, parts - 1)) for _vector in vectors]
    return vectors, parts, assignment


def archive_front(factory, points):
    """Insert ``points`` into a fresh archive; return its sorted contents."""
    archive = factory()
    for index, vector in enumerate(points):
        archive.add(vector, ("witness", index))
    return sorted(archive, key=lambda item: item[0])


@pytest.mark.parametrize("kind", sorted(ARCHIVES))
@given(data=points_and_partition())
@settings(max_examples=60, deadline=None)
def test_split_merge_equals_global_front(kind, data):
    vectors, parts, assignment = data
    factory = ARCHIVES[kind]
    per_part = [
        archive_front(
            factory,
            [v for v, part in zip(vectors, assignment) if part == p],
        )
        for p in range(parts)
    ]
    merged = non_dominated_union(*per_part)
    expected = pareto_filter((v, None) for v in vectors)
    assert [v for v, _payload in merged] == [v for v, _payload in expected]


@given(data=points_and_partition())
@settings(max_examples=60, deadline=None)
def test_merged_front_is_sound_and_complete(data):
    vectors, parts, assignment = data
    per_part = [
        pareto_filter(
            (v, None) for v, part in zip(vectors, assignment) if part == p
        )
        for p in range(parts)
    ]
    merged = [v for v, _payload in non_dominated_union(*per_part)]
    # Mutually non-dominated...
    for a in merged:
        assert not any(dominates(b, a) for b in merged)
    # ...and every input point is weakly dominated by some front point.
    for v in vectors:
        assert any(weakly_dominates(a, v) for a in merged)


@given(data=points_and_partition(), epsilon=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_epsilon_merge_keeps_coverage(data, epsilon):
    """Merging per-part epsilon-archives preserves the epsilon guarantee."""
    vectors, parts, assignment = data
    per_part = [
        archive_front(
            lambda: EpsilonArchive(epsilon),
            [v for v, part in zip(vectors, assignment) if part == p],
        )
        for p in range(parts)
    ]
    merged = [v for v, _payload in non_dominated_union(*per_part)]
    for true_point, _payload in pareto_filter((v, None) for v in vectors):
        assert any(
            all(a_i <= p_i + epsilon for a_i, p_i in zip(a, true_point))
            for a in merged
        ), (true_point, merged)
